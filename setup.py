"""Legacy setup shim.

Kept so that ``pip install -e .`` works in offline environments that
lack the ``wheel`` package (pip then falls back to ``setup.py
develop``).  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
