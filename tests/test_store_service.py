"""The service layer: store-backed sessions, the façade, the serve loop.

The load-bearing claim is **zero engine recursion on a cache hit** —
pinned here by making enumerator construction itself the tripwire —
plus reduction sharing across sessions and the JSON-lines protocol's
ordering/error contracts.
"""

import json
from fractions import Fraction

import pytest

import repro.core.session as session_module
from repro.core.config import PMUC_PLUS_CONFIG
from repro.core.session import CliqueQuerySession
from repro.datasets.figure1 import figure1_graph
from repro.store.key import graph_fingerprint
from repro.store.service import EnumerationService, ServeLoop, parse_eta
from repro.store.store import RunStore
from tests.conftest import as_sorted_sets


@pytest.fixture
def store(tmp_path):
    return RunStore(str(tmp_path / "store"))


# ----------------------------------------------------------------------
# store-backed sessions
# ----------------------------------------------------------------------
def test_session_miss_then_hit_with_identical_results(store):
    first = CliqueQuerySession(figure1_graph(), 0.1, store=store)
    live = first.query(3)
    assert (first.query_misses, first.query_hits) == (1, 0)
    replay = first.query(3)
    assert (first.query_misses, first.query_hits) == (1, 1)
    assert as_sorted_sets(replay.cliques) == as_sorted_sets(live.cliques)
    assert replay.stats.as_dict() == live.stats.as_dict()


def test_cache_hit_builds_no_enumerator(store, monkeypatch):
    session = CliqueQuerySession(figure1_graph(), 0.1, store=store)
    session.query(3)

    def tripwire(*args, **kwargs):
        raise AssertionError("cache hit must not construct an enumerator")

    monkeypatch.setattr(session_module, "PivotEnumerator", tripwire)
    replay = session.query(3)
    assert replay.stats.outputs == replay.stats.as_dict()["outputs"]


def test_streaming_queries_bypass_the_store(store):
    session = CliqueQuerySession(figure1_graph(), 0.1, store=store)
    session.query(3)
    seen = []
    session.query(3, on_clique=seen.append)
    # The sink saw live emission, and the store counters did not move
    # for the streaming call (no hit recorded despite the stored key).
    assert seen
    assert (session.query_misses, session.query_hits) == (1, 0)


def test_second_session_reuses_the_stored_reduction(store):
    first = CliqueQuerySession(figure1_graph(), 0.1, store=store)
    assert first.reduction_reused is False
    second = CliqueQuerySession(figure1_graph(), 0.1, store=store)
    assert second.reduction_reused is True
    assert as_sorted_sets(second.query(3).cliques) == as_sorted_sets(
        first.query(3).cliques
    )


def test_sessions_without_store_behave_as_before(store):
    plain = CliqueQuerySession(figure1_graph(), 0.53)
    assert len(plain.query(4).cliques) == 2
    assert plain.query_hits == plain.query_misses == 0


# ----------------------------------------------------------------------
# the façade
# ----------------------------------------------------------------------
def test_enumerate_miss_then_hit_same_digest(store):
    service = EnumerationService(store)
    first = service.enumerate(figure1_graph(), 3, 0.1)
    again = service.enumerate(figure1_graph(), 3, 0.1)
    assert (first.hit, again.hit) == (False, True)
    assert first.digest == again.digest
    assert again.counters() == first.counters()
    assert as_sorted_sets(again.result.cliques) == as_sorted_sets(
        first.result.cliques
    )
    # The replayed seconds are the producing run's measurement, not a
    # fresh timing.
    assert again.record.seconds == first.record.seconds


def test_query_uses_the_slice_procedure_and_agrees_with_peel(store):
    service = EnumerationService(store)
    peel = service.enumerate(figure1_graph(), 3, 0.1)
    sliced = service.query(figure1_graph(), 3, 0.1)
    assert sliced.key.procedure == "slice"
    assert peel.key.procedure == "peel"
    assert sliced.digest != peel.digest
    assert as_sorted_sets(sliced.result.cliques) == as_sorted_sets(
        peel.result.cliques
    )


def test_service_sessions_are_memoized_per_dataset_eta_config(store):
    service = EnumerationService(store)
    a = service.session(figure1_graph(), 0.1)
    b = service.session(figure1_graph(), 0.1)
    c = service.session(figure1_graph(), 0.05)
    assert a is b
    assert a is not c


# ----------------------------------------------------------------------
# parse_eta
# ----------------------------------------------------------------------
def test_parse_eta_accepts_floats_strings_and_fractions():
    assert parse_eta(0.1) == 0.1
    assert parse_eta("0.1") == 0.1
    assert parse_eta("1/10") == Fraction(1, 10)
    assert parse_eta(Fraction(1, 4)) == Fraction(1, 4)


def test_parse_eta_rejects_bool_and_junk():
    with pytest.raises(ValueError):
        parse_eta(True)
    with pytest.raises(ValueError):
        parse_eta(None)


# ----------------------------------------------------------------------
# serve loop protocol
# ----------------------------------------------------------------------
@pytest.fixture
def loop(store):
    """A serve loop whose graph cache is pre-seeded with Figure 1, so
    the protocol tests exercise dispatch without dataset loading."""
    serve = ServeLoop(EnumerationService(store))
    graph = figure1_graph()
    serve._graphs[("fig1", 0, "exponential")] = (
        graph, graph_fingerprint(graph)
    )
    return serve


def enumerate_request(k=3, eta=0.1, **extra):
    request = {"op": "enumerate", "dataset": "fig1", "k": k, "eta": eta}
    request.update(extra)
    return request


def test_ping_reports_store_and_salt(loop, store):
    response = loop.handle({"op": "ping"})
    assert response["ok"] is True
    assert response["store"] == store.root
    assert len(response["salt"]) == 12


def test_enumerate_then_repeat_is_a_hit_with_identical_counters(loop):
    first = loop.handle(enumerate_request())
    again = loop.handle(enumerate_request())
    assert first["hit"] is False
    assert again["hit"] is True
    assert again["digest"] == first["digest"]
    assert again["counters"] == first["counters"]
    assert again["seconds"] == first["seconds"]
    assert again["cliques"] == first["cliques"]


def test_query_op_resolves_digest_prefixes(loop):
    digest = loop.handle(enumerate_request())["digest"]
    response = loop.handle({"op": "query", "digest": digest[:12]})
    assert response["found"] is True
    assert response["digest"] == digest
    missing = loop.handle({"op": "query", "digest": "f" * 64})
    assert missing["found"] is False


def test_batch_returns_responses_in_input_order(loop):
    requests = [
        enumerate_request(k=4),
        {"op": "ping"},
        enumerate_request(k=3),
        enumerate_request(k=4),
    ]
    responses = loop.handle_batch(requests)
    assert [r.get("op") for r in responses] == [
        "enumerate", "ping", "enumerate", "enumerate",
    ]
    assert responses[0]["k"] == 4
    assert responses[2]["k"] == 3
    # The repeat of k=4 ran after its twin (batch grouping) and hit.
    assert responses[3]["hit"] is True
    assert responses[3]["digest"] == responses[0]["digest"]


def test_batch_shares_one_reduction_across_the_group(loop, store):
    loop.handle_batch([enumerate_request(k=k) for k in (3, 4, 5)])
    # One decomposition was published; every query after the first
    # reused the session's in-memory copy.
    assert len(list(store._iter_digests("reductions"))) == 1


def test_errors_are_reported_not_raised(loop):
    response = loop.handle({"op": "bogus"})
    assert "unknown op" in response["error"]
    response = loop.handle(enumerate_request(eta=True))
    assert "bool" in response["error"]
    response = loop.handle(
        enumerate_request(procedure="partition")
    )
    assert "procedure" in response["error"]


def test_handle_line_round_trips_json(loop):
    line = loop.handle_line(json.dumps(enumerate_request()))
    response = json.loads(line)
    assert response["op"] == "enumerate"
    assert response["dataset"] == "fig1"
    bad = json.loads(loop.handle_line("{not json"))
    assert "bad request" in bad["error"]
