"""Flight recorder, replay, merge, and the progress estimator."""

import json

import pytest

from repro.exceptions import ParameterError
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    merge_flight_registries,
    replay_flight,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import MILESTONE_EVERY, Observer
from repro.obs.progress import ProgressTracker


class FakeClock:
    """Deterministic monotonic clock for throttle/ETA tests."""

    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestFlightRecorder:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        clock = FakeClock()
        with FlightRecorder(path, role="worker", worker=3,
                            clock=clock) as rec:
            clock.advance(0.5)
            rec.run_start(k=4, eta=0.1)
            rec.phase("recursion", 0.25)
            rec.milestone(outputs=256)
            rec.violation("KeyError", "boom")
            clock.advance(1.0)
            rec.finish(
                stats={"calls": 10, "outputs": 2, "max_depth": 3},
                wall_s=1.5,
                outputs=2,
            )
        log = replay_flight(path)
        assert not log.truncated
        assert log.schema == FLIGHT_SCHEMA
        assert log.role == "worker"
        assert log.worker == 3
        assert [e["event"] for e in log.events] == [
            "open", "run_start", "phase", "milestone", "violation",
            "finish",
        ]
        # seq is gapless and t_s relative to the recorder's own start.
        assert [e["seq"] for e in log.events] == list(range(6))
        assert log.events[1]["t_s"] == pytest.approx(0.5)
        assert log.wall_s() == pytest.approx(1.5)

    def test_every_line_is_flushed_and_sorted(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        rec = FlightRecorder(path)
        rec.run_start(b=2, a=1)
        # No close(): per-record flush means the lines are on disk now.
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert line == json.dumps(json.loads(line), sort_keys=True)
        rec.close()

    def test_heartbeat_throttles(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        clock = FakeClock()
        rec = FlightRecorder(path, clock=clock, heartbeat_every=0.25)
        rec.heartbeat(depth=1)
        rec.heartbeat(depth=2)      # dropped: 0s since the last one
        clock.advance(0.3)
        rec.heartbeat(depth=3)
        clock.advance(0.01)
        rec.heartbeat(force=True, depth=4)  # force bypasses the throttle
        rec.close()
        beats = [
            e for e in replay_flight(path).events
            if e["event"] == "heartbeat"
        ]
        assert [b["depth"] for b in beats] == [1, 3, 4]
        assert all("peak_rss_bytes" in b for b in beats)

    def test_truncated_tail_recovery(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        with FlightRecorder(path) as rec:
            rec.run_start(k=3)
            rec.finish(stats={"calls": 1, "outputs": 1, "max_depth": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "heartbeat", "seq": 3, "t_')  # cut mid-write
        log = replay_flight(path)
        assert log.truncated
        # The valid prefix is fully usable, including the finish record.
        assert log.finish() is not None
        assert log.registry().counters()["calls"] == 1

    def test_registry_prefers_full_metrics_snapshot(self, tmp_path):
        live = MetricsRegistry()
        live.inc("calls", 7)
        live.add_time("recursion", 0.5)
        live.set_gauge("max_depth", 4)
        live.observe_depth("nodes", 2, 7)
        path = str(tmp_path / "flight.jsonl")
        with FlightRecorder(path) as rec:
            rec.finish(metrics=live.as_dict(), stats={"calls": 7})
        replayed = replay_flight(path).registry()
        assert json.dumps(replayed.as_dict(), sort_keys=True) == \
            json.dumps(live.as_dict(), sort_keys=True)

    def test_registry_falls_back_to_flat_stats(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        with FlightRecorder(path) as rec:
            rec.finish(stats={"calls": 5, "outputs": 2, "max_depth": 9})
        registry = replay_flight(path).registry()
        assert registry.counters() == {"calls": 5, "outputs": 2}
        assert registry.gauge("max_depth") == 9

    def test_crashed_log_has_no_registry(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        rec = FlightRecorder(path)
        rec.run_start(k=3)
        rec.violation("MemoryError", "oom")
        rec.close()
        log = replay_flight(path)
        assert log.finish() is None
        assert log.registry() is None
        assert log.wall_s() is None


class TestMergeFlightRegistries:
    def _worker_log(self, tmp_path, worker, calls, depth):
        registry = MetricsRegistry()
        registry.inc("calls", calls)
        registry.set_gauge("max_depth", depth)
        path = str(tmp_path / f"flight-worker{worker}.jsonl")
        with FlightRecorder(path, worker=worker) as rec:
            rec.finish(metrics=registry.as_dict())
        return replay_flight(path)

    def test_merge_is_order_insensitive(self, tmp_path):
        logs = [
            self._worker_log(tmp_path, 0, 10, 5),
            self._worker_log(tmp_path, 1, 20, 9),
            self._worker_log(tmp_path, 2, 30, 7),
        ]
        forward = merge_flight_registries(logs).as_dict()
        shuffled = merge_flight_registries(logs[::-1]).as_dict()
        assert json.dumps(forward, sort_keys=True) == \
            json.dumps(shuffled, sort_keys=True)
        assert forward["counters"]["calls"] == 60
        assert forward["gauges"]["max_depth"] == 9

    def test_crashed_workers_contribute_nothing(self, tmp_path):
        crashed = str(tmp_path / "flight-crashed.jsonl")
        rec = FlightRecorder(crashed, worker=1)
        rec.violation("MemoryError", "oom")
        rec.close()
        logs = [
            self._worker_log(tmp_path, 0, 10, 5),
            replay_flight(crashed),
        ]
        merged = merge_flight_registries(logs)
        assert merged.counters()["calls"] == 10


class TestRegistryMerge:
    def test_max_gauges_keep_high_water(self):
        a = MetricsRegistry()
        a.set_gauge("max_depth", 9)
        b = MetricsRegistry()
        b.set_gauge("max_depth", 4)
        b.set_gauge("roots_total", 12)
        a.merge(b, gauges="max")
        assert a.gauge("max_depth") == 9
        assert a.gauge("roots_total") == 12

    def test_last_gauges_overwrite(self):
        a = MetricsRegistry()
        a.set_gauge("max_depth", 9)
        b = MetricsRegistry()
        b.set_gauge("max_depth", 4)
        a.merge(b)
        assert a.gauge("max_depth") == 4

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge(MetricsRegistry(), gauges="sum")


class TestProgressTracker:
    def test_snapshot_math(self):
        clock = FakeClock()
        tracker = ProgressTracker(clock=clock)
        tracker.on_root(0, 4, 10)
        clock.advance(1.0)
        tracker.on_root(1, 4, 10)
        clock.advance(1.0)
        tracker.on_root(2, 4, 10)
        snap = tracker.snapshot()
        # 2 of 4 equal-weight roots explored; the current root plus
        # one outstanding at the observed mean -> fraction 1/2.
        assert snap["roots_done"] == 2
        assert snap["roots_total"] == 4
        assert snap["fraction"] == pytest.approx(0.5)
        assert snap["elapsed_s"] == pytest.approx(2.0)
        assert snap["eta_s"] == pytest.approx(2.0)

    def test_index_zero_resets_between_runs(self):
        clock = FakeClock()
        tracker = ProgressTracker(clock=clock)
        tracker.on_root(0, 2, 5)
        tracker.on_root(1, 2, 5)
        clock.advance(3.0)
        tracker.on_root(0, 7, 1)  # a new run restarts the estimate
        snap = tracker.snapshot()
        assert snap["roots_total"] == 7
        assert snap["roots_done"] == 0
        assert snap["fraction"] == 0.0
        assert snap["elapsed_s"] == 0.0

    def test_render_throttles_to_interval(self):
        clock = FakeClock()

        class Stream:
            def __init__(self):
                self.lines = []

            def write(self, text):
                self.lines.append(text)

            def flush(self):
                pass

        stream = Stream()
        tracker = ProgressTracker(
            stream=stream, interval=1.0, clock=clock, label="t"
        )
        tracker.on_root(0, 10, 3)     # first render
        clock.advance(0.5)
        tracker.on_root(1, 10, 3)     # throttled
        clock.advance(0.6)
        tracker.on_root(2, 10, 3)     # 1.1s since the first -> renders
        assert len(stream.lines) == 2
        assert stream.lines[0].startswith("t: progress")
        assert "root 2/10" in stream.lines[1]


class TestObserverSeam:
    def test_light_level_skips_depth_histograms(self):
        obs = Observer(level="light")
        obs.on_node(1, [0])
        obs.on_emit(1, 3)
        obs.on_expand(1)
        obs.on_prune("kpivot", 1)
        assert obs.metrics.as_dict()["depth"] == {}

    def test_off_level_rejected(self):
        with pytest.raises(ParameterError):
            Observer(level="off")

    def test_on_root_feeds_progress_and_flight(self, tmp_path):
        clock = FakeClock()
        obs = Observer(level="light")
        obs.progress = ProgressTracker(clock=clock)
        obs.flight = FlightRecorder(
            str(tmp_path / "flight.jsonl"), clock=clock
        )
        obs.on_root(0, 3, {"a": 1, "b": 2})   # dict-backend frontier
        clock.advance(1.0)
        obs.on_root(1, 3, [0b11, [4, 5]])     # kernel [bits, members]
        clock.advance(1.0)
        obs.on_root(2, 3, None)               # empty frontier
        obs.flight.close()
        assert obs.metrics.gauge("roots_total") == 3
        assert obs.progress.roots_done == 2
        # weights: |C|+1 = 3, 3, 1
        assert obs.progress.explored == pytest.approx(6.0)
        beats = [
            e
            for e in replay_flight(str(tmp_path / "flight.jsonl")).events
            if e["event"] == "heartbeat"
        ]
        assert [b["roots_done"] for b in beats] == [0, 1, 2]
        assert all("fraction" in b for b in beats)

    def test_emission_milestones_are_periodic(self, tmp_path):
        obs = Observer(level="light")
        obs.flight = FlightRecorder(str(tmp_path / "flight.jsonl"))
        for _ in range(2 * MILESTONE_EVERY + 5):
            obs.on_emit(2, 3)
        obs.flight.close()
        marks = [
            e
            for e in replay_flight(str(tmp_path / "flight.jsonl")).events
            if e["event"] == "milestone"
        ]
        assert [m["outputs"] for m in marks] == [
            MILESTONE_EVERY, 2 * MILESTONE_EVERY
        ]
