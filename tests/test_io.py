"""Edge-list parsing, formatting, and file round trips."""

import pytest

from repro.exceptions import DatasetError
from repro.uncertain import (
    UncertainGraph,
    format_edge_list,
    parse_edge_list,
    read_edge_list,
    write_edge_list,
)


class TestParse:
    def test_basic(self):
        g = parse_edge_list("0 1 0.5\n1 2 0.75\n")
        assert g.num_edges == 2
        assert g.probability(1, 2) == 0.75

    def test_default_probability(self):
        g = parse_edge_list("0 1\n", default_probability=0.6)
        assert g.probability(0, 1) == 0.6

    def test_comments_and_blank_lines(self):
        text = "# comment\n\n% konect header\n0 1 0.5\n"
        g = parse_edge_list(text)
        assert g.num_edges == 1

    def test_string_vertices(self):
        g = parse_edge_list("alice bob 0.9\n")
        assert g.has_edge("alice", "bob")

    def test_integer_coercion(self):
        g = parse_edge_list("007 8 0.9\n")
        assert g.has_edge(7, 8)

    def test_bad_field_count(self):
        with pytest.raises(DatasetError, match="line 1"):
            parse_edge_list("0 1 0.5 extra\n")

    def test_bad_probability_token(self):
        with pytest.raises(DatasetError, match="not a number"):
            parse_edge_list("0 1 abc\n")

    def test_out_of_range_probability(self):
        with pytest.raises(DatasetError, match="line 2"):
            parse_edge_list("0 1 0.5\n1 2 1.7\n")

    def test_self_loop_reported_with_line(self):
        with pytest.raises(DatasetError, match="line 1"):
            parse_edge_list("3 3 0.5\n")


class TestFormat:
    def test_round_trip(self):
        g = UncertainGraph([(0, 1, 0.5), (1, 2, 0.25)])
        again = parse_edge_list(format_edge_list(g))
        assert again.num_edges == 2
        assert again.probability(0, 1) == 0.5

    def test_empty_graph_formats_empty(self):
        assert format_edge_list(UncertainGraph()) == ""

    def test_deterministic_order(self):
        g = UncertainGraph([(2, 1, 0.5), (0, 1, 0.5)])
        assert format_edge_list(g) == format_edge_list(g.copy())


class TestFiles:
    def test_write_and_read(self, tmp_path):
        g = UncertainGraph([(0, 1, 0.5), (1, 2, 0.9)])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        again = read_edge_list(path)
        assert again.num_edges == 2
        assert again.probability(1, 2) == 0.9
