"""Top-level API dispatch and the statistics containers."""

import pytest

from repro import (
    EnumerationResult,
    SearchStats,
    enumerate_maximal_cliques,
    maximal_clique_counts,
    maximum_eta_clique,
)
from repro.exceptions import ParameterError
from repro.uncertain import UncertainGraph
from tests.conftest import as_sorted_sets


class TestDispatch:
    def test_all_algorithms_available(self, two_communities):
        expected = None
        for algorithm in ("muc", "muc-basic", "pmuc", "pmuc+"):
            result = enumerate_maximal_cliques(two_communities, 3, 0.5, algorithm)
            view = as_sorted_sets(result.cliques)
            if expected is None:
                expected = view
            assert view == expected

    def test_unknown_algorithm(self, triangle_graph):
        with pytest.raises(ParameterError):
            enumerate_maximal_cliques(triangle_graph, 2, 0.5, "nope")

    def test_callback_respected(self, triangle_graph):
        seen = []
        result = enumerate_maximal_cliques(
            triangle_graph, 3, 0.5, on_clique=seen.append
        )
        assert seen == [frozenset({0, 1, 2})]
        assert result.cliques == []

    def test_doctest_example(self):
        g = UncertainGraph([(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9)])
        result = enumerate_maximal_cliques(g, k=3, eta=0.5)
        assert sorted(result.cliques[0]) == [0, 1, 2]


class TestHelpers:
    def test_maximal_clique_counts(self, two_communities):
        histogram = maximal_clique_counts(two_communities, 2, 0.5)
        assert histogram.get(4) == 2

    def test_maximum_eta_clique_on_empty(self):
        assert maximum_eta_clique(UncertainGraph(), 0.5) == frozenset()

    def test_maximum_eta_clique(self, two_communities):
        assert len(maximum_eta_clique(two_communities, 0.5)) == 4


class TestStats:
    def test_observe_depth(self):
        stats = SearchStats()
        stats.observe_depth(3)
        stats.observe_depth(2)
        assert stats.max_depth == 3

    def test_as_dict_keys(self):
        keys = set(SearchStats().as_dict())
        assert keys == {
            "calls", "expansions", "outputs", "mpivot_skips",
            "kpivot_stops", "size_prunes", "max_depth",
        }

    def test_result_container(self):
        result = EnumerationResult()
        result.cliques.append(frozenset({1, 2}))
        assert len(result) == 1
        assert list(result) == [frozenset({1, 2})]
        assert result.as_sorted_sets() == [frozenset({1, 2})]
