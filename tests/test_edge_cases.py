"""Boundary and robustness edge cases across the enumeration stack."""

import sys
from fractions import Fraction

import pytest

from repro.core import enumerate_maximal_cliques, muc
from repro.uncertain import UncertainGraph
from tests.conftest import as_sorted_sets


def make_clique(n: int, p=1.0) -> UncertainGraph:
    g = UncertainGraph()
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j, p)
    return g


class TestEtaBoundary:
    def test_exact_boundary_is_inclusive(self):
        """Pr(H) == η counts as an η-clique (>= in Definition 2)."""
        g = UncertainGraph(
            [(0, 1, Fraction(1, 2)), (1, 2, Fraction(1, 2)),
             (0, 2, Fraction(1, 2))]
        )
        eta = Fraction(1, 8)  # exactly the triangle's probability
        result = enumerate_maximal_cliques(g, 3, eta)
        assert result.cliques == [frozenset({0, 1, 2})]

    def test_just_above_boundary_excludes(self):
        g = UncertainGraph(
            [(0, 1, Fraction(1, 2)), (1, 2, Fraction(1, 2)),
             (0, 2, Fraction(1, 2))]
        )
        eta = Fraction(1, 8) + Fraction(1, 1000)
        result = enumerate_maximal_cliques(g, 3, eta)
        assert result.cliques == []

    def test_eta_one_keeps_only_certain_cliques(self):
        g = UncertainGraph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 0.9)])
        got = as_sorted_sets(enumerate_maximal_cliques(g, 2, 1.0).cliques)
        assert got == [frozenset({0, 1, 2})]


class TestStructuralEdgeCases:
    def test_large_certain_clique(self):
        """A 60-clique: every algorithm returns exactly one clique and
        the pivot search stays tiny while MUC would explode (so MUC is
        only run with a limit)."""
        g = make_clique(60)
        pivoted = enumerate_maximal_cliques(g, 1, 0.5, "pmuc+")
        assert pivoted.cliques == [frozenset(range(60))]
        # One chain per outer seed: at most n(n+1)/2 nodes, versus the
        # 2^60 subsets a full set enumeration would visit.
        assert pivoted.stats.calls <= 60 * 61 // 2
        capped = muc(g, 1, 0.5, use_reduction=False, limit=1)
        assert len(capped.cliques[0]) <= 60

    def test_recursion_limit_restored(self):
        before = sys.getrecursionlimit()
        enumerate_maximal_cliques(make_clique(30), 1, 0.5, "pmuc+")
        assert sys.getrecursionlimit() == before

    def test_k_equal_to_n(self):
        g = make_clique(5, p=0.99)
        result = enumerate_maximal_cliques(g, 5, 0.5)
        assert result.cliques == [frozenset(range(5))]

    def test_k_above_n(self):
        g = make_clique(4)
        assert enumerate_maximal_cliques(g, 9, 0.5).cliques == []

    def test_all_isolated_vertices(self):
        g = UncertainGraph()
        for v in range(5):
            g.add_vertex(v)
        got = as_sorted_sets(enumerate_maximal_cliques(g, 1, 0.5).cliques)
        assert got == [frozenset({v}) for v in range(5)]
        assert enumerate_maximal_cliques(g, 2, 0.5).cliques == []

    def test_string_and_tuple_vertices(self):
        g = UncertainGraph(
            [("a", ("x", 1), 0.9), (("x", 1), "b", 0.9), ("a", "b", 0.9)]
        )
        result = enumerate_maximal_cliques(g, 3, 0.5)
        assert result.cliques == [frozenset({"a", "b", ("x", 1)})]

    def test_two_vertex_graph(self):
        g = UncertainGraph([(0, 1, 0.4)])
        assert enumerate_maximal_cliques(g, 2, 0.5).cliques == []
        got = as_sorted_sets(enumerate_maximal_cliques(g, 1, 0.5).cliques)
        assert got == [frozenset({0}), frozenset({1})]

    def test_parallel_star_graph(self):
        """Star: hub forms pair-cliques with every leaf, leaves are
        mutually exclusive."""
        g = UncertainGraph([(0, i, 0.9) for i in range(1, 8)])
        result = enumerate_maximal_cliques(g, 2, 0.5)
        assert len(result.cliques) == 7
        assert all(0 in c and len(c) == 2 for c in result.cliques)


class TestFractionEndToEnd:
    def test_exact_graph_through_pmuc_plus(self):
        g = make_clique(6, p=Fraction(9, 10)).with_exact_probabilities()
        eta = Fraction(9, 10) ** 15  # the 6-clique's exact probability
        result = enumerate_maximal_cliques(g, 6, eta)
        assert result.cliques == [frozenset(range(6))]

    def test_exact_mode_matches_float_mode_off_boundary(self):
        g_float = make_clique(5, p=0.9)
        g_exact = g_float.with_exact_probabilities()
        a = as_sorted_sets(enumerate_maximal_cliques(g_float, 2, 0.5).cliques)
        b = as_sorted_sets(enumerate_maximal_cliques(g_exact, 2, 0.5).cliques)
        assert a == b
