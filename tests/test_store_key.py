"""RunKey canonicalization: the store's identity contract.

A stored run may only ever be served to a request whose *semantics*
match the producing run's — so every axis that changes the result (or
the counters, or the timing family) must change the key, and nothing
else may.  These tests pin each axis one by one.
"""

from dataclasses import replace
from fractions import Fraction

import pytest

from repro.core.config import PMUC_PLUS_CONFIG
from repro.datasets.figure1 import figure1_graph
from repro.store.key import (
    ReductionKey,
    RunKey,
    canonical_eta,
    engine_salt,
    graph_fingerprint,
    probability_token,
    reduction_key_for,
    run_key_for,
)
from repro.uncertain import UncertainGraph


# ----------------------------------------------------------------------
# probability tokens
# ----------------------------------------------------------------------
def test_probability_token_is_type_tagged():
    assert probability_token(0.05) == "float:0.05"
    assert probability_token(Fraction(1, 20)) == "fraction:1/20"
    assert probability_token(1) == "int:1"
    # 0.05 != Fraction(1/20) as a *computation*: log-domain float vs
    # exact rational take different code paths with different rounding.
    assert probability_token(0.05) != probability_token(Fraction(1, 20))


def test_probability_token_rejects_bool():
    with pytest.raises(TypeError):
        probability_token(True)


def test_float_token_round_trips_through_repr():
    value = 0.1 + 0.2  # 0.30000000000000004: repr must be exact
    token = probability_token(value)
    assert float(token.split(":", 1)[1]) == value


def test_canonical_eta_distinguishes_numeric_types():
    assert canonical_eta(0.5) != canonical_eta(Fraction(1, 2))


# ----------------------------------------------------------------------
# graph fingerprints
# ----------------------------------------------------------------------
def shuffled_figure1():
    """Figure 1 rebuilt in reversed insertion order."""
    source = figure1_graph()
    edges = sorted(source.edges(), key=repr, reverse=True)
    g = UncertainGraph()
    for v in sorted(source.vertices(), key=repr, reverse=True):
        g.add_vertex(v)
    for u, v, p in edges:
        g.add_edge(u, v, p)
    return g


def test_fingerprint_is_independent_of_construction_order():
    assert graph_fingerprint(figure1_graph()) == graph_fingerprint(
        shuffled_figure1()
    )


def test_fingerprint_changes_with_one_edge_probability():
    g = figure1_graph()
    perturbed = figure1_graph()
    u, v, p = sorted(perturbed.edges(), key=repr)[0]
    perturbed.add_edge(u, v, p * 0.5)
    assert graph_fingerprint(g) != graph_fingerprint(perturbed)


def test_fingerprint_changes_with_an_isolated_vertex():
    g = figure1_graph()
    extended = figure1_graph()
    extended.add_vertex("isolated")
    assert graph_fingerprint(g) != graph_fingerprint(extended)


def test_fingerprint_distinguishes_probability_types():
    a = UncertainGraph()
    a.add_edge(0, 1, 0.5)
    b = UncertainGraph()
    b.add_edge(0, 1, Fraction(1, 2))
    assert graph_fingerprint(a) != graph_fingerprint(b)


# ----------------------------------------------------------------------
# the RunKey itself
# ----------------------------------------------------------------------
def test_run_key_digest_is_stable_and_round_trips():
    key = run_key_for(figure1_graph(), 3, 0.1, PMUC_PLUS_CONFIG)
    again = run_key_for(figure1_graph(), 3, 0.1, PMUC_PLUS_CONFIG)
    assert key == again
    assert key.digest() == again.digest()
    assert RunKey.from_dict(key.as_dict()) == key


@pytest.mark.parametrize(
    "mutate",
    [
        lambda g, k, eta, c: (g, k + 1, eta, c),
        lambda g, k, eta, c: (g, k, eta / 2, c),
        lambda g, k, eta, c: (g, k, Fraction(1, 10), c),
        lambda g, k, eta, c: (g, k, eta, replace(c, pivot="first")),
        lambda g, k, eta, c: (g, k, eta, replace(c, reduction="off")),
        lambda g, k, eta, c: (g, k, eta, replace(c, ordering="as-is")),
    ],
)
def test_every_semantic_axis_changes_the_digest(mutate):
    base = run_key_for(
        figure1_graph(), 3, 0.1, PMUC_PLUS_CONFIG
    ).digest()
    g, k, eta, config = mutate(figure1_graph(), 3, 0.1, PMUC_PLUS_CONFIG)
    assert run_key_for(g, k, eta, config).digest() != base


def test_procedure_is_a_key_axis():
    peel = run_key_for(figure1_graph(), 3, 0.1, PMUC_PLUS_CONFIG)
    sliced = run_key_for(
        figure1_graph(), 3, 0.1, PMUC_PLUS_CONFIG, procedure="slice"
    )
    parts = run_key_for(
        figure1_graph(), 3, 0.1, PMUC_PLUS_CONFIG,
        procedure="peel/parts=2",
    )
    assert len({peel.digest(), sliced.digest(), parts.digest()}) == 3


def test_hooked_and_lean_variants_get_distinct_keys():
    lean = run_key_for(figure1_graph(), 3, 0.1, PMUC_PLUS_CONFIG)
    hooked = run_key_for(
        figure1_graph(), 3, 0.1,
        replace(PMUC_PLUS_CONFIG, sanitize="light"),
    )
    assert lean.variant == "lean"
    assert hooked.variant == "hooked"
    assert lean.digest() != hooked.digest()


def test_reduction_override_changes_only_that_field():
    config = replace(PMUC_PLUS_CONFIG, reduction="off")
    plain = run_key_for(figure1_graph(), 3, 0.1, config)
    overridden = run_key_for(
        figure1_graph(), 3, 0.1, config, reduction="triangle"
    )
    assert plain.reduction == "off"
    assert overridden.reduction == "triangle"
    assert plain.as_dict().keys() == overridden.as_dict().keys()
    differing = [
        name
        for name in plain.as_dict()
        if plain.as_dict()[name] != overridden.as_dict()[name]
    ]
    assert differing == ["reduction"]


def test_dataset_fingerprint_short_circuit_matches_the_hash():
    graph = figure1_graph()
    fingerprint = graph_fingerprint(graph)
    direct = run_key_for(graph, 3, 0.1, PMUC_PLUS_CONFIG)
    shortcut = run_key_for(
        graph, 3, 0.1, PMUC_PLUS_CONFIG,
        dataset_fingerprint=fingerprint,
    )
    assert direct == shortcut


def test_engine_salt_is_memoized_and_folded_into_every_key():
    assert engine_salt() == engine_salt()
    key = run_key_for(figure1_graph(), 3, 0.1, PMUC_PLUS_CONFIG)
    assert key.salt == engine_salt()


# ----------------------------------------------------------------------
# reduction keys
# ----------------------------------------------------------------------
def test_reduction_key_ignores_k_but_not_eta():
    graph = figure1_graph()
    base = reduction_key_for(graph, 0.1)
    assert base == reduction_key_for(graph, 0.1)
    # No cross-eta reuse: shell values are functions of the threshold.
    assert base.digest() != reduction_key_for(graph, 0.05).digest()
    assert isinstance(base, ReductionKey)
    assert base.salt == engine_salt()
