"""Translation validation (REP013), frontier escape (REP014), the
seeded variant-mutant corpus, the re-grounded REP006, the specializer
fold records, the salted cache manifest, and the semantics CLI gate.

The corpus in ``tests/fixtures/variant_mutants/`` is the acceptance
net: each file seeds exactly the miscompile class its name says, and
the tests assert both that REP013/REP014 fire and that the attached
source-to-sink trace names the true template site and variant site.
"""

import ast
import io
import json
import os
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.registry import get_rule
from repro.analysis.runner import run_rules
from repro.analysis.semantics import (
    Difference,
    fold_guard,
    guards_equivalent,
    proven_keys,
)
from repro.analysis.source import SourceFile

REPO = Path(__file__).resolve().parents[1]
SRC_REPRO = REPO / "src" / "repro"
MUTANTS = Path(__file__).parent / "fixtures" / "variant_mutants"


def findings_for(code, rule_id, path="fixture.py"):
    src = SourceFile(path, textwrap.dedent(code))
    kept, _suppressed = run_rules([src], [get_rule(rule_id)])
    return kept


def mutant_findings(name, rule_id):
    src = SourceFile.read(str(MUTANTS / name))
    kept, _ = run_rules([src], [get_rule(rule_id)])
    return src, kept


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


# ----------------------------------------------------------------------
# guard folding / equivalence
# ----------------------------------------------------------------------
def _expr(text):
    return ast.parse(text, mode="eval").body


def test_fold_guard_three_valued_folding():
    env = {"HOOKS": False, "BITSET": True}
    assert fold_guard(_expr("HOOKS"), env) is False
    assert fold_guard(_expr("not HOOKS"), env) is True
    assert fold_guard(_expr("HOOKS and BITSET"), env) is False
    assert fold_guard(_expr("HOOKS or BITSET"), env) is True
    residual = fold_guard(_expr("BITSET and other"), env)
    assert isinstance(residual, ast.AST)


def test_fold_guard_keeps_untouched_tests_identical():
    expr = _expr("a < lo or member(w, r)")
    assert fold_guard(expr, {"HOOKS": False}) is expr


def test_guards_equivalent_truth_table():
    assert guards_equivalent(
        _expr("not (a or b)"), _expr("not a and not b")
    )
    assert not guards_equivalent(_expr("a or b"), _expr("a and b"))


# ----------------------------------------------------------------------
# the specializer's fold records
# ----------------------------------------------------------------------
def test_fold_record_exposes_decisions_and_compiles():
    from repro.engine import driver

    key = next(
        k for k in driver.legal_variant_keys()
        if driver._flag_env(k)["BITSET"]
    )
    record = driver.fold_record(key)
    assert record.key == key
    assert record.env == driver._flag_env(key)
    assert record.decisions
    assert {d[2] for d in record.decisions} <= {True, False, "residual"}
    compile(record.module, "<fold probe>", "exec")
    # Untouched boolean tests must not be recorded as residual folds.
    for _line, test_text, outcome in record.decisions:
        if outcome == "residual":
            assert any(flag in test_text for flag in driver._SPEC_FLAGS)


def test_fold_record_records_residual_mixed_guards():
    from repro.engine import driver

    key = next(
        k for k in driver.legal_variant_keys() if k[3] == "basic"
    )
    record = driver.fold_record(key)
    assert any(d[2] == "residual" for d in record.decisions)


# ----------------------------------------------------------------------
# the full variant matrix is proven on main
# ----------------------------------------------------------------------
def test_every_shipped_variant_is_proven_equivalent():
    from repro.engine import driver

    src = SourceFile.read(str(SRC_REPRO / "engine" / "driver.py"))
    counts = proven_keys(src.tree, src.lines)
    assert len(counts) == len(driver.legal_variant_keys())
    unproven = {k: n for k, n in counts.items() if n}
    assert unproven == {}


def test_rep013_is_silent_on_the_engine_driver():
    src = SourceFile.read(str(SRC_REPRO / "engine" / "driver.py"))
    kept, _ = run_rules([src], [get_rule("REP013")])
    assert kept == [], [f.format_text() for f in kept]


def test_rep013_is_silent_off_anchor():
    for rel in ("core/pmuc.py", "kernel/enumerate.py"):
        src = SourceFile.read(str(SRC_REPRO / rel))
        kept, _ = run_rules([src], [get_rule("REP013")])
        assert kept == [], rel


# ----------------------------------------------------------------------
# seeded miscompile corpus (REP013)
# ----------------------------------------------------------------------
def test_clean_corpus_variants_are_proven():
    _src, kept = mutant_findings("clean_variants.py", "REP013")
    assert kept == [], [f.format_text() for f in kept]


def test_dropped_emission_is_caught_with_trace():
    src, kept = mutant_findings("dropped_emission.py", "REP013")
    emission = [f for f in kept if "lost an emission site" in f.message]
    assert len(emission) == 1
    finding = emission[0]
    assert "sink_call" in finding.message
    assert "template emits this at 1 site(s), the variant at 0" in (
        finding.message
    )
    # Source-to-sink trace: fold context first, template site last-but-
    # one, unreachable-site verdict at the sink.
    assert finding.trace[0]["note"].startswith("template folded under")
    assert "BITSET" in finding.trace[0]["note"]
    spec_step = finding.trace[-2]
    assert "template specifies" in spec_step["note"]
    assert "sink_call" in spec_step["text"]
    assert finding.trace[-1]["note"] == (
        "emission site unreachable in the folded variant"
    )
    structural = [f for f in kept if "drops the template's" in f.message]
    assert structural, [f.message for f in kept]
    assert finding.fingerprint


def test_reordered_kpivot_stop_is_caught():
    src, kept = mutant_findings("reordered_stop.py", "REP013")
    assert len(kept) == 1
    finding = kept[0]
    assert "reorders" in finding.message
    assert "if depth + popcount(c) < k" in finding.message
    # Anchored on the statement the variant ran too early.
    assert src.lines[finding.line - 1].strip() == "c_bits = c"
    assert any(
        "template specifies" in step["note"] for step in finding.trace
    )


def test_hook_leaked_into_hookless_variant_is_caught():
    _src, kept = mutant_findings("hook_leak.py", "REP013")
    leaks = [f for f in kept if "hookless variant" in f.message]
    assert leaks, [f.message for f in kept]
    assert any(
        "hook call `obs:hook:on_node` survives" in f.message
        for f in leaks
    )
    assert any(
        "still references the `obs` binding" in f.message for f in leaks
    )


def test_set_materialized_bitset_is_caught_by_escape_leg():
    src, kept = mutant_findings("set_materialized.py", "REP013")
    escapes = [f for f in kept if "materialized via `set(...)`" in f.message]
    assert escapes, [f.message for f in kept]
    variant_hit = [f for f in escapes if "`_variant_bitset`" in f.message]
    assert variant_hit
    finding = variant_hit[0]
    assert "bit-domain name `c_bits`" in finding.message
    assert src.lines[finding.line - 1].strip() == "probe = set(c_bits)"
    assert any("bitset materialized" in step["note"] for step in finding.trace)


def test_rep013_flags_missing_declared_variant():
    kept = findings_for(
        """
        VARIANT_ENVS = {"_variant_gone": {"HOOKS": False}}


        def _search_template(ops):
            pass
        """,
        "REP013",
    )
    assert len(kept) == 1
    assert "does not define it" in kept[0].message


# ----------------------------------------------------------------------
# frontier escape corpus (REP014)
# ----------------------------------------------------------------------
def test_frontier_escape_catches_all_three_legs():
    src, kept = mutant_findings("unpicklable_frontier.py", "REP014")
    assert len(kept) == 3, [f.format_text() for f in kept]

    worker = next(f for f in kept if "mutates state it received" in f.message)
    assert "'_run_shard'" in worker.message
    assert src.lines[worker.line - 1].strip().startswith("return pool.map(")
    notes = [step["note"] for step in worker.trace]
    assert any("received from the parent process" in n for n in notes)
    assert notes[-1] == "worker crosses the process boundary here"

    payload = next(f for f in kept if "dispatch payload" in f.message)
    assert "`open(...)` handle" in payload.message
    assert "Process" in src.lines[payload.line - 1]
    assert payload.trace[-1]["note"] == (
        "reaches the process boundary here"
    )

    frontier = next(f for f in kept if "root_state" in f.message)
    assert "lambda" in frontier.message
    assert src.lines[frontier.line - 1].strip().startswith("return {")
    assert frontier.trace[-1]["note"] == (
        "frontier state leaves root_state here"
    )
    assert all(f.fingerprint for f in kept)


def test_rep014_is_silent_on_shipped_parallel_paths():
    for rel in ("core/partition.py", "analysis/runner.py"):
        src = SourceFile.read(str(SRC_REPRO / rel))
        kept, _ = run_rules([src], [get_rule("REP014")])
        assert kept == [], (rel, [f.format_text() for f in kept])


def test_rep014_pool_iterable_comprehension_is_parent_side():
    assert findings_for(
        """
        import multiprocessing


        def work(shard):
            return shard


        def run(shards):
            with multiprocessing.Pool() as pool:
                return pool.map(work, (s for s in shards))
        """,
        "REP014",
    ) == []


def test_rep014_materialized_generator_payload_is_clean():
    assert findings_for(
        """
        import multiprocessing


        def work(shard):
            return shard


        def run(shards):
            payload = tuple(s for s in shards)
            with multiprocessing.Pool() as pool:
                return pool.map(work, payload)
        """,
        "REP014",
    ) == []


def test_rep014_flags_lambda_worker_dispatch():
    kept = findings_for(
        """
        import multiprocessing


        def run(shards):
            job = lambda s: s
            with multiprocessing.Pool() as pool:
                return pool.map(job, shards)
        """,
        "REP014",
    )
    assert len(kept) == 1
    assert "lambda" in kept[0].message


# ----------------------------------------------------------------------
# REP006 on the escape summaries
# ----------------------------------------------------------------------
def test_rep006_strong_update_clears_recreated_state():
    assert findings_for(
        """
        import multiprocessing


        def worker(job):
            stats = job
            stats = {}
            stats["calls"] = 1
            return stats


        def run(jobs):
            with multiprocessing.Pool() as pool:
                return pool.map(worker, jobs)
        """,
        "REP006",
    ) == []


def test_rep006_flags_subscript_write_into_parent_state():
    kept = findings_for(
        """
        import multiprocessing


        def worker(job):
            graph, acc = job
            acc["calls"] = 1
            return graph


        def run(jobs):
            with multiprocessing.Pool() as pool:
                return pool.map(worker, jobs)
        """,
        "REP006",
    )
    assert len(kept) == 1
    assert "writes into 'acc', state received from the parent" in (
        kept[0].message
    )
    assert kept[0].trace
    assert kept[0].fingerprint


# ----------------------------------------------------------------------
# SARIF integration
# ----------------------------------------------------------------------
def test_sarif_carries_code_flows_for_rep013_and_rep014(tmp_path):
    code, text = run_cli(
        [
            str(MUTANTS / "dropped_emission.py"),
            str(MUTANTS / "unpicklable_frontier.py"),
            "--no-baseline",
            "--no-cache",
            "--format=sarif",
        ]
    )
    assert code == 1
    payload = json.loads(text)
    results = payload["runs"][0]["results"]
    by_rule = {}
    for result in results:
        by_rule.setdefault(result["ruleId"], []).append(result)
    assert "REP013" in by_rule and "REP014" in by_rule
    for rule_id in ("REP013", "REP014"):
        flowed = [r for r in by_rule[rule_id] if "codeFlows" in r]
        assert flowed, rule_id
        for result in flowed:
            locations = result["codeFlows"][0]["threadFlows"][0][
                "locations"
            ]
            assert len(locations) >= 2
            assert "partialFingerprints" in result
    rules_meta = payload["runs"][0]["tool"]["driver"]["rules"]
    ids = {r["id"] for r in rules_meta}
    assert {"REP013", "REP014"} <= ids


# ----------------------------------------------------------------------
# cache tool salt
# ----------------------------------------------------------------------
def test_salt_manifest_covers_all_rule_semantics_sources():
    from repro.analysis.cache import salted_sources

    rels = {rel for rel, _blob in salted_sources()}
    for sub in ("rules", "flow", "semantics"):
        assert any(rel.startswith(sub + os.sep) for rel in rels), sub
    assert "<engine>/driver.py" in rels
    assert any(
        rel == os.path.join("semantics", "validate.py") for rel in rels
    )


def test_salted_sources_refuses_partial_package_walk(monkeypatch):
    import repro.analysis.cache as cache

    def partial():
        for rel, blob in original():
            if rel.split(os.sep)[0] != "semantics":
                yield rel, blob

    original = cache._iter_package_sources
    monkeypatch.setattr(cache, "_iter_package_sources", partial)
    with pytest.raises(RuntimeError, match="semantics"):
        cache.salted_sources()


@pytest.mark.parametrize("subpackage", ["rules", "semantics", "flow"])
def test_tool_salt_changes_when_analysis_sources_change(
    monkeypatch, subpackage
):
    import repro.analysis.cache as cache

    manifest = list(cache.salted_sources())
    monkeypatch.setattr(cache, "_tool_salt_memo", None)
    monkeypatch.setattr(cache, "salted_sources", lambda: manifest)
    before = cache.tool_salt()
    mutated = [
        (rel, blob + b"\n# edited" if rel.startswith(subpackage) else blob)
        for rel, blob in manifest
    ]
    assert mutated != manifest
    monkeypatch.setattr(cache, "_tool_salt_memo", None)
    monkeypatch.setattr(cache, "salted_sources", lambda: mutated)
    assert cache.tool_salt() != before


def test_tool_salt_changes_when_driver_changes(monkeypatch):
    import repro.analysis.cache as cache

    manifest = list(cache.salted_sources())
    monkeypatch.setattr(cache, "_tool_salt_memo", None)
    monkeypatch.setattr(cache, "salted_sources", lambda: manifest)
    before = cache.tool_salt()
    mutated = [
        (rel, blob + b"#" if rel == "<engine>/driver.py" else blob)
        for rel, blob in manifest
    ]
    monkeypatch.setattr(cache, "_tool_salt_memo", None)
    monkeypatch.setattr(cache, "salted_sources", lambda: mutated)
    assert cache.tool_salt() != before


# ----------------------------------------------------------------------
# the CLI gate
# ----------------------------------------------------------------------
def test_semantics_cli_proves_the_full_matrix():
    from repro.analysis.semantics.__main__ import main as sem_main
    from repro.engine import driver

    out = io.StringIO()
    code = sem_main([], out=out)
    text = out.getvalue()
    total = len(driver.legal_variant_keys())
    assert code == 0, text
    assert f"{total}/{total} variant keys proven equivalent" in text
    assert text.count("PROVEN") == total
    assert "FAILED" not in text


def test_semantics_cli_fails_on_unproven_variant(monkeypatch):
    import repro.analysis.semantics.validate as validate_mod
    from repro.analysis.semantics.__main__ import main as sem_main
    from repro.engine import driver

    key = driver.legal_variant_keys()[0]
    diff = Difference(
        "missing",
        "seeded validation failure",
        3,
        3,
        ({"line": 3, "col": 0, "text": "x = 1", "note": "seeded"},),
    )

    def broken(tree, lines):
        yield key, diff

    monkeypatch.setattr(
        validate_mod, "validate_template_source", broken
    )
    out = io.StringIO()
    code = sem_main([], out=out)
    text = out.getvalue()
    assert code == 1
    assert "FAILED" in text
    assert "seeded validation failure" in text
    assert "line 3: seeded" in text
