"""Executable versions of Section 3's negative results.

The paper argues that the classic Bron–Kerbosch pivot rule cannot be
lifted to maximal η-clique enumeration.  These tests *construct* the
failures: applying either classic-pivot variant described in Section 3
to an uncertain graph provably misses maximal η-cliques, while the
paper's M-pivot algorithm finds them.
"""

from repro.core import enumerate_maximal_cliques
from repro.datasets import figure1_graph
from repro.uncertain import (
    UncertainGraph,
    clique_probability,
    is_maximal_eta_clique,
)


def classic_pivot_eta_enumeration(graph: UncertainGraph, eta):
    """Classic BK pivot transplanted onto η-cliques (Section 3's
    'failed attempt'): pick the pivot covering most candidates and skip
    its η-compatible neighbors."""
    results = []

    def recurse(r, c, x):
        if not c and not x:
            results.append(frozenset(r))
            return
        pool = c | x
        pivot = max(
            pool,
            key=lambda u: sum(1 for w in c if graph.probability(u, w)),
        )
        skip = {
            u
            for u in c
            if graph.probability(pivot, u)
            and clique_probability(graph, r + [pivot, u]) >= eta
        }
        for v in sorted(c - skip, key=repr):
            r.append(v)
            c_new = {
                u for u in c if u != v and clique_probability(graph, r + [u]) >= eta
            }
            x_new = {u for u in x if clique_probability(graph, r + [u]) >= eta}
            recurse(r, c_new, x_new)
            r.pop()
            c.discard(v)
            x.add(v)

    recurse([], set(graph.vertices()), set())
    return set(results)


class TestClassicPivotFails:
    def test_misses_maximal_eta_clique_on_figure1(self):
        """With η = 0.65, {v4, v5, v6, v7} is a maximal η-clique but not
        a maximal deterministic clique; classic pivoting loses results."""
        graph = figure1_graph().subgraph([4, 5, 6, 7, 8])
        eta = 0.65
        truth = set(enumerate_maximal_cliques(graph, 1, eta, "muc-basic").cliques)
        assert frozenset({4, 5, 6, 7}) in truth
        classic = classic_pivot_eta_enumeration(graph, eta)
        assert classic != truth
        assert not truth <= classic  # at least one maximal clique missed

    def test_probability_aware_skip_also_fails(self):
        """Section 3's second attempt: even skipping only η-compatible
        neighbors of the pivot can miss R ∪ {u1, u2} when
        R ∪ {v, u1, u2} is not an η-clique."""
        # Triangle v-u1-u2 where each pair with v is strong but the
        # 4-set (here 3-set with R = {}) through v fails.
        g = UncertainGraph(
            [
                ("v", "u1", 0.8),
                ("v", "u2", 0.8),
                ("u1", "u2", 0.8),
            ]
        )
        eta = 0.6
        # Each pair is an η-clique; the full triangle is not (0.512).
        truth = set(enumerate_maximal_cliques(g, 1, eta, "muc-basic").cliques)
        assert truth == {
            frozenset({"v", "u1"}),
            frozenset({"v", "u2"}),
            frozenset({"u1", "u2"}),
        }
        classic = classic_pivot_eta_enumeration(g, eta)
        # The pivot skips both of its η-compatible neighbors, so the
        # maximal pair avoiding the pivot is lost (which pair depends
        # on the tie-broken pivot choice).
        missed = truth - classic
        assert missed
        assert all(len(clique) == 2 for clique in missed)


class TestMPivotSucceeds:
    def test_pivot_algorithms_recover_all(self):
        graph = figure1_graph().subgraph([4, 5, 6, 7, 8])
        eta = 0.65
        truth = set(enumerate_maximal_cliques(graph, 1, eta, "muc-basic").cliques)
        for algorithm in ("pmuc", "pmuc+"):
            got = set(enumerate_maximal_cliques(graph, 1, eta, algorithm).cliques)
            assert got == truth

    def test_every_output_is_maximal(self):
        graph = figure1_graph()
        for clique in enumerate_maximal_cliques(graph, 1, 0.65, "pmuc+").cliques:
            assert is_maximal_eta_clique(graph, clique, 0.65)
