"""Runtime sanitizer: clean runs, mutation detection, levels, replay.

The mutation tests are the core contract: each one breaks a specific
paper invariant on purpose (tampered pivot cover, perturbed kernel log
weights, over-pruning reduction) and asserts the sanitizer catches it
at the documented level with the right check id and recursion path.
"""

import importlib
from dataclasses import replace
from fractions import Fraction

import pytest

from repro.bench.harness import sanitized_config_enumeration
from repro.core.config import PMUC_PLUS_CONFIG, PivotConfig
from repro.core.pmuc import PivotEnumerator
from repro.datasets.figure1 import figure1_graph
from repro.exceptions import ParameterError, SanitizerViolation
from repro.kernel.compact import CompactGraph
from repro.sanitize import (
    AddOutcome,
    CliqueStreamIndex,
    Sanitizer,
    ViolationReport,
    build_sanitizer,
    replay,
    resolve_level,
)

@pytest.fixture(autouse=True)
def _isolate_sanitize_env(monkeypatch):
    """Make the module's level expectations independent of the ambient
    ``REPRO_SANITIZE`` (the CI sanitize job exports it globally)."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)


K, ETA = 3, 0.1
#: All maximal (3, 0.1)-cliques of the Figure-1 graph.
EXPECTED = {
    frozenset({1, 2, 3, 8}),
    frozenset({3, 4, 8}),
    frozenset({4, 5, 6, 7, 8}),
}


def config(backend: str = "dict", sanitize: str = "full") -> PivotConfig:
    return replace(PMUC_PLUS_CONFIG, backend=backend, sanitize=sanitize)


def run_figure1(backend: str = "dict", sanitize: str = "full"):
    enumerator = PivotEnumerator(
        figure1_graph(), K, ETA, config(backend, sanitize)
    )
    return enumerator, enumerator.run()


# ----------------------------------------------------------------------
# clean runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["dict", "kernel"])
@pytest.mark.parametrize("level", ["light", "full"])
def test_sanitized_run_is_clean_and_complete(backend, level):
    _, result = run_figure1(backend, level)
    assert set(result.cliques) == EXPECTED


def test_full_level_exercises_every_check():
    enumerator, _ = run_figure1("dict", "full")
    counts = enumerator._san.checks_run
    assert counts["S1"] == counts["S2"] == counts["S4"] == len(EXPECTED)
    assert counts["S3"] >= 1
    assert counts["S5"] == 1


def test_light_level_skips_the_shadow_cross_check():
    enumerator, _ = run_figure1("dict", "light")
    assert enumerator._san.checks_run["S5"] == 0


def test_off_level_installs_no_sanitizer():
    enumerator, _ = run_figure1("dict", "off")
    assert enumerator._san is None
    assert build_sanitizer(figure1_graph(), K, ETA, config("dict", "off")) is None


# ----------------------------------------------------------------------
# level resolution (config field + REPRO_SANITIZE environment override)
# ----------------------------------------------------------------------
def test_env_var_applies_only_when_config_is_off(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "full")
    assert resolve_level(config(sanitize="off")) == "full"
    # An explicit config level always wins over the environment.
    assert resolve_level(config(sanitize="light")) == "light"


def test_env_var_unset_or_blank_means_off(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert resolve_level(config(sanitize="off")) == "off"
    monkeypatch.setenv("REPRO_SANITIZE", "  ")
    assert resolve_level(config(sanitize="off")) == "off"


def test_invalid_env_var_is_a_parameter_error(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "paranoid")
    with pytest.raises(ParameterError, match="REPRO_SANITIZE"):
        resolve_level(config(sanitize="off"))


def test_env_var_enables_the_sanitizer_end_to_end(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "full")
    enumerator, result = run_figure1("dict", "off")
    assert set(result.cliques) == EXPECTED
    assert enumerator._san is not None
    assert enumerator._san.level == "full"


def test_config_rejects_unknown_sanitize_level():
    with pytest.raises(ParameterError):
        replace(PMUC_PLUS_CONFIG, sanitize="verbose")
    with pytest.raises(ParameterError):
        Sanitizer(figure1_graph(), K, ETA, level="off", backend="dict")


# ----------------------------------------------------------------------
# mutation: tampered pivot cover (S3)
# ----------------------------------------------------------------------
@pytest.fixture
def tampered_pivot_cover(monkeypatch):
    """Inflate every returned branch-best clique with a bogus vertex.

    The periphery ``Q`` is built from these return values, so the
    M-pivot cover stops start claiming a ``Q`` that is not an η-clique
    — exactly the Theorem 4.2 soundness bug S3 exists to catch.
    """
    driver = importlib.import_module("repro.engine.driver")
    original_build = driver.build_search

    def tampered_build(*args, **kwargs):
        search, flush = original_build(*args, **kwargs)

        def tampered(r, q, c, x, depth):
            best = search(r, q, c, x, depth)
            # ``None`` stands for the un-materialized ``r`` itself;
            # materialize it so the bogus vertex can ride along.
            if best is None:
                best = list(r) + [999]
            elif 999 not in best:
                best = list(best) + [999]
            return best

        # The compiled recursion calls itself through its own closure
        # cell; redirecting that cell at the wrapper tampers every
        # level of the search tree, not just the outer-loop roots.
        for i, name in enumerate(search.__code__.co_freevars):
            if name == "search":
                search.__closure__[i].cell_contents = tampered
        return tampered, flush

    monkeypatch.setattr(driver, "build_search", tampered_build)


@pytest.mark.parametrize("level", ["light", "full"])
def test_tampered_pivot_cover_is_caught(tampered_pivot_cover, level):
    with pytest.raises(SanitizerViolation) as exc:
        run_figure1("dict", level)
    report = exc.value.report
    assert report.check == "S3"
    assert report.name == "pivot-cover"
    assert report.level == level
    assert report.backend == "dict"
    assert report.path, "recursion path must name the offending subtree"
    assert "recursion path" in str(exc.value)


def test_tampered_pivot_cover_passes_unchecked_when_off(tampered_pivot_cover):
    # Sanity check on the mutation itself: with the sanitizer off the
    # tampered run completes silently — the violation above really
    # comes from the S3 check, not from the enumerator crashing.
    _, result = run_figure1("dict", "off")
    assert len(result.cliques) >= 1


# ----------------------------------------------------------------------
# mutation: perturbed kernel log weights (S4)
# ----------------------------------------------------------------------
@pytest.fixture
def perturbed_kernel_logs(monkeypatch):
    """Shift every kernel -log weight by 1e-4 (far above DRIFT_TOL)."""
    original = CompactGraph.from_uncertain.__func__

    def perturbed(cls, graph):
        cg = original(cls, graph)
        cg.nbr_nlogs = [[nl + 1e-4 for nl in row] for row in cg.nbr_nlogs]
        cg.nlog = [
            {j: nl + 1e-4 for j, nl in row.items()} for row in cg.nlog
        ]
        return cg

    monkeypatch.setattr(
        CompactGraph, "from_uncertain", classmethod(perturbed)
    )


def test_perturbed_kernel_log_weights_are_caught(perturbed_kernel_logs):
    with pytest.raises(SanitizerViolation) as exc:
        run_figure1("kernel", "light")
    report = exc.value.report
    assert report.check == "S4"
    assert report.name == "numeric-drift"
    assert report.backend == "kernel"
    assert report.detail["log_domain"] is True
    assert "drifts" in report.message
    assert set(report.path) in EXPECTED


# ----------------------------------------------------------------------
# mutation: over-pruning reduction (S5, full only)
# ----------------------------------------------------------------------
@pytest.fixture
def overpruning_reduction(monkeypatch):
    """Make the (Top_k, η)-core reduction illegally drop {1, 2, 3}.

    ``importlib`` is required here: the ``repro.core`` package re-exports
    a ``pmuc`` *function*, which shadows the submodule under plain
    attribute access.
    """
    pmuc_module = importlib.import_module("repro.core.pmuc")
    original = pmuc_module.topk_core

    def overprune(graph, k, eta):
        reduced = original(graph, k, eta)
        return reduced.subgraph(
            [v for v in reduced.vertices() if v not in {1, 2, 3}]
        )

    monkeypatch.setattr(pmuc_module, "topk_core", overprune)


def test_overpruning_reduction_is_caught_at_full(overpruning_reduction):
    with pytest.raises(SanitizerViolation) as exc:
        run_figure1("dict", "full")
    report = exc.value.report
    assert report.check == "S5"
    assert report.name == "reduction-safety"
    assert [1, 2, 3, 8] in report.detail["missing"]
    assert [3, 4, 8] in report.detail["missing"]
    assert report.detail["spurious"] == []
    assert report.detail["pruned_vertices"] == [1, 2, 3]


def test_overpruning_reduction_slips_past_light(overpruning_reduction):
    # The surviving emission {4..8} is maximal in the original graph,
    # so S1/S2/S4 stay silent — only the full-level shadow comparison
    # can see the *missing* cliques.  This pins the level gating.
    _, result = run_figure1("dict", "light")
    assert set(result.cliques) == {frozenset({4, 5, 6, 7, 8})}


# ----------------------------------------------------------------------
# direct hook-level checks (no enumerator in the loop)
# ----------------------------------------------------------------------
def make_sanitizer(level="full"):
    return Sanitizer(
        figure1_graph(), K, ETA, level=level, backend="dict"
    )


def violation(callable_, *args, **kwargs):
    with pytest.raises(SanitizerViolation) as exc:
        callable_(*args, **kwargs)
    return exc.value.report


def test_s1_rejects_undersized_and_non_clique_emissions():
    report = violation(make_sanitizer().on_emit, [1, 2], 0.95, False)
    assert report.check == "S1" and "k-set" in report.message
    # 1-4 is not an edge, so {1, 2, 4} has probability 0.
    report = violation(make_sanitizer().on_emit, [1, 2, 4], 0.5, False)
    assert report.check == "S1" and "not an eta-clique" in report.message


def test_s2_rejects_duplicates_and_non_maximal_emissions():
    san = make_sanitizer()
    q = 0.9 ** 5
    san.on_emit([4, 5, 6, 7, 8], q, False)
    report = violation(san.on_emit, [8, 4, 5, 6, 7], q, False)
    assert report.check == "S2" and "more than once" in report.message
    # {4, 5, 6, 7} (probability 0.9 — only the 4-5 edge is uncertain)
    # extends by 8.
    report = violation(make_sanitizer().on_emit, [4, 5, 6, 7], 0.9, False)
    assert report.check == "S2"
    assert report.detail["extension"] == 8


def test_s4_rejects_a_drifting_accumulated_probability():
    report = violation(
        make_sanitizer().on_emit, [4, 5, 6, 7, 8], 0.9 ** 5 + 1e-3, False
    )
    assert report.check == "S4"
    assert report.detail["log_domain"] is False


def test_s3_cover_hook_rejects_bad_peripheries():
    san = make_sanitizer()
    san.on_node(1)
    report = violation(san.on_cover, 1, [4], [5], {5, 6})
    assert report.check == "S3" and "recursion path" in report.message
    report = violation(san.on_cover, 1, [4], [5, 1], {4, 5, 6})
    assert report.check == "S3" and "outside" in report.message
    report = violation(san.on_cover, 1, [4], [5], {4, 5, 1})
    assert report.check == "S3" and "Theorem 4.2" in report.message


def test_s3_cover_is_gated_on_emissions_at_light():
    san = make_sanitizer("light")
    san.on_node(1)
    # No emission under this node yet: the (bogus) cover is not probed.
    san.on_cover(1, [4], [5], {5, 6})
    assert san.checks_run["S3"] == 0
    san.on_emit([4, 5, 6, 7, 8], 0.9 ** 5, False)
    with pytest.raises(SanitizerViolation):
        san.on_cover(1, [4], [5], {5, 6})


def test_improper_coloring_is_caught_at_full():
    san = make_sanitizer()
    report = violation(san.on_context, {1: 0, 2: 0}, [(1, 2)])
    assert report.check == "S3"
    assert report.detail["kind"] == "coloring"
    light = make_sanitizer("light")
    light.on_context({1: 0, 2: 0}, [(1, 2)])  # linear check: full only


# ----------------------------------------------------------------------
# reports, replay, harness integration
# ----------------------------------------------------------------------
def test_report_json_roundtrip_preserves_exact_eta():
    report = ViolationReport(
        check="S1",
        message="probe",
        path=(1, 8, 3),
        k=3,
        eta=Fraction(1, 2),
        level="full",
        backend="kernel",
        detail={"probability": "1/4"},
    )
    back = ViolationReport.from_json(report.to_json())
    assert back == replace(report, detail={"probability": "1/4"})
    assert back.eta == Fraction(1, 2)
    assert back.name == "eta-clique"


def test_violation_report_roundtrips_from_a_real_run(overpruning_reduction):
    with pytest.raises(SanitizerViolation) as exc:
        run_figure1("dict", "full")
    back = ViolationReport.from_json(exc.value.report.to_json())
    assert back.check == "S5"
    assert back.path == exc.value.report.path
    assert back.k == K and back.eta == ETA


def test_replay_revisits_only_the_reported_subtree():
    report = ViolationReport(
        check="S2",
        message="synthetic",
        path=(4, 5),
        k=K,
        eta=ETA,
        level="full",
        backend="dict",
    )
    result = replay(figure1_graph(), report)
    # Seeded at the path root: only the subtree rooted at 4 is
    # re-enumerated (under the full sanitizer), and it is clean.
    assert set(result.cliques) == {frozenset({4, 5, 6, 7, 8})}


def test_sanitized_harness_records_a_clean_run():
    record = sanitized_config_enumeration(
        "fig1", figure1_graph(), K, ETA, PMUC_PLUS_CONFIG
    )
    assert record.num_cliques == len(EXPECTED)
    assert record.extra["sanitize"] == "full"
    assert "violation" not in record.extra
    assert record.stats["outputs"] == len(EXPECTED)


def test_sanitized_harness_records_a_violation(tampered_pivot_cover):
    # The tamper lives in the dict recursion, so pin the dict backend
    # (PMUC_PLUS_CONFIG dispatches to the kernel when it can).
    record = sanitized_config_enumeration(
        "fig1", figure1_graph(), K, ETA, config("dict", "off")
    )
    assert record.stats == {}
    assert record.extra["violation"]["check"] == "S3"
    assert record.extra["violation"]["name"] == "pivot-cover"


# ----------------------------------------------------------------------
# streaming dedup / containment index
# ----------------------------------------------------------------------
def test_stream_index_detects_duplicates_without_reregistering():
    index = CliqueStreamIndex()
    assert index.add(frozenset({1, 2})) == AddOutcome(duplicate=False)
    assert index.add(frozenset({2, 1})).duplicate is True
    assert len(index) == 1
    assert {1, 2} in index and {1, 3} not in index
    assert index.seen() == {frozenset({1, 2})}


def test_stream_index_reports_containment_when_tracking():
    index = CliqueStreamIndex(track_containment=True)
    index.add(frozenset({1, 2, 3}))
    outcome = index.add(frozenset({1, 2}))
    assert outcome.supersets == (frozenset({1, 2, 3}),)
    assert outcome.subsets == ()
    outcome = index.add(frozenset({1, 2, 3, 4}))
    assert set(outcome.subsets) == {frozenset({1, 2, 3}), frozenset({1, 2})}
    assert outcome.supersets == ()
    # Disjoint cliques share no buckets: no probes, no false positives.
    assert index.add(frozenset({7, 8})) == AddOutcome(duplicate=False)
