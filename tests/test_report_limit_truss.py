"""Markdown reports, the enumeration limit, and truss decomposition."""

import pytest

from repro.exceptions import ParameterError
from repro.baselines import k_gamma_truss, truss_decomposition
from repro.bench import markdown_table, render_report, speedup_summary
from repro.core import PivotEnumerator, enumerate_maximal_cliques, muc
from repro.datasets import load_dataset
from repro.uncertain import UncertainGraph, normalize_edge
from tests.conftest import random_uncertain_graph


class TestLimit:
    def test_limit_stops_early(self):
        g = load_dataset("enron")
        capped = enumerate_maximal_cliques(g, 4, 0.1, "pmuc+", limit=5)
        assert len(capped.cliques) == 5
        full = enumerate_maximal_cliques(
            g, 4, 0.1, "pmuc+", on_clique=lambda c: None
        )
        assert capped.stats.calls < full.stats.calls

    def test_limited_output_is_subset_of_full(self):
        g = random_uncertain_graph(5, 14, 0.5)
        full = set(enumerate_maximal_cliques(g, 2, 0.4).cliques)
        capped = enumerate_maximal_cliques(g, 2, 0.4, limit=3)
        assert set(capped.cliques) <= full

    def test_limit_larger_than_result_is_harmless(self, triangle_graph):
        result = enumerate_maximal_cliques(triangle_graph, 3, 0.5, limit=99)
        assert len(result.cliques) == 1

    def test_muc_limit(self):
        g = random_uncertain_graph(6, 12, 0.5)
        capped = muc(g, 2, 0.4, limit=2)
        assert len(capped.cliques) == 2

    def test_limit_validation(self, triangle_graph):
        with pytest.raises(ParameterError):
            enumerate_maximal_cliques(triangle_graph, 2, 0.5, limit=0)
        with pytest.raises(ParameterError):
            muc(triangle_graph, 2, 0.5, limit=-1)

    def test_existence_probe(self):
        """limit=1 is a cheap 'does any (k, η)-clique exist' probe."""
        g = load_dataset("soflow")
        probe = enumerate_maximal_cliques(g, 8, 0.1, "pmuc+", limit=1)
        assert len(probe.cliques) == 1
        assert probe.stats.calls < 200

    def test_pivot_enumerator_limit_kwarg(self, two_communities):
        result = PivotEnumerator(two_communities, 3, 0.5, limit=1).run()
        assert len(result.cliques) == 1


class TestTrussDecomposition:
    def test_consistent_with_peeling(self):
        g = random_uncertain_graph(9, 12, 0.6)
        gamma = 0.2
        levels = truss_decomposition(g, gamma)
        top = max(levels.values(), default=2)
        for k in range(2, top + 1):
            truss = k_gamma_truss(g, k, gamma)
            expected = {
                normalize_edge(u, v) for u, v, _p in truss.edges()
            }
            by_level = {e for e, lvl in levels.items() if lvl >= k}
            assert by_level == expected, k

    def test_triangle_graph_levels(self, triangle_graph):
        levels = truss_decomposition(triangle_graph, 0.5)
        assert set(levels.values()) == {3}

    def test_gamma_validation(self, triangle_graph):
        with pytest.raises(ParameterError):
            truss_decomposition(triangle_graph, 1.5)


class TestReport:
    ROWS = [
        {"dataset": "d", "sweep": "k", "k": 4, "eta": 0.1,
         "algorithm": "muc", "seconds": 1.0, "cliques": 5, "calls": 1000},
        {"dataset": "d", "sweep": "k", "k": 4, "eta": 0.1,
         "algorithm": "pmuc+", "seconds": 0.25, "cliques": 5, "calls": 100},
    ]

    def test_markdown_table(self):
        text = markdown_table(self.ROWS)
        assert text.startswith("| dataset |")
        assert "| muc |" in text and "|---|" in text

    def test_markdown_escapes_pipes(self):
        text = markdown_table([{"a": "x|y"}])
        assert "x\\|y" in text

    def test_empty_table(self):
        assert "no rows" in markdown_table([])

    def test_speedup_summary(self):
        summary = speedup_summary(self.ROWS)
        assert summary == [
            {"dataset": "d", "sweep": "k", "k": 4, "eta": 0.1,
             "speedup_time": 4.0, "speedup_calls": 10.0}
        ]

    def test_speedup_skips_unpaired(self):
        assert speedup_summary(self.ROWS[:1]) == []

    def test_render_report_structure(self):
        report = render_report(
            {"fig3": {"title": "Fig. 3", "rows": self.ROWS}},
            title="Test run",
            preamble="seed 0",
        )
        assert report.startswith("# Test run")
        assert "## Fig. 3" in report
        assert "PMUC+ speedup over MUC" in report

    def test_report_round_trip_via_json(self, tmp_path):
        """The CLI --json dump feeds render_report directly."""
        import json

        from repro.cli import main

        path = tmp_path / "results.json"
        assert main(["table2", "--json", str(path)]) == 0
        sections = json.loads(path.read_text())
        report = render_report(sections)
        assert "## Table 2" in report
        assert "PMUCE" in report
