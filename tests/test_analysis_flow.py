"""Flow-analysis core, the flow rules (REP010–REP012), the seeded
mutant corpus, and the satellites that ride on the flow layer: SARIF
output, fingerprint baselines, the per-file cache and --jobs.

The mutant corpus in ``tests/fixtures/flow_mutants/`` is the
acceptance net: each file seeds exactly the bug class its name says,
and the tests assert both that the rule fires *and* that the attached
dataflow trace names the true source and sink.
"""

import ast
import io
import json
import os
import textwrap
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.cache import FindingsCache
from repro.analysis.cli import main
from repro.analysis.findings import Finding, flow_fingerprint
from repro.analysis.flow import build_cfg, cfgs_for, fixpoint
from repro.analysis.registry import get_rule
from repro.analysis.runner import analyze, run_rules
from repro.analysis.source import SourceFile

REPO = Path(__file__).resolve().parents[1]
SRC_REPRO = REPO / "src" / "repro"
MUTANTS = Path(__file__).parent / "fixtures" / "flow_mutants"


def findings_for(code, rule_id, path="fixture.py"):
    src = SourceFile(path, textwrap.dedent(code))
    kept, _suppressed = run_rules([src], [get_rule(rule_id)])
    return kept


def assert_clean(code, rule_id):
    found = findings_for(code, rule_id)
    assert found == [], [f.format_text() for f in found]


def assert_flags(code, rule_id, count=1):
    found = findings_for(code, rule_id)
    assert len(found) == count, [f.format_text() for f in found]
    assert all(f.rule == rule_id for f in found)
    return found


def mutant_findings(name, rule_id):
    src = SourceFile.read(str(MUTANTS / name))
    kept, _ = run_rules([src], [get_rule(rule_id)])
    return src, kept


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


# ----------------------------------------------------------------------
# CFG core
# ----------------------------------------------------------------------
def _cfg_for(code):
    src = SourceFile("cfg_fixture.py", textwrap.dedent(code))
    funcs = [f for f, _ in cfgs_for(src).values() if f is not None]
    assert len(funcs) == 1
    return next(
        cfg for f, cfg in cfgs_for(src).values() if f is not None
    )


def test_cfg_branch_nodes_and_exceptional_exit():
    cfg = _cfg_for(
        """
        def f(x):
            if x > 0:
                y = work(x)
            else:
                y = 0
            return y
        """
    )
    kinds = {node.kind for node in cfg.nodes}
    assert "test" in kinds
    # The call statement can raise: it must have an edge that reaches
    # the exceptional exit.
    call_nodes = [
        n for n in cfg.nodes
        if n.stmt is not None and "work" in ast.dump(n.stmt)
    ]
    assert call_nodes
    assert any(cfg.raise_exit in n.succ for n in call_nodes)


def test_cfg_finally_nodes_are_tagged_with_their_try():
    cfg = _cfg_for(
        """
        def f(x):
            try:
                y = work(x)
            finally:
                cleanup()
            return y
        """
    )
    tagged = [n for n in cfg.nodes if n.finally_of is not None]
    assert tagged, "finally body nodes must carry finally_of"
    assert all(isinstance(n.finally_of, ast.Try) for n in tagged)


def test_fixpoint_joins_facts_across_branches():
    cfg = _cfg_for(
        """
        def f(flag):
            if flag:
                x = 1
            else:
                y = 2
            return 0
        """
    )

    def transfer(node, state):
        stmt = node.stmt
        if isinstance(stmt, ast.Assign) and isinstance(
            stmt.targets[0], ast.Name
        ):
            return state | {stmt.targets[0].id}
        return state

    before = fixpoint(cfg, frozenset(), transfer, frozenset.union)
    return_nodes = [
        n for n in cfg.nodes if isinstance(n.stmt, ast.Return)
    ]
    assert len(return_nodes) == 1
    # Both branch facts survive the merge.
    assert before[return_nodes[0].index] == frozenset({"x", "y"})


# ----------------------------------------------------------------------
# REP010 — probability-domain mixing
# ----------------------------------------------------------------------
def test_rep010_flags_mix_through_assignment():
    found = assert_flags(
        """
        def f(nlq, p):
            carried = nlq
            return carried + p
        """,
        "REP010",
    )
    message = found[0].message
    assert "log-domain name `nlq`" in message
    assert "linear-probability name `p`" in message
    notes = [step["note"] for step in found[0].trace]
    assert notes[-1] == "domains meet in arithmetic"


def test_rep010_flags_mix_through_tuple_unpacking():
    assert_flags(
        """
        def f(nlq, p):
            packed = (nlq, 3)
            a, b = packed
            return a < p
        """,
        "REP010",
    )


def test_rep010_flags_mix_through_container_round_trip():
    assert_flags(
        """
        def f(sv, p, w):
            vals = [sv[w]]
            x = vals[0]
            return x - p
        """,
        "REP010",
    )


def test_rep010_accepts_blessed_exp_conversion():
    assert_clean(
        """
        from math import exp

        def f(nlq, p):
            linear = exp(-nlq)
            return linear * p
        """,
        "REP010",
    )


def test_rep010_accepts_plain_log_as_ordinary_math():
    # Entropy terms etc.: log() consumes the probability and yields a
    # domain-free scalar, so no log/linear mix exists.
    assert_clean(
        """
        from math import log

        def f(p, q_weight):
            return p * log(p)
        """,
        "REP010",
    )


def test_rep010_flags_nlog_encoding_sources():
    assert_flags(
        """
        from math import log

        def f(p, eta):
            encoded = -log(p)
            return encoded <= eta
        """,
        "REP010",
    )


def test_rep010_strong_update_kills_taint():
    assert_clean(
        """
        def f(nlq, p):
            x = nlq
            x = 0
            return x + p
        """,
        "REP010",
    )


def test_rep010_taint_joins_across_branches():
    assert_flags(
        """
        def f(nlq, p, flag):
            x = 0
            if flag:
                x = nlq
            return x + p
        """,
        "REP010",
    )


# ----------------------------------------------------------------------
# REP011 — bitset escape
# ----------------------------------------------------------------------
def test_rep011_flags_direct_iteration():
    found = assert_flags(
        """
        def f(cand_bits):
            out = 0
            for w in cand_bits:
                out += w
            return out
        """,
        "REP011",
    )
    assert "iterated element-by-element" in found[0].message


def test_rep011_accepts_extraction_idiom_and_popcount():
    assert_clean(
        """
        def f(cand_bits, bit_at):
            total = popcount(cand_bits)
            while cand_bits:
                w = cand_bits.bit_length() - 1
                cand_bits ^= bit_at[w]
                total += w
            return total
        """,
        "REP011",
    )


def test_rep011_flags_list_materialization_through_alias():
    found = assert_flags(
        """
        def f(cand_bits):
            snapshot = cand_bits
            return list(snapshot)
        """,
        "REP011",
    )
    assert "materialized via `list(...)`" in found[0].message


# ----------------------------------------------------------------------
# REP012 — unrestored interpreter/global state
# ----------------------------------------------------------------------
def test_rep012_flags_env_write_without_finally():
    found = assert_flags(
        """
        import os

        def f(value, graph):
            os.environ["MODE"] = value
            return render(graph)
        """,
        "REP012",
    )
    assert "os.environ" in found[0].message


def test_rep012_accepts_env_write_restored_in_finally():
    assert_clean(
        """
        import os

        def f(value, graph):
            old = os.environ.get("MODE")
            os.environ["MODE"] = value
            try:
                return render(graph)
            finally:
                os.environ["MODE"] = old
        """,
        "REP012",
    )


def test_rep012_flags_global_mutation_before_raising_call():
    found = assert_flags(
        """
        TOTAL = 0

        def bump(graph):
            global TOTAL
            TOTAL = 1
            return render(graph)
        """,
        "REP012",
    )
    assert "global `TOTAL`" in found[0].message


def test_rep012_exempts_fill_once_memo_globals():
    assert_clean(
        """
        _CACHE = None

        def load():
            global _CACHE
            if _CACHE is None:
                _CACHE = expensive()
            return _CACHE
        """,
        "REP012",
    )


# ----------------------------------------------------------------------
# seeded mutant corpus: every mutant fires with the expected trace
# ----------------------------------------------------------------------
def test_mutant_variant_log_linear_mix_is_caught():
    src, found = mutant_findings("variant_log_linear_mix.py", "REP010")
    assert len(found) == 1, [f.format_text() for f in found]
    finding = found[0]
    # Anchored to the real source line of the template, not a variant
    # copy's synthetic position.
    assert src.line_text(finding.line) == "score = nlq + p_e  # log-domain nlq meets linear p_e"
    assert "log-domain name `nlq`" in finding.message
    assert "linear-probability name `p_e`" in finding.message
    notes = [step["note"] for step in finding.trace]
    assert "log-domain name `nlq`" in notes
    assert "linear-probability name `p_e`" in notes
    assert notes[-1] == "domains meet in arithmetic"
    assert finding.fingerprint


def test_mutant_variant_mix_invisible_without_folding():
    # Sanity: the sink line sits inside an `if BITSET:` arm, so the
    # finding can only come from a folded variant — the unfolded
    # template is never analyzed.
    src = SourceFile.read(str(MUTANTS / "variant_log_linear_mix.py"))
    from repro.analysis.rules.flow_domains import _function_units

    units = _function_units(src)
    names = [f.name for f, _ in units if f is not None]
    assert "_search_template" in names  # the folded variants
    # More units than the file's two syntactic scopes (module + the
    # template): variants were added.
    assert len(units) > 2


def test_mutant_bitset_escape_is_caught_twice_and_extraction_is_not():
    src, found = mutant_findings("bitset_set_escape.py", "REP011")
    assert len(found) == 2, [f.format_text() for f in found]
    by_verb = {f.message.split("; ")[0]: f for f in found}
    texts = sorted(f.line_text for f in found)
    assert texts == [
        "if cand_bits >> w & 1:  # REP011: per-index membership probe",
        "return set(leaked)  # REP011: materialized via set()",
    ]
    materialize = next(f for f in found if "materialized" in f.message)
    # The trace names the true source — the `cand_bits` reference in
    # the alias assignment — and the materializing sink.
    source, sink = materialize.trace[0], materialize.trace[-1]
    assert source["note"] == "bit-domain name `cand_bits`"
    assert source["text"] == "leaked = cand_bits"
    assert sink["note"] == "bitset materialized via `set(...)`"
    probe = next(f for f in found if "probed per-index" in f.message)
    assert "`>> w & 1`" in probe.message
    assert by_verb  # both shapes present


def test_mutant_unrestored_reclimit_fires_only_on_the_unsafe_twin():
    src, found = mutant_findings("unrestored_reclimit.py", "REP012")
    assert len(found) == 1, [f.format_text() for f in found]
    finding = found[0]
    assert finding.line_text == "sys.setrecursionlimit(needed)"
    assert "sys.setrecursionlimit" in finding.message
    # The trace names the mutation (source) and the escaping statement
    # (sink) — the raising call, not some later line.
    assert len(finding.trace) == 2
    source, sink = finding.trace
    assert source["note"] == "sys.setrecursionlimit mutated"
    assert "explore(graph)" in sink["text"]
    assert "escape" in sink["note"]
    # deepen_safe's mutation is inside the try/finally: silent.
    unsafe_line = finding.line
    deepen_safe_start = next(
        i for i, line in enumerate(src.lines, 1)
        if line.startswith("def deepen_safe")
    )
    assert unsafe_line < deepen_safe_start


def test_mutant_order_taint_chain_traces_the_last_assignment():
    src, found = mutant_findings("order_taint_chain.py", "REP001")
    assert len(found) == 1, [f.format_text() for f in found]
    finding = found[0]
    assert finding.line_text.startswith("for v in chosen:")
    assert len(finding.trace) == 2
    source, sink = finding.trace
    assert source["text"] == "chosen = staged"
    assert source["note"] == "unordered iterable assigned here"
    assert sink["note"] == "hash order leaks into ordered output"
    assert finding.fingerprint == flow_fingerprint(
        "REP001", "chosen = staged", finding.line_text
    )


# ----------------------------------------------------------------------
# negatives on real engine/kernel sources
# ----------------------------------------------------------------------
def test_flow_rules_clean_on_engine_and_kernel_sources():
    targets = [SRC_REPRO / "engine" / "driver.py"]
    targets += sorted((SRC_REPRO / "kernel").glob("*.py"))
    files = [SourceFile.read(str(p)) for p in targets]
    for rule_id in ("REP010", "REP011", "REP012"):
        kept, _suppressed = run_rules(files, [get_rule(rule_id)])
        assert kept == [], (
            rule_id,
            [f.format_text() for f in kept],
        )


def test_rep003_flow_extension_flags_taint_through_assignments():
    # Neither `carried` nor `cutoff` matches the name heuristic — the
    # syntactic pass is blind here; only the flow extension sees the
    # probability taint carried through the assignment chain.
    found = assert_flags(
        """
        def f(p_edge, cutoff):
            staged = p_edge
            carried = staged
            if carried == cutoff:
                return 1
            return 0
        """,
        "REP003",
    )
    finding = found[0]
    assert finding.trace, "flow extension must attach a trace"
    assert "probability taint" in finding.message
    assert "linear-probability name `p_edge`" in finding.message
    assert finding.fingerprint


# ----------------------------------------------------------------------
# fingerprints and the baseline
# ----------------------------------------------------------------------
def _reclimit_code(prefix_lines=0):
    return ("# pad\n" * prefix_lines) + textwrap.dedent(
        """
        import sys

        def f(graph, needed):
            sys.setrecursionlimit(needed)
            return walk(graph)
        """
    )


def test_fingerprint_survives_line_moves(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text(_reclimit_code())
    first = analyze([str(bad)]).findings
    bad.write_text(_reclimit_code(prefix_lines=7))
    second = analyze([str(bad)]).findings
    assert len(first) == len(second) == 1
    assert first[0].line != second[0].line
    assert first[0].fingerprint == second[0].fingerprint


def test_baseline_fingerprint_matching_ignores_line_text(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text(_reclimit_code())
    finding = analyze([str(bad)]).findings[0]
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(
        json.dumps(
            {
                "findings": [
                    {
                        "rule": "REP012",
                        "path": "mod.py",
                        "line_text": "<stale text is ignored>",
                        "fingerprint": finding.fingerprint,
                        "justification": "fingerprint carries identity",
                    }
                ]
            }
        )
    )
    report = analyze(
        [str(bad)], baseline=Baseline.load(str(baseline_file))
    )
    assert report.findings == []
    assert len(report.grandfathered) == 1
    assert report.unused_baseline == []


def test_prune_stale_drops_fingerprint_entries_whose_finding_is_gone(
    tmp_path,
):
    bad = tmp_path / "mod.py"
    bad.write_text(_reclimit_code())
    finding = analyze([str(bad)]).findings[0]
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(
        json.dumps(
            {
                "findings": [
                    {
                        "rule": "REP012",
                        "path": "mod.py",
                        "line_text": finding.line_text,
                        "fingerprint": finding.fingerprint,
                        "justification": "goes stale after the fix",
                    }
                ]
            }
        )
    )
    # Fix the bug: wrap in try/finally.
    bad.write_text(
        textwrap.dedent(
            """
            import sys

            def f(graph, needed):
                old = sys.getrecursionlimit()
                sys.setrecursionlimit(needed)
                try:
                    return walk(graph)
                finally:
                    sys.setrecursionlimit(old)
            """
        )
    )
    code, text = run_cli(
        [
            str(bad),
            "--baseline",
            str(baseline_file),
            "--prune-stale",
            "--no-cache",
        ]
    )
    assert code == 0
    assert "pruned 1 stale entry" in text
    assert json.loads(baseline_file.read_text())["findings"] == []


def test_committed_baseline_rep012_entries_carry_fingerprints():
    entries = Baseline.load(
        str(REPO / "repro-lint.baseline.json")
    ).entries
    flow_entries = [e for e in entries if e.rule == "REP012"]
    assert flow_entries, "cli.py env plumbing must be baselined"
    assert all(e.fingerprint for e in flow_entries)


# ----------------------------------------------------------------------
# SARIF output
# ----------------------------------------------------------------------
def test_cli_sarif_output_is_valid_and_carries_code_flows(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(_reclimit_code())
    code, text = run_cli(
        [str(bad), "--no-baseline", "--no-cache", "--format=sarif"]
    )
    assert code == 1
    doc = json.loads(text)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = {r["id"] for r in driver["rules"]}
    assert {"REP001", "REP010", "REP011", "REP012"} <= rule_ids
    results = run["results"]
    assert len(results) == 1
    result = results[0]
    assert result["ruleId"] == "REP012"
    assert result["level"] == "error"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1 and region["startColumn"] >= 1
    flow_locs = result["codeFlows"][0]["threadFlows"][0]["locations"]
    assert len(flow_locs) == 2  # mutation source + escaping sink
    assert result["partialFingerprints"]["reproFlowFingerprint/v1"]
    assert "suppressions" not in result


def test_sarif_marks_suppressed_and_baselined_results(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def f(values):\n"
        "    # repro-lint: ok REP001 order-insensitive\n"
        "    return [v for v in set(values)]\n"
    )
    code, text = run_cli(
        [str(bad), "--no-baseline", "--no-cache", "--format=sarif"]
    )
    assert code == 0
    results = json.loads(text)["runs"][0]["results"]
    assert len(results) == 1
    assert results[0]["suppressions"] == [{"kind": "inSource"}]


# ----------------------------------------------------------------------
# per-file cache
# ----------------------------------------------------------------------
def test_cache_hits_on_unchanged_content_and_reproduces_findings(
    tmp_path,
):
    bad = tmp_path / "bad.py"
    bad.write_text(_reclimit_code())
    root = str(tmp_path / "cache")
    first = analyze([str(bad)], cache=FindingsCache(root))
    assert (first.cache_hits, first.cache_misses) == (0, 1)
    second = analyze([str(bad)], cache=FindingsCache(root))
    assert (second.cache_hits, second.cache_misses) == (1, 0)
    assert [f.as_dict() for f in second.findings] == [
        f.as_dict() for f in first.findings
    ]
    # Trace and fingerprint round-trip through the cache.
    assert second.findings[0].trace == first.findings[0].trace
    assert second.findings[0].fingerprint == first.findings[0].fingerprint


def test_cache_misses_when_content_changes(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(_reclimit_code())
    root = str(tmp_path / "cache")
    analyze([str(bad)], cache=FindingsCache(root))
    bad.write_text(_reclimit_code(prefix_lines=3))
    report = analyze([str(bad)], cache=FindingsCache(root))
    assert (report.cache_hits, report.cache_misses) == (0, 1)
    assert len(report.findings) == 1


def test_cache_ignores_corrupt_entries(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(_reclimit_code())
    root = tmp_path / "cache"
    cache = FindingsCache(str(root))
    analyze([str(bad)], cache=cache)
    for entry in root.rglob("*.json"):
        entry.write_text("{not json")
    report = analyze([str(bad)], cache=FindingsCache(str(root)))
    assert report.cache_misses == 1
    assert len(report.findings) == 1


def test_cache_keys_include_the_path(tmp_path):
    # Identical content at a different path must not serve the other
    # file's cached findings (they embed the scanned path).
    content = "def f(values):\n    return [v for v in set(values)]\n"
    a = tmp_path / "a.py"
    b = tmp_path / "b.py"
    a.write_text(content)
    b.write_text(content)
    root = str(tmp_path / "cache")
    analyze([str(a)], cache=FindingsCache(root))
    report = analyze([str(b)], cache=FindingsCache(root))
    assert report.cache_hits == 0
    assert [f.path for f in report.findings] == [str(b)]


def test_cache_hit_rebinds_path_spelling(tmp_path, monkeypatch):
    # The key normalizes the path, so `sub/f.py` and its absolute
    # spelling share one entry; findings served from it must carry the
    # spelling being scanned or exact-path suppression matching breaks.
    sub = tmp_path / "sub"
    sub.mkdir()
    f = sub / "f.py"
    f.write_text(
        "def f(values):\n"
        "    # repro-lint: ok REP001 order does not matter here\n"
        "    return [v for v in set(values)]\n"
    )
    root = str(tmp_path / "cache")
    monkeypatch.chdir(tmp_path)
    warm = analyze([str(f)], cache=FindingsCache(root))
    assert warm.findings == [] and len(warm.suppressed) == 1
    again = analyze([os.path.join("sub", "f.py")], cache=FindingsCache(root))
    assert again.cache_hits == 1
    assert again.findings == []
    assert [x.path for x in again.suppressed] == [os.path.join("sub", "f.py")]


def test_cache_suppressions_stay_live(tmp_path):
    # The cache stores raw findings; an inline suppression added later
    # changes the content hash, so the suppression takes effect.
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def f(values):\n    return [v for v in set(values)]\n"
    )
    root = str(tmp_path / "cache")
    first = analyze([str(bad)], cache=FindingsCache(root))
    assert len(first.findings) == 1
    bad.write_text(
        "def f(values):\n"
        "    # repro-lint: ok REP001 order-insensitive\n"
        "    return [v for v in set(values)]\n"
    )
    second = analyze([str(bad)], cache=FindingsCache(root))
    assert second.findings == []
    assert len(second.suppressed) == 1


def test_cli_cache_dir_and_no_cache(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def f(values):\n    return [v for v in set(values)]\n"
    )
    cache_dir = tmp_path / "lint-cache"
    code, text = run_cli(
        [
            str(bad),
            "--no-baseline",
            "--cache-dir",
            str(cache_dir),
        ]
    )
    assert code == 1
    assert cache_dir.is_dir()
    assert "[cache: 0 hit, 1 miss]" in text
    code, text = run_cli(
        [str(bad), "--no-baseline", "--cache-dir", str(cache_dir)]
    )
    assert "[cache: 1 hit, 0 miss]" in text
    code, text = run_cli([str(bad), "--no-baseline", "--no-cache"])
    assert "[cache:" not in text


# ----------------------------------------------------------------------
# --jobs: parallel file-scope analysis is result-identical
# ----------------------------------------------------------------------
def test_jobs_parallel_results_match_serial(tmp_path):
    (tmp_path / "a.py").write_text(
        "def f(values):\n    return [v for v in set(values)]\n"
    )
    (tmp_path / "b.py").write_text(_reclimit_code())
    (tmp_path / "c.py").write_text("X = 1\n")
    serial = analyze([str(tmp_path)])
    parallel = analyze([str(tmp_path)], jobs=2)
    assert [f.as_dict() for f in serial.findings] == [
        f.as_dict() for f in parallel.findings
    ]
    assert serial.files_scanned == parallel.files_scanned == 3


def test_cli_rejects_bad_jobs_value(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    code, _ = run_cli([str(clean), "--no-baseline", "--jobs", "0"])
    assert code == 2
