"""Uncertain-graph transforms and the η-core decomposition."""

import pytest

from repro.exceptions import GraphError, ParameterError
from repro.baselines import eta_core_decomposition, k_eta_core_vertices
from repro.uncertain import (
    UncertainGraph,
    condition,
    intersect_graphs,
    rescale,
    sharpen,
    threshold,
    union_graphs,
)
from tests.conftest import random_uncertain_graph


class TestThreshold:
    def test_drops_weak_edges(self):
        g = UncertainGraph([(0, 1, 0.9), (1, 2, 0.2)])
        cut = threshold(g, 0.5)
        assert cut.has_edge(0, 1) and not cut.has_edge(1, 2)
        assert 2 in cut  # vertex survives

    def test_floor_validation(self, triangle_graph):
        with pytest.raises(ParameterError):
            threshold(triangle_graph, 1.5)

    def test_zero_floor_is_identity(self, triangle_graph):
        assert threshold(triangle_graph, 0).num_edges == 3


class TestSharpen:
    def test_gamma_below_one_raises_probabilities(self):
        g = UncertainGraph([(0, 1, 0.25)])
        assert sharpen(g, 0.5).probability(0, 1) == pytest.approx(0.5)

    def test_gamma_above_one_lowers(self):
        g = UncertainGraph([(0, 1, 0.5)])
        assert sharpen(g, 2).probability(0, 1) == pytest.approx(0.25)

    def test_order_preserved(self):
        g = random_uncertain_graph(1, 8, 0.5)
        sharp = sharpen(g, 0.7)
        edges = list(g.edges())
        for (u1, v1, p1) in edges:
            for (u2, v2, p2) in edges:
                if p1 < p2:
                    assert sharp.probability(u1, v1) <= sharp.probability(u2, v2)

    def test_validation(self, triangle_graph):
        with pytest.raises(ParameterError):
            sharpen(triangle_graph, 0)


class TestRescale:
    def test_range(self):
        g = UncertainGraph([(0, 1, 0.2), (1, 2, 0.5), (0, 2, 0.8)])
        scaled = rescale(g, 0.5, 1.0)
        probs = sorted(p for _u, _v, p in scaled.edges())
        assert probs[0] == pytest.approx(0.5)
        assert probs[-1] == pytest.approx(1.0)

    def test_constant_graph_maps_to_high(self):
        g = UncertainGraph([(0, 1, 0.3), (1, 2, 0.3)])
        scaled = rescale(g, 0.4, 0.9)
        assert all(p == pytest.approx(0.9) for _u, _v, p in scaled.edges())

    def test_empty_graph(self):
        assert rescale(UncertainGraph(), 0.5, 1.0).num_edges == 0

    def test_validation(self, triangle_graph):
        with pytest.raises(ParameterError):
            rescale(triangle_graph, 0.9, 0.5)
        with pytest.raises(ParameterError):
            rescale(triangle_graph, 0, 1)


class TestCondition:
    def test_present_pins_probability(self, triangle_graph):
        fixed = condition(triangle_graph, 0, 1, present=True)
        assert fixed.probability(0, 1) == 1.0

    def test_absent_removes_edge(self, triangle_graph):
        removed = condition(triangle_graph, 0, 1, present=False)
        assert not removed.has_edge(0, 1)
        assert removed.has_edge(1, 2)

    def test_missing_edge_raises(self, triangle_graph):
        with pytest.raises(GraphError):
            condition(triangle_graph, 0, 99, True)

    def test_law_of_total_probability(self, triangle_graph):
        """Pr(clique) = p·Pr(clique | edge) + (1-p)·Pr(clique | no edge)."""
        from repro.uncertain import clique_probability

        members = [0, 1, 2]
        p = triangle_graph.probability(0, 1)
        with_edge = clique_probability(
            condition(triangle_graph, 0, 1, True), members
        )
        without = clique_probability(
            condition(triangle_graph, 0, 1, False), members
        )
        total = p * with_edge + (1 - p) * without
        assert total == pytest.approx(clique_probability(triangle_graph, members))


class TestCombination:
    def test_union_noisy_or(self):
        a = UncertainGraph([(0, 1, 0.5)])
        b = UncertainGraph([(0, 1, 0.5), (1, 2, 0.3)])
        both = union_graphs(a, b)
        assert both.probability(0, 1) == pytest.approx(0.75)
        assert both.probability(1, 2) == pytest.approx(0.3)

    def test_union_keeps_all_vertices(self):
        a = UncertainGraph()
        a.add_vertex("only-a")
        b = UncertainGraph([(0, 1, 0.4)])
        assert "only-a" in union_graphs(a, b)

    def test_intersection_product(self):
        a = UncertainGraph([(0, 1, 0.5), (1, 2, 0.9)])
        b = UncertainGraph([(0, 1, 0.5)])
        b.add_vertex(1)
        both = intersect_graphs(a, b)
        assert both.probability(0, 1) == pytest.approx(0.25)
        assert not both.has_edge(1, 2)

    def test_intersection_commutative_probabilities(self):
        a = random_uncertain_graph(2, 8, 0.5)
        b = random_uncertain_graph(3, 8, 0.5)
        ab = intersect_graphs(a, b)
        ba = intersect_graphs(b, a)
        for u, v, p in ab.edges():
            assert ba.probability(u, v) == pytest.approx(float(p))


class TestEtaCoreDecomposition:
    def test_consistent_with_core(self):
        g = random_uncertain_graph(7, 12, 0.5)
        eta = 0.4
        shell = eta_core_decomposition(g, eta)
        top = max(shell.values(), default=0)
        for k in range(1, top + 1):
            expected = k_eta_core_vertices(g, k, eta)
            by_shell = {v for v, s in shell.items() if s >= k}
            assert by_shell == expected, k

    def test_isolated_vertex_is_zero(self):
        g = UncertainGraph([(0, 1, 0.9)])
        g.add_vertex(7)
        assert eta_core_decomposition(g, 0.5)[7] == 0
