"""Partitioned/parallel enumeration and multi-k query sessions."""

import pytest

from repro.exceptions import ParameterError
from repro.core import (
    CliqueQuerySession,
    PivotEnumerator,
    enumerate_maximal_cliques,
    enumerate_parallel,
    enumerate_partitioned,
    seed_partitions,
)
from repro.datasets import figure1_graph, load_dataset
from tests.conftest import as_sorted_sets, random_uncertain_graph


class TestSeedFilter:
    def test_disjoint_seed_runs_union_to_full(self):
        g = random_uncertain_graph(12, 14, 0.5)
        k, eta = 2, 0.4
        full = as_sorted_sets(PivotEnumerator(g, k, eta).run().cliques)
        chunks = seed_partitions(g, 3, eta)
        union = []
        for chunk in chunks:
            union.extend(PivotEnumerator(g, k, eta).run(seeds=chunk).cliques)
        assert as_sorted_sets(union) == full
        assert len(union) == len(set(union))  # no cross-chunk duplicates

    def test_empty_seed_set(self):
        g = random_uncertain_graph(12, 8, 0.5)
        result = PivotEnumerator(g, 2, 0.4).run(seeds=[])
        assert result.cliques == []


class TestPartitioned:
    def test_matches_monolithic(self):
        g = random_uncertain_graph(13, 16, 0.5)
        expected = as_sorted_sets(
            enumerate_maximal_cliques(g, 2, 0.4, "pmuc+").cliques
        )
        for parts in (1, 2, 5):
            merged = enumerate_partitioned(g, 2, 0.4, parts=parts)
            assert as_sorted_sets(merged.cliques) == expected
            assert merged.stats.outputs == len(expected)

    def test_parts_validation(self, triangle_graph):
        with pytest.raises(ParameterError):
            seed_partitions(triangle_graph, 0, 0.5)

    def test_partitions_cover_all_vertices(self):
        g = random_uncertain_graph(3, 10, 0.5)
        chunks = seed_partitions(g, 3, 0.5)
        flat = [v for c in chunks for v in c]
        assert sorted(flat, key=repr) == sorted(g.vertices(), key=repr)

    def test_more_parts_than_vertices(self, triangle_graph):
        chunks = seed_partitions(triangle_graph, 10, 0.5)
        assert len(chunks) == 3


class TestParallel:
    def test_parallel_matches_monolithic(self):
        g = load_dataset("enron")
        expected = as_sorted_sets(
            enumerate_maximal_cliques(g, 6, 0.1, "pmuc+").cliques
        )
        merged = enumerate_parallel(g, 6, 0.1, parts=4, processes=2)
        assert as_sorted_sets(merged.cliques) == expected

    def test_single_chunk_short_circuits(self, triangle_graph):
        merged = enumerate_parallel(triangle_graph, 3, 0.5, parts=1)
        assert merged.cliques == [frozenset({0, 1, 2})]


class TestQuerySession:
    def test_matches_direct_enumeration(self):
        g = load_dataset("enron")
        session = CliqueQuerySession(g, eta=0.1)
        for k in (2, 3, 5, 7):
            expected = as_sorted_sets(
                enumerate_maximal_cliques(g, k, 0.1, "pmuc+").cliques
            )
            got = as_sorted_sets(session.query(k).cliques)
            assert got == expected, k

    def test_figure1_profile(self):
        session = CliqueQuerySession(figure1_graph(), eta=0.53)
        profile = session.size_profile([3, 4, 5, 6])
        assert profile[5] == 1 and profile[6] == 0
        assert profile[3] >= profile[4] >= profile[5]

    def test_k1_uses_full_graph(self):
        from repro.uncertain import UncertainGraph

        g = UncertainGraph([(0, 1, 0.9)])
        g.add_vertex(5)
        session = CliqueQuerySession(g, eta=0.5)
        got = as_sorted_sets(session.query(1).cliques)
        assert frozenset({5}) in got

    def test_reduced_graph_monotone_in_k(self):
        g = load_dataset("enron")
        session = CliqueQuerySession(g, eta=0.1)
        sizes = [session.reduced_graph(k).num_edges for k in (2, 4, 6, 8)]
        assert sizes == sorted(sizes, reverse=True)

    def test_validation(self, triangle_graph):
        with pytest.raises(ParameterError):
            CliqueQuerySession(triangle_graph, eta=0)
        session = CliqueQuerySession(triangle_graph, eta=0.5)
        with pytest.raises(ParameterError):
            session.reduced_graph(0)

    def test_streaming_callback(self, two_communities):
        session = CliqueQuerySession(two_communities, eta=0.5)
        seen = []
        result = session.query(3, on_clique=seen.append)
        assert result.cliques == []
        assert len(seen) == 2
