"""The observability layer: metrics, tracer, observer, session.

Covers the three contracts the layer makes:

* **zero-impact when off** — enabling/disabling observation never
  changes enumeration results or :class:`SearchStats`;
* **determinism** — with an injected clock, traces and folded stacks
  are byte-identical across runs and across ``PYTHONHASHSEED`` values;
* **fidelity** — the registry's counters reconcile exactly with the
  flat :class:`SearchStats` the enumerators already report.
"""

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core import PMUC_PLUS_CONFIG, PivotEnumerator
from repro.exceptions import ParameterError
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer, build_observer, resolve_level
from repro.obs.session import current_session, observe
from repro.obs.tracer import FoldedStacks, Tracer, read_jsonl
from repro.uncertain import UncertainGraph

REPO = Path(__file__).resolve().parents[1]


def small_graph(n=18, density=0.4, seed=7):
    import random

    rng = random.Random(seed)
    g = UncertainGraph()
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                g.add_edge(u, v, round(rng.uniform(0.3, 1.0), 2))
    return g


def counting_clock(step=0.001):
    """A deterministic fake clock advancing ``step`` s per call."""
    state = {"t": 0.0}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
def test_registry_counters_gauges_timers_depth():
    reg = MetricsRegistry()
    reg.inc("calls")
    reg.inc("calls", 4)
    reg.set_gauge("vertices_input", 30)
    reg.set_gauge("vertices_input", 12)  # last write wins
    reg.add_time("recursion", 0.25)
    reg.add_time("recursion", 0.75)
    reg.observe_depth("nodes", 1)
    reg.observe_depth("nodes", 2, 3)
    assert reg.counter("calls") == 5
    assert reg.counter("never") == 0
    assert reg.gauge("vertices_input") == 12
    assert reg.gauge("never") is None
    assert reg.timer("recursion") == 1.0
    assert reg.depth_histogram("nodes") == {1: 1, 2: 3}


def test_registry_as_dict_roundtrip_and_merge():
    reg = MetricsRegistry()
    reg.inc("calls", 7)
    reg.set_gauge("max_depth", 4)
    reg.add_time("ordering", 0.5)
    reg.observe_depth("emits", 3, 2)
    doc = reg.as_dict()
    # Depth keys serialize as strings (JSON object keys).
    assert doc["depth"]["emits"] == {"3": 2}
    clone = MetricsRegistry.from_dict(doc)
    assert clone.as_dict() == doc
    merged = MetricsRegistry()
    merged.merge(reg)
    merged.merge(clone)
    assert merged.counter("calls") == 14
    assert merged.depth_histogram("emits") == {3: 4}
    assert merged.gauge("max_depth") == 4


def test_registry_branching_factors():
    reg = MetricsRegistry()
    reg.observe_depth("nodes", 1, 2)
    reg.observe_depth("expansions", 1, 6)
    reg.observe_depth("nodes", 2, 4)
    assert reg.branching_factors() == {1: 3.0, 2: 0.0}


# ----------------------------------------------------------------------
# tracer + folded stacks
# ----------------------------------------------------------------------
def test_tracer_is_deterministic_with_injected_clock():
    def make():
        tracer = Tracer(clock=counting_clock())
        tracer.metadata("process_name", {"name": "repro"})
        tracer.complete_span("reduction", 0, 1500)
        tracer.instant("node", tracer.now_us(), {"depth": 2})
        return tracer.to_jsonl()

    first, second = make(), make()
    assert first == second
    events = read_jsonl(first)
    assert [e["ph"] for e in events] == ["M", "X", "i"]
    assert events[1]["dur"] == 1500


def test_tracer_set_tid_rewrites_existing_events():
    tracer = Tracer(clock=counting_clock())
    tracer.metadata("thread_name", {"name": "dict backend"})
    tracer.set_tid(3)
    tracer.instant("node", 10)
    assert all(e["tid"] == 3 for e in tracer.events())


def test_folded_stacks_aggregate_and_render_sorted():
    folded = FoldedStacks()
    folded.add(["enumerate", "a", "b"])
    folded.add(["enumerate", "a", "b"], 2)
    folded.add(["enumerate", "a"])
    other = FoldedStacks()
    other.add(["enumerate", "a"], 5)
    folded.merge(other)
    assert folded.total_weight() == 9
    assert folded.render() == "enumerate;a 6\nenumerate;a;b 3\n"


# ----------------------------------------------------------------------
# level resolution + observer behavior
# ----------------------------------------------------------------------
def test_env_level_applies_only_when_config_is_off(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "metrics")
    assert resolve_level(PMUC_PLUS_CONFIG) == "metrics"
    explicit = replace(PMUC_PLUS_CONFIG, obs="full")
    assert resolve_level(explicit) == "full"
    monkeypatch.setenv("REPRO_OBS", "verbose")
    with pytest.raises(ParameterError):
        resolve_level(PMUC_PLUS_CONFIG)


def test_build_observer_returns_none_when_off(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    assert build_observer(PMUC_PLUS_CONFIG) is None
    assert build_observer(replace(PMUC_PLUS_CONFIG, obs="metrics")) is not None


def test_metrics_level_has_no_tracer_full_samples_nodes():
    lite = Observer(level="metrics")
    assert lite.tracer is None and lite.folded is None
    full = Observer(level="full", clock=counting_clock(), sample_every=2)
    for seq in range(5):
        full.on_node(1, ["a"])
    # Counter-based sampling: nodes 0, 2, 4 of 5 are kept.
    assert full.folded.total_weight() == 3
    assert full.metrics.depth_histogram("nodes") == {1: 5}


def test_observer_folds_search_stats_and_phases():
    obs = Observer(level="metrics")
    obs.on_emit(2, 5)
    obs.on_prune("mpivot", 1, 3)
    obs.on_phase("reduction", 0.5)
    obs.on_gauge("vertices_input", 9)

    class FakeStats:
        def as_dict(self):
            return {"calls": 10, "outputs": 2, "max_depth": 4}

    obs.on_finish(FakeStats())
    assert obs.metrics.counter("calls") == 10
    assert obs.metrics.gauge("max_depth") == 4
    assert obs.metrics.depth_histogram("prune_mpivot") == {1: 3}
    assert obs.metrics.timer("reduction") == 0.5


# ----------------------------------------------------------------------
# zero impact when off
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ("dict", "kernel"))
def test_observation_never_changes_results(backend):
    g = small_graph()
    results = {}
    for level in ("off", "metrics", "full"):
        config = replace(PMUC_PLUS_CONFIG, backend=backend, obs=level)
        enumerator = PivotEnumerator(g, k=3, eta=0.1, config=config)
        results[level] = enumerator.run()
        if level == "off":
            assert enumerator.obs is None
    assert (
        results["off"].cliques
        == results["metrics"].cliques
        == results["full"].cliques
    )
    assert (
        results["off"].stats.as_dict()
        == results["metrics"].stats.as_dict()
        == results["full"].stats.as_dict()
    )


def test_registry_counters_reconcile_with_search_stats():
    g = small_graph()
    config = replace(PMUC_PLUS_CONFIG, obs="metrics")
    enumerator = PivotEnumerator(g, k=3, eta=0.1, config=config)
    result = enumerator.run()
    metrics = enumerator.obs.metrics
    flat = result.stats.as_dict()
    assert metrics.counter("calls") == flat["calls"]
    assert metrics.counter("outputs") == flat["outputs"]
    assert metrics.gauge("max_depth") == flat["max_depth"]
    # The depth histograms marginalize back to the flat counters.
    assert sum(metrics.depth_histogram("nodes").values()) == flat["calls"]
    assert sum(metrics.depth_histogram("emits").values()) == flat["outputs"]
    assert (
        sum(metrics.depth_histogram("expansions").values())
        == flat["expansions"]
    )
    for phase in ("reduction", "ordering", "recursion", "sanitize"):
        assert metrics.timer(phase) >= 0.0


# ----------------------------------------------------------------------
# sessions
# ----------------------------------------------------------------------
def test_session_collects_runs_and_writes_artifacts(tmp_path):
    g = small_graph(n=14)
    trace = tmp_path / "run.trace.jsonl"
    folded = tmp_path / "run.folded"
    metrics = tmp_path / "run.metrics.json"
    with observe(
        trace_path=str(trace),
        folded_path=str(folded),
        metrics_path=str(metrics),
        clock=counting_clock(),
        sample_every=1,
    ) as session:
        assert current_session() is session
        for backend in ("dict", "kernel"):
            config = replace(
                PMUC_PLUS_CONFIG, backend=backend, obs="full"
            )
            PivotEnumerator(g, k=2, eta=0.1, config=config).run()
    assert current_session() is None
    assert len(session.observers) == 2
    # Each run gets its own trace lane.
    assert {o.tracer._tid for o in session.observers} == {1, 2}
    doc = json.loads(metrics.read_text())
    assert doc["schema"] == "repro.obs/metrics-v1"
    assert [run["backend"] for run in doc["runs"]] == ["dict", "kernel"]
    assert doc["merged"]["counters"]["calls"] == 2 * doc["runs"][0][
        "metrics"
    ]["counters"]["calls"]
    events = read_jsonl(trace.read_text())
    assert {e["tid"] for e in events} == {1, 2}
    assert folded.read_text().startswith("enumerate")


# ----------------------------------------------------------------------
# hash-seed independence of the full trace artifacts
# ----------------------------------------------------------------------
TRACE_PIPELINE = r"""
import random
from dataclasses import replace

from repro.core import PMUC_PLUS_CONFIG, PivotEnumerator
from repro.obs.session import observe
from repro.uncertain import UncertainGraph

state = {"t": 0.0}
def clock():
    state["t"] += 0.001
    return state["t"]

rng = random.Random(7)
names = ["node-%02d" % i for i in range(16)]
g = UncertainGraph()
for i, u in enumerate(names):
    for v in names[i + 1:]:
        if rng.random() < 0.4:
            g.add_edge(u, v, round(rng.uniform(0.3, 1.0), 2))

with observe(clock=clock, sample_every=4) as session:
    for backend in ("dict", "kernel"):
        config = replace(PMUC_PLUS_CONFIG, backend=backend, obs="full")
        PivotEnumerator(g, k=2, eta=0.1, config=config).run()

# Phase spans carry *measured* wall-clock durations (phases are timed,
# not traced with the injected clock), so they vary run to run by
# design; zero them out and compare everything else byte for byte.
import json
for line in session.trace_jsonl().splitlines():
    event = json.loads(line)
    if event["ph"] == "X":
        event["ts"] = event["dur"] = 0
    print(json.dumps(event, sort_keys=True, separators=(",", ":")))
print(session.folded_text(), end="")
"""


def run_trace_pipeline(hashseed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = str(REPO / "src")
    result = subprocess.run(
        [sys.executable, "-c", TRACE_PIPELINE],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO),
        check=True,
    )
    return result.stdout


def test_trace_artifacts_are_hashseed_independent():
    """String vertices hash differently under each seed; with the
    injected clock the trace and folded output must still be
    byte-identical."""
    first = run_trace_pipeline(1)
    second = run_trace_pipeline(4242)
    assert first == second
    assert '"ph":"X"' in first  # spans actually made it out
    assert "enumerate;" in first  # so did folded stacks
