"""Dataset substrate: probability models, generators, registry, sampling."""

import math
import random

import pytest

from repro.exceptions import DatasetError, ParameterError
from repro.datasets import (
    DATASET_NAMES,
    MIN_PROBABILITY,
    PROBABILITY_MODELS,
    barabasi_albert_weighted,
    dataset_statistics,
    exponential_probability,
    generate_collaboration_network,
    generate_knowledge_graph,
    generate_ppi_network,
    geometric_probability,
    get_probability_model,
    gnm_weighted,
    load_dataset,
    load_weighted_edges,
    normal_probability,
    planted_communities_weighted,
    sample_edges,
    sample_vertices,
    uncertain_from_weights,
    uniform_probability,
)


RNG = random.Random(0)


class TestProbabilityModels:
    def test_exponential_formula(self):
        assert exponential_probability(2.0, RNG) == pytest.approx(
            1 - math.exp(-1.0)
        )

    def test_exponential_monotone_in_weight(self):
        values = [exponential_probability(w, RNG) for w in (1, 2, 5, 10)]
        assert values == sorted(values)

    def test_uniform_range(self):
        rng = random.Random(1)
        for _ in range(100):
            assert 0.5 <= uniform_probability(1.0, rng) <= 1.0

    def test_geometric_cdf(self):
        assert geometric_probability(1, RNG) == pytest.approx(0.2)
        assert geometric_probability(2, RNG) == pytest.approx(1 - 0.8**2)

    def test_normal_midpoint(self):
        assert normal_probability(5.0, RNG, mu=5.0) == pytest.approx(0.5)

    def test_all_models_clamped(self):
        rng = random.Random(2)
        for name, model in PROBABILITY_MODELS.items():
            for w in (0, 0.1, 1, 100, 1e9):
                p = model(w, rng)
                assert MIN_PROBABILITY <= p <= 1.0, name

    def test_lookup(self):
        assert get_probability_model("exponential") is exponential_probability
        with pytest.raises(ParameterError):
            get_probability_model("bogus")


class TestGenerators:
    def test_gnm_shape(self):
        edges = gnm_weighted(30, 50, seed=1)
        assert len(edges) == 50
        assert all(0 <= u < v < 30 for (u, v) in edges)

    def test_gnm_deterministic(self):
        assert gnm_weighted(20, 30, seed=7) == gnm_weighted(20, 30, seed=7)

    def test_gnm_validation(self):
        with pytest.raises(DatasetError):
            gnm_weighted(3, 10, seed=0)

    def test_barabasi_albert_connectivity(self):
        edges = barabasi_albert_weighted(50, 2, seed=0)
        graph = uncertain_from_weights(edges)
        assert graph.num_vertices >= 48
        assert len(graph.connected_components()) <= 3

    def test_barabasi_albert_validation(self):
        with pytest.raises(DatasetError):
            barabasi_albert_weighted(2, 5, seed=0)

    def test_planted_communities_have_heavy_cores(self):
        edges = planted_communities_weighted(
            60, communities=3, community_size=10, p_out_edges=20, seed=0
        )
        heavy = [w for w in edges.values() if w >= 6]
        assert len(heavy) > 50

    def test_planted_communities_deterministic(self):
        a = planted_communities_weighted(40, 3, 8, seed=2)
        b = planted_communities_weighted(40, 3, 8, seed=2)
        assert a == b

    def test_planted_communities_validation(self):
        with pytest.raises(DatasetError):
            planted_communities_weighted(10, 2, 1)


class TestSampling:
    def test_vertex_sampling_fraction(self):
        edges = gnm_weighted(100, 300, seed=0)
        sampled = sample_vertices(edges, 0.5, seed=1)
        assert 0 < len(sampled) < len(edges)
        full = sample_vertices(edges, 1.0, seed=1)
        assert full == edges

    def test_edge_sampling_fraction(self):
        edges = gnm_weighted(100, 300, seed=0)
        sampled = sample_edges(edges, 0.3, seed=1)
        assert 0 < len(sampled) < len(edges)

    def test_fraction_validation(self):
        with pytest.raises(DatasetError):
            sample_edges({}, 0.0)
        with pytest.raises(DatasetError):
            sample_vertices({}, 1.2)


class TestRegistry:
    def test_all_names_load(self):
        for name in DATASET_NAMES:
            graph = load_dataset(name)
            assert graph.num_vertices > 50, name
            assert graph.num_edges > 100, name

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("nope")
        with pytest.raises(DatasetError):
            load_weighted_edges("core")

    def test_deterministic_by_seed(self):
        a = load_dataset("enron", seed=3)
        b = load_dataset("enron", seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_seeds_differ(self):
        a = load_dataset("enron", seed=0)
        b = load_dataset("enron", seed=1)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_probability_models_apply(self):
        uniform = load_dataset("enron", probability_model="uniform")
        assert all(p >= 0.5 for _u, _v, p in uniform.edges())

    def test_statistics_columns(self):
        row = dataset_statistics("enron")
        assert set(row) == {"dataset", "|V|", "|E|", "d_max", "delta"}


class TestPPIGenerator:
    def test_ground_truth_complexes(self):
        net = generate_ppi_network(seed=1)
        assert len(net.complexes) > 20
        for complex_ in net.complexes:
            assert len(complex_) >= 4

    def test_intra_complex_edges_strong(self):
        net = generate_ppi_network(seed=1)
        complex_ = max(net.complexes, key=len)
        members = sorted(complex_)
        strong = 0
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if net.graph.probability(u, v) >= 0.75:
                    strong += 1
        assert strong >= len(members)  # densely, strongly connected

    def test_true_pairs(self):
        net = generate_ppi_network(num_proteins=20, num_complexes=2,
                                   complex_size_range=(3, 3), noise_edges=0,
                                   seed=0)
        pairs = net.true_pairs()
        assert len(pairs) == 6  # two disjoint 3-complexes, 3 pairs each

    def test_validation(self):
        with pytest.raises(DatasetError):
            generate_ppi_network(complex_size_range=(5, 3))


class TestKnowledgeGraphGenerator:
    def test_flavors(self):
        cn = generate_knowledge_graph("conceptnet", seed=0)
        nl = generate_knowledge_graph("nell", seed=0)
        assert "plant" in cn.queries.values()
        assert "mlb" in nl.queries.values()
        assert cn.graph.num_vertices != nl.graph.num_vertices

    def test_unknown_flavor(self):
        with pytest.raises(DatasetError):
            generate_knowledge_graph("bogus")

    def test_purity_of_planted_community(self):
        kg = generate_knowledge_graph("conceptnet", seed=0)
        community = kg.communities["plant"]
        assert kg.purity(community, "plant") == 1.0
        assert kg.purity([], "plant") == 0.0

    def test_hub_connected_to_community(self):
        kg = generate_knowledge_graph("conceptnet", seed=0)
        hub = kg.queries["plant"]
        for member in kg.communities["plant"] - {hub}:
            assert kg.graph.has_edge(hub, member)


class TestCollaborationGenerator:
    def test_topics_and_anchor(self):
        net = generate_collaboration_network(seed=0)
        assert set(net.topic_graphs) == {
            "databases", "information networks", "machine learning",
        }
        for topic in net.topic_graphs:
            assert "anchor-0" in net.query_anchors(topic)

    def test_planted_team_is_clique(self):
        net = generate_collaboration_network(seed=0)
        graph = net.topic_graphs["databases"]
        team = net.teams["databases"]["anchor-0"]
        members = sorted(team)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                assert graph.has_edge(u, v)

    def test_validation(self):
        with pytest.raises(DatasetError):
            generate_collaboration_network(team_size_range=(9, 3))
