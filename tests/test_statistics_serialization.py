"""Graph statistics and JSON serialization."""

import math

import pytest

from repro.exceptions import DatasetError
from repro.uncertain import (
    UncertainGraph,
    edge_entropy,
    expected_degree,
    expected_num_edges,
    expected_num_triangles,
    from_json,
    load_json,
    probability_histogram,
    read_metadata,
    sample_worlds,
    save_json,
    summarize,
    to_json,
)
from tests.conftest import random_uncertain_graph


class TestExpectations:
    def test_expected_degree(self, triangle_graph):
        assert expected_degree(triangle_graph, 0) == pytest.approx(1.8)

    def test_expected_num_edges(self, triangle_graph):
        assert expected_num_edges(triangle_graph) == pytest.approx(2.7)

    def test_expected_triangles_formula(self, triangle_graph):
        assert expected_num_triangles(triangle_graph) == pytest.approx(0.9**3)

    def test_expected_values_match_sampling(self):
        g = random_uncertain_graph(1, 8, 0.6)
        n_samples = 3000
        edge_sum = tri_sum = 0
        for world in sample_worlds(g, n_samples, seed=4):
            edge_sum += world.num_edges
            from repro.deterministic import count_triangles

            tri_sum += count_triangles(world)
        assert edge_sum / n_samples == pytest.approx(
            expected_num_edges(g), rel=0.05
        )
        assert tri_sum / n_samples == pytest.approx(
            expected_num_triangles(g), rel=0.25, abs=0.3
        )

    def test_entropy_zero_for_deterministic(self):
        g = UncertainGraph([(0, 1, 1.0)])
        assert edge_entropy(g) == 0.0

    def test_entropy_maximal_at_half(self):
        g = UncertainGraph([(0, 1, 0.5)])
        assert edge_entropy(g) == pytest.approx(1.0)

    def test_histogram(self):
        g = UncertainGraph([(0, 1, 0.05), (1, 2, 0.55), (0, 2, 1.0)])
        counts = probability_histogram(g, bins=10)
        assert counts[0] == 1 and counts[5] == 1 and counts[9] == 1
        assert sum(counts) == 3

    def test_histogram_validation(self, triangle_graph):
        with pytest.raises(ValueError):
            probability_histogram(triangle_graph, bins=0)

    def test_summarize_row(self, two_communities):
        summary = summarize(two_communities)
        row = summary.as_row()
        assert row["|V|"] == 7
        assert row["mean_p"] > 0.5
        assert summary.degeneracy == 3

    def test_summarize_empty(self):
        summary = summarize(UncertainGraph())
        assert summary.mean_probability == 0.0


class TestJson:
    def test_round_trip(self):
        g = random_uncertain_graph(2, 9, 0.5)
        again = from_json(to_json(g))
        assert sorted(again.vertices(), key=repr) == sorted(
            g.vertices(), key=repr
        )
        assert sorted(again.edges()) == sorted(g.edges())

    def test_isolated_vertices_preserved(self):
        g = UncertainGraph([(0, 1, 0.5)])
        g.add_vertex(9)
        assert 9 in from_json(to_json(g))

    def test_metadata_round_trip(self, triangle_graph):
        text = to_json(triangle_graph, metadata={"source": "unit-test", "k": 3})
        assert read_metadata(text) == {"source": "unit-test", "k": 3}

    def test_string_vertices(self):
        g = UncertainGraph([("a", "b", 0.7)])
        assert from_json(to_json(g)).has_edge("a", "b")

    def test_invalid_json(self):
        with pytest.raises(DatasetError, match="invalid JSON"):
            from_json("{nope")

    def test_wrong_format_marker(self):
        with pytest.raises(DatasetError, match="format"):
            from_json('{"format": "other", "version": 1}')

    def test_wrong_version(self):
        with pytest.raises(DatasetError, match="version"):
            from_json('{"format": "repro-uncertain-graph", "version": 99}')

    def test_malformed_edge(self):
        text = (
            '{"format": "repro-uncertain-graph", "version": 1, '
            '"vertices": [], "edges": [[1, 2]]}'
        )
        with pytest.raises(DatasetError, match="edge entry"):
            from_json(text)

    def test_non_object_root(self):
        with pytest.raises(DatasetError, match="root"):
            from_json("[1, 2]")

    def test_file_round_trip(self, tmp_path, triangle_graph):
        path = tmp_path / "graph.json"
        save_json(triangle_graph, path, metadata={"note": "x"})
        again = load_json(path)
        assert again.num_edges == 3
        assert again.probability(0, 1) == 0.9
