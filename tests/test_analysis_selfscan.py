"""Self-scan, engine conformance (REP005) and CLI/baseline behaviour.

The self-scan is the analyzer's own acceptance test: the committed
tree must be clean modulo the committed baseline, and the scan must
actually see the engine anchors and the backend StateOps classes — a
silent REP005/REP007/REP008 because an anchor went missing would be a
hole in the conformance net.
"""

import io
import json
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.cli import main
from repro.analysis.registry import get_rule
from repro.analysis.rules.conformance import find_engine_anchors
from repro.analysis.runner import analyze, collect_files, parse_files, run_rules
from repro.analysis.source import SourceFile

REPO = Path(__file__).resolve().parents[1]
SRC_REPRO = REPO / "src" / "repro"
BASELINE = REPO / "repro-lint.baseline.json"
ENGINE_DRIVER = SRC_REPRO / "engine" / "driver.py"
DICT_BACKEND = SRC_REPRO / "core" / "pmuc.py"
KERNEL_BACKEND = SRC_REPRO / "kernel" / "enumerate.py"


# ----------------------------------------------------------------------
# self-scan
# ----------------------------------------------------------------------
def test_src_repro_is_clean_modulo_baseline():
    report = analyze(
        [str(SRC_REPRO)], baseline=Baseline.load(str(BASELINE))
    )
    assert report.ok, [f.format_text() for f in report.findings]
    assert report.files_scanned > 50
    # The committed baseline must stay minimal and fully used.
    assert report.unused_baseline == []
    # One REP001 (random_graphs) + three REP012 (cli.py env plumbing).
    assert len(report.grandfathered) == 4


def test_self_scan_sees_the_engine_anchors():
    files = parse_files(collect_files([str(SRC_REPRO)]))
    driver_files = [
        src for src in files if src.path.endswith("driver.py")
    ]
    anchored = [
        src
        for src in driver_files
        if all(a is not None for a in find_engine_anchors(src))
    ]
    assert len(anchored) == 1, [src.path for src in driver_files]
    assert anchored[0].path == str(ENGINE_DRIVER)


def test_self_scan_sees_both_stateops_backends():
    # Both committed backend classes subclass StateOps and pass the
    # full-protocol check — REP005 stays silent on them while still
    # *seeing* them (a half-implemented copy fires; see below).
    for path in (DICT_BACKEND, KERNEL_BACKEND):
        src = SourceFile.read(str(path))
        assert "(StateOps)" in src.text, path
        kept, _ = run_rules([src], [get_rule("REP005")])
        assert kept == []


# ----------------------------------------------------------------------
# REP005 fires on protocol gaps and private recursion copies
# ----------------------------------------------------------------------
def _rep005_findings(path, text):
    kept, _ = run_rules([SourceFile(path, text)], [get_rule("REP005")])
    return kept


def test_rep005_fires_on_an_incomplete_stateops_subclass():
    text = (
        "from repro.engine.protocol import StateOps\n"
        "class HalfOps(StateOps):\n"
        "    name = 'half'\n"
        "    def roots(self, seeds):\n"
        "        return []\n"
    )
    found = _rep005_findings("src/repro/core/half.py", text)
    assert len(found) == 1
    assert found[0].rule == "REP005"
    assert "HalfOps" in found[0].message
    assert "prepare_reduction" in found[0].message
    assert "log_domain" in found[0].message


def test_rep005_fires_on_a_recursion_copy_outside_the_engine():
    rogue = ENGINE_DRIVER.read_text().replace(
        "def build_search", "def rebuilt_search"
    )
    found = _rep005_findings("src/repro/core/rogue.py", rogue)
    assert len(found) == 1
    assert "private copy of the engine recursion" in found[0].message


def test_rep005_silent_on_the_engine_itself_and_the_framework():
    # The engine package is the one place the recursion may live, and
    # the hereditary framework's Algorithm-2 search (M-pivot only, no
    # size accounting) is deliberately exempt.
    for path in (
        ENGINE_DRIVER,
        SRC_REPRO / "hereditary" / "framework.py",
    ):
        src = SourceFile.read(str(path))
        kept, _ = run_rules([src], [get_rule("REP005")])
        assert kept == [], (path, kept)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_cli_clean_run_exits_zero():
    code, text = run_cli(
        [str(SRC_REPRO), "--baseline", str(BASELINE)]
    )
    assert code == 0
    assert "0 finding(s)" in text


def test_cli_without_baseline_reports_the_grandfathered_finding():
    code, text = run_cli([str(SRC_REPRO), "--no-baseline"])
    assert code == 1
    assert "random_graphs.py" in text


def test_cli_list_rules_prints_the_catalog():
    code, text = run_cli(["--list-rules"])
    assert code == 0
    for rule_id in (
        "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
        "REP007",
    ):
        assert rule_id in text


def test_cli_json_output_is_machine_readable(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(values):\n    return [v for v in set(values)]\n")
    code, text = run_cli([str(bad), "--no-baseline", "--format=json"])
    assert code == 1
    payload = json.loads(text)
    assert payload["ok"] is False
    assert payload["findings"][0]["rule"] == "REP001"
    assert payload["files_scanned"] == 1


def test_cli_missing_path_is_a_usage_error(tmp_path):
    code, _ = run_cli([str(tmp_path / "does-not-exist")])
    assert code == 2


def test_cli_baseline_pointing_at_a_directory_is_a_usage_error(tmp_path):
    """`--baseline <dir>` must exit 2 cleanly, not crash with a traceback.

    Regression test for the CI invocation bug where `--baseline
    src/repro` made argparse consume the scan path as the baseline
    file and Baseline.load raised IsADirectoryError.
    """
    code, _ = run_cli(["--baseline", str(tmp_path), str(SRC_REPRO)])
    assert code == 2


def test_cli_write_baseline_roundtrips(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def f(p):\n"
        "    if p == 0.25:\n"
        "        return [v for v in set(range(3))]\n"
    )
    skeleton = tmp_path / "baseline.json"
    code, _ = run_cli(
        [str(bad), "--no-baseline", "--write-baseline", str(skeleton)]
    )
    assert code == 0
    # The skeleton grandfathers both findings once justified.
    payload = json.loads(skeleton.read_text())
    assert len(payload["findings"]) == 2
    for entry in payload["findings"]:
        entry["justification"] = "pinned by the round-trip test"
    skeleton.write_text(json.dumps(payload))
    code, text = run_cli([str(bad), "--baseline", str(skeleton)])
    assert code == 0
    assert "(2 baselined" in text


def test_cli_write_baseline_preserves_grandfathered_entries(tmp_path):
    """Regenerating over an existing baseline keeps its entries —
    with their hand-written justifications — instead of silently
    dropping everything already grandfathered."""
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def f(p):\n"
        "    if p == 0.25:\n"
        "        return [v for v in set(range(3))]\n"
    )
    first = tmp_path / "first.json"
    code, _ = run_cli(
        [str(bad), "--no-baseline", "--write-baseline", str(first)]
    )
    assert code == 0
    payload = json.loads(first.read_text())
    for entry in payload["findings"]:
        entry["justification"] = "kept across regeneration"
    first.write_text(json.dumps(payload))
    # Regenerate against the justified baseline: every finding is now
    # grandfathered, yet the new file must still contain all of them
    # with the original justifications.
    second = tmp_path / "second.json"
    code, _ = run_cli(
        [str(bad), "--baseline", str(first), "--write-baseline", str(second)]
    )
    assert code == 0
    regenerated = json.loads(second.read_text())
    assert len(regenerated["findings"]) == len(payload["findings"]) == 2
    for entry in regenerated["findings"]:
        assert entry["justification"] == "kept across regeneration"


# ----------------------------------------------------------------------
# GitHub Actions output format
# ----------------------------------------------------------------------
def test_cli_github_format_emits_error_annotations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(values):\n    return [v for v in set(values)]\n")
    code, text = run_cli([str(bad), "--no-baseline", "--format=github"])
    assert code == 1
    annotation = next(
        line for line in text.splitlines() if line.startswith("::error ")
    )
    assert f"file={bad}" in annotation
    assert "line=2," in annotation
    assert "title=REP001" in annotation
    assert "::nondeterministic" not in annotation  # message after '::'
    assert "1 finding(s)" in text


def test_cli_github_format_notices_stale_baseline_entries(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    code, text = run_cli(
        [str(clean), "--baseline", str(BASELINE), "--format=github"]
    )
    assert code == 0
    assert "::notice " in text
    assert "stale baseline entry" in text
    assert "--prune-stale" in text


def test_github_escaping_of_workflow_command_payloads():
    from repro.analysis.cli import _gh_escape_data, _gh_escape_prop

    assert _gh_escape_data("a%b\nc\rd") == "a%25b%0Ac%0Dd"
    # Property values additionally escape ':' and ',' (the command's
    # own delimiters); message data must not, or text gets mangled.
    assert _gh_escape_prop("a:b,c") == "a%3Ab%2Cc"
    assert _gh_escape_data("a:b,c") == "a:b,c"


# ----------------------------------------------------------------------
# stale baseline entries: summary note and --prune-stale
# ----------------------------------------------------------------------
def test_cli_text_summary_flags_stale_entries(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    code, text = run_cli([str(clean), "--baseline", str(BASELINE)])
    assert code == 0
    assert "4 stale baseline entries (--prune-stale drops them)" in text


def test_cli_prune_stale_rewrites_the_baseline(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    copy = tmp_path / "baseline.json"
    copy.write_text(BASELINE.read_text())
    code, text = run_cli(
        [str(clean), "--baseline", str(copy), "--prune-stale"]
    )
    assert code == 0
    assert "pruned 4 stale entries" in text
    # The rewritten file is empty and the post-prune summary no longer
    # carries the stale note.
    assert json.loads(copy.read_text())["findings"] == []
    assert "stale baseline" not in text
    # The committed baseline itself was never touched.
    assert json.loads(BASELINE.read_text())["findings"]


def test_cli_prune_stale_keeps_live_entries_and_justifications(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def f(p):\n"
        "    if p == 0.25:\n"
        "        return [v for v in set(range(3))]\n"
    )
    baseline = tmp_path / "baseline.json"
    code, _ = run_cli(
        [str(bad), "--no-baseline", "--write-baseline", str(baseline)]
    )
    assert code == 0
    payload = json.loads(baseline.read_text())
    assert len(payload["findings"]) == 2
    for entry in payload["findings"]:
        entry["justification"] = "kept across the prune"
    baseline.write_text(json.dumps(payload))
    # Fix the REP003 comparison; its baseline entry goes stale while
    # the REP001 one stays live.
    bad.write_text(
        "def f(p):\n"
        "    if p >= 0.25:\n"
        "        return [v for v in set(range(3))]\n"
    )
    code, text = run_cli(
        [str(bad), "--baseline", str(baseline), "--prune-stale"]
    )
    assert code == 0
    assert "pruned 1 stale entry" in text
    assert "(1 kept)" in text
    kept = json.loads(baseline.read_text())["findings"]
    assert len(kept) == 1
    assert kept[0]["rule"] == "REP001"
    assert kept[0]["justification"] == "kept across the prune"


def test_cli_prune_stale_without_baseline_is_a_usage_error(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    code, _ = run_cli([str(clean), "--no-baseline", "--prune-stale"])
    assert code == 2


def test_cli_fail_on_stale_turns_stale_entries_into_exit_1(tmp_path, capsys):
    # Against a clean file the committed baseline's single entry is
    # stale; CI's --fail-on-stale makes that a hard failure instead of
    # the default informational note.
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    code, text = run_cli(
        [str(clean), "--baseline", str(BASELINE), "--fail-on-stale"]
    )
    assert code == 1
    assert "unused baseline entry" in text
    assert "--prune-stale" in capsys.readouterr().err


def test_cli_fail_on_stale_passes_when_every_entry_is_live():
    code, text = run_cli(
        [str(SRC_REPRO), "--baseline", str(BASELINE), "--fail-on-stale"]
    )
    assert code == 0
    assert "stale" not in text


# ----------------------------------------------------------------------
# baseline semantics
# ----------------------------------------------------------------------
def test_baseline_requires_justifications(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {
                "findings": [
                    {
                        "rule": "REP001",
                        "path": "x.py",
                        "line_text": "for v in s:",
                        "justification": "   ",
                    }
                ]
            }
        )
    )
    with pytest.raises(BaselineError, match="justification"):
        Baseline.load(str(path))
    code, _ = run_cli(["--baseline", str(path), str(SRC_REPRO)])
    assert code == 2


def test_baseline_matching_survives_line_moves(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text(
        "def f(values):\n    return [v for v in set(values)]\n"
    )
    entries = Baseline.load(str(BASELINE)).entries
    assert entries, "committed baseline unexpectedly empty"
    report = analyze([str(bad)], baseline=Baseline.load(str(BASELINE)))
    # Unrelated entries never match; the finding stays new, the entry
    # is reported unused.
    assert len(report.findings) == 1
    assert len(report.unused_baseline) == len(entries)


def test_unused_baseline_entries_are_reported(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    code, text = run_cli([str(clean), "--baseline", str(BASELINE)])
    assert code == 0
    assert "unused baseline entry" in text


def test_baseline_parent_dir_path_does_not_match(tmp_path):
    """'../pkg/mod.py' points outside the tree — it must not match
    'pkg/mod.py' (lstrip('./') used to strip the leading dots)."""
    from repro.analysis.baseline import _same_path

    assert not _same_path("../pkg/mod.py", "pkg/mod.py")
    assert not _same_path("pkg/mod.py", "../pkg/mod.py")
    assert _same_path("./pkg/mod.py", "pkg/mod.py")
    assert _same_path("src/pkg/mod.py", "pkg/mod.py")
    assert _same_path("../pkg/mod.py", "../pkg/mod.py")


# ----------------------------------------------------------------------
# syntax errors degrade to PARSE findings, not aborted runs
# ----------------------------------------------------------------------
def test_syntax_error_yields_parse_finding_and_scan_continues(tmp_path):
    broken = tmp_path / "a_broken.py"
    broken.write_text("def f(:\n")
    bad = tmp_path / "b_bad.py"
    bad.write_text("def f(values):\n    return [v for v in set(values)]\n")
    report = analyze([str(tmp_path)])
    assert report.files_scanned == 2
    rules = [f.rule for f in report.findings]
    assert "PARSE" in rules, rules
    # The parseable file was still analyzed despite its broken sibling.
    assert "REP001" in rules, rules
    parse = next(f for f in report.findings if f.rule == "PARSE")
    assert parse.path == str(broken)
    assert parse.severity.value == "error"
