"""Fixture-driven tests for the repro-lint rule catalog.

Each rule gets at least one positive fixture (a minimal snippet the
rule must flag) and one negative fixture (the corrected idiom it must
accept) so both halves of the contract are pinned.
"""

import textwrap

from repro.analysis.registry import all_rules, get_rule
from repro.analysis.runner import run_rules
from repro.analysis.source import SourceFile


def findings_for(code, rule_id, path="fixture.py"):
    """Run one rule over a dedented snippet; returns kept findings."""
    src = SourceFile(path, textwrap.dedent(code))
    kept, _suppressed = run_rules([src], [get_rule(rule_id)])
    return kept


def assert_clean(code, rule_id):
    assert findings_for(code, rule_id) == []


def assert_flags(code, rule_id, count=1):
    found = findings_for(code, rule_id)
    assert len(found) == count, [f.format_text() for f in found]
    assert all(f.rule == rule_id for f in found)
    return found


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_has_the_full_catalog():
    ids = [r.id for r in all_rules()]
    assert ids == sorted(ids)
    assert set(ids) == {
        "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
        "REP007", "REP008", "REP009", "REP010", "REP011", "REP012",
        "REP013", "REP014", "REP015",
    }


# ----------------------------------------------------------------------
# REP001 — nondeterministic iteration
# ----------------------------------------------------------------------
def test_rep001_flags_list_comprehension_over_set():
    assert_flags(
        """
        def f(graph):
            seen = {v for v in graph if v}
            return [v for v in seen]
        """,
        "REP001",
    )


def test_rep001_accepts_sorted_comprehension():
    assert_clean(
        """
        def f(graph):
            seen = {v for v in graph if v}
            return [v for v in sorted(seen)]
        """,
        "REP001",
    )


def test_rep001_accepts_order_insensitive_consumers():
    assert_clean(
        """
        def f(values):
            seen = set(values)
            total = sum(x * x for x in seen)
            return total, max(v for v in seen), len([]) and all(seen)
        """,
        "REP001",
    )


def test_rep001_flags_loop_feeding_append():
    assert_flags(
        """
        def f(values):
            chosen = set(values)
            out = []
            for v in chosen:
                out.append(v)
            return out
        """,
        "REP001",
    )


def test_rep001_flags_yield_inside_set_loop():
    assert_flags(
        """
        def f(values):
            for v in set(values):
                yield v
        """,
        "REP001",
    )


def test_rep001_flags_first_match_break():
    assert_flags(
        """
        def f(values):
            winner = None
            for v in frozenset(values):
                if v > 0:
                    winner = v
                    break
            return winner
        """,
        "REP001",
    )


def test_rep001_ignores_break_in_nested_loop_over_list():
    # The break belongs to the inner loop over an ordered list.
    assert_clean(
        """
        def f(values):
            acc = 0
            for v in set(values):
                for w in [1, 2, 3]:
                    if w == v:
                        break
                acc += v
            return acc
        """,
        "REP001",
    )


def test_rep001_loop_without_sink_or_break_is_fine():
    assert_clean(
        """
        def f(values):
            total = 0
            for v in set(values):
                total += v
            return total
        """,
        "REP001",
    )


def test_rep001_tracks_set_typed_names_through_binops():
    assert_flags(
        """
        def f(a, b):
            c = set(a) | set(b)
            return [v for v in c]
        """,
        "REP001",
    )


def test_rep001_tracks_containers_of_sets():
    assert_flags(
        """
        def f(graph):
            similar = {v: {u for u in graph[v]} for v in sorted(graph)}
            out = []
            for v in sorted(graph):
                for u in similar[v]:
                    out.append(u)
            return out
        """,
        "REP001",
    )


def test_rep001_flags_neighbors_iteration_with_sink():
    assert_flags(
        """
        def f(graph, v):
            out = []
            for u in graph.neighbors(v):
                out.append(u)
            return out
        """,
        "REP001",
    )


def test_rep001_reassignment_clears_set_type():
    assert_clean(
        """
        def f(values):
            c = set(values)
            c = sorted(c)
            return [v for v in c]
        """,
        "REP001",
    )


def test_rep001_inline_suppression_silences_the_finding():
    code = """
        def f(values):
            out = []
            # repro-lint: ok REP001 order does not matter here
            for v in set(values):
                out.append(v)
            return out
        """
    src = SourceFile("fixture.py", textwrap.dedent(code))
    kept, suppressed = run_rules([src], [get_rule("REP001")])
    assert kept == []
    assert len(suppressed) == 1


def test_suppression_for_other_rule_does_not_apply():
    code = """
        def f(values):
            out = []
            # repro-lint: ok REP002 wrong rule id
            for v in set(values):
                out.append(v)
            return out
        """
    src = SourceFile("fixture.py", textwrap.dedent(code))
    kept, suppressed = run_rules([src], [get_rule("REP001")])
    assert len(kept) == 1
    assert suppressed == []


# ----------------------------------------------------------------------
# REP002 — module-level randomness
# ----------------------------------------------------------------------
def test_rep002_flags_global_random_calls():
    assert_flags(
        """
        import random

        def f():
            return random.random() + random.randint(0, 5)
        """,
        "REP002",
        count=2,
    )


def test_rep002_accepts_injected_random_instance():
    assert_clean(
        """
        import random

        def f(seed):
            rng = random.Random(seed)
            return rng.random() + rng.randint(0, 5)
        """,
        "REP002",
    )


def test_rep002_flags_numpy_legacy_global_state():
    assert_flags(
        """
        import numpy as np

        def f():
            return np.random.rand(3)
        """,
        "REP002",
    )


def test_rep002_accepts_numpy_generator_construction():
    assert_clean(
        """
        import numpy as np

        def f(seed):
            rng = np.random.default_rng(seed)
            return rng.random(3)
        """,
        "REP002",
    )


def test_rep002_flags_from_import_of_global_rng_functions():
    assert_flags(
        """
        from random import shuffle
        """,
        "REP002",
    )


# ----------------------------------------------------------------------
# REP003 — float equality on probabilities
# ----------------------------------------------------------------------
def test_rep003_flags_probability_equality():
    assert_flags(
        """
        def f(p):
            if p == 0.5:
                return 1
            return 0
        """,
        "REP003",
    )


def test_rep003_flags_threshold_not_equal():
    assert_flags(
        """
        def f(value, threshold):
            return value != threshold
        """,
        "REP003",
    )


def test_rep003_accepts_inequalities_and_none_checks():
    assert_clean(
        """
        def f(p, eta):
            if p is None or p >= eta:
                return True
            return p <= 0.0
        """,
        "REP003",
    )


def test_rep003_ignores_non_probability_names():
    assert_clean(
        """
        def f(count, size):
            return count == size
        """,
        "REP003",
    )


# ----------------------------------------------------------------------
# REP004 — mutable defaults / bare except
# ----------------------------------------------------------------------
def test_rep004_flags_mutable_defaults():
    assert_flags(
        """
        def f(items=[], lookup={}):
            return items, lookup
        """,
        "REP004",
        count=2,
    )


def test_rep004_flags_mutable_constructor_default():
    assert_flags(
        """
        def f(items=list()):
            return items
        """,
        "REP004",
    )


def test_rep004_accepts_none_default():
    assert_clean(
        """
        def f(items=None):
            return list(items or ())
        """,
        "REP004",
    )


def test_rep004_flags_bare_except():
    assert_flags(
        """
        def f():
            try:
                return 1
            except:
                return 0
        """,
        "REP004",
    )


def test_rep004_accepts_typed_except():
    assert_clean(
        """
        def f():
            try:
                return 1
            except ValueError:
                return 0
        """,
        "REP004",
    )


# ----------------------------------------------------------------------
# REP006 — cross-process mutation
# ----------------------------------------------------------------------
def test_rep006_flags_worker_mutating_global():
    assert_flags(
        """
        RESULTS = []

        def worker(job):
            global RESULTS
            RESULTS = [job]

        def run(pool, jobs):
            pool.map(worker, jobs)
        """,
        "REP006",
    )


def test_rep006_flags_worker_mutating_argument_attribute():
    assert_flags(
        """
        def worker(job):
            graph, stats = job
            stats.calls = 1
            return graph

        def run(pool, jobs):
            return pool.imap_unordered(worker, jobs)
        """,
        "REP006",
    )


def test_rep006_accepts_worker_returning_data():
    assert_clean(
        """
        def worker(job):
            graph, k = job
            local = {"calls": 0}
            local["calls"] += 1
            return local

        def run(pool, jobs):
            return pool.map(worker, jobs)
        """,
        "REP006",
    )


def test_rep006_ignores_undispatched_functions():
    # Mutating state is only a cross-process bug for dispatched workers.
    assert_clean(
        """
        STATE = []

        def helper(job):
            global STATE
            STATE = [job]
        """,
        "REP006",
    )
