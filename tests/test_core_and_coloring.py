"""Core decomposition, degeneracy ordering, and greedy coloring."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.deterministic import (
    Graph,
    color_number,
    core_decomposition,
    count_colors,
    degeneracy,
    degeneracy_ordering,
    greedy_coloring,
    verify_coloring,
)
from tests.conftest import random_deterministic_graph


def naive_core_numbers(graph: Graph) -> dict:
    """Reference core decomposition by repeated minimum-degree peeling."""
    core = {}
    work = graph.copy()
    current = 0
    while work.num_vertices:
        v = min(work.vertices(), key=lambda u: (work.degree(u), repr(u)))
        current = max(current, work.degree(v))
        core[v] = current
        work.remove_vertex(v)
    return core


class TestCoreDecomposition:
    def test_clique_core_numbers(self):
        g = Graph([(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert set(core_decomposition(g).values()) == {3}

    def test_path_core_numbers(self):
        g = Graph([(0, 1), (1, 2), (2, 3)])
        assert set(core_decomposition(g).values()) == {1}

    def test_isolated_vertex(self):
        g = Graph()
        g.add_vertex(0)
        assert core_decomposition(g) == {0: 0}

    def test_empty_graph(self):
        assert core_decomposition(Graph()) == {}
        assert degeneracy(Graph()) == 0

    @given(st.integers(0, 60), st.integers(2, 12))
    @settings(max_examples=40, deadline=None)
    def test_matches_naive(self, seed, n):
        g = random_deterministic_graph(seed, n, 0.4)
        assert core_decomposition(g) == naive_core_numbers(g)

    def test_degeneracy_of_clique(self):
        g = Graph([(i, j) for i in range(5) for j in range(i + 1, 5)])
        assert degeneracy(g) == 4


class TestDegeneracyOrdering:
    def test_is_permutation(self):
        g = random_deterministic_graph(1, 15, 0.3)
        order = degeneracy_ordering(g)
        assert sorted(order, key=repr) == sorted(g.vertices(), key=repr)

    @given(st.integers(0, 40), st.integers(2, 12))
    @settings(max_examples=30, deadline=None)
    def test_back_degree_bounded_by_degeneracy(self, seed, n):
        """Each vertex has at most δ neighbors later in the ordering."""
        g = random_deterministic_graph(seed, n, 0.5)
        order = degeneracy_ordering(g)
        rank = {v: i for i, v in enumerate(order)}
        delta = degeneracy(g)
        for v in order:
            later = sum(1 for u in g.neighbors(v) if rank[u] > rank[v])
            assert later <= delta


class TestColoring:
    def test_proper_on_random_graphs(self):
        for seed in range(10):
            g = random_deterministic_graph(seed, 14, 0.5)
            colors = greedy_coloring(g)
            assert verify_coloring(g, colors)

    def test_triangle_needs_three_colors(self):
        g = Graph([(0, 1), (1, 2), (0, 2)])
        assert len(set(greedy_coloring(g).values())) == 3

    def test_bipartite_uses_two_colors(self):
        g = Graph([(0, 2), (0, 3), (1, 2), (1, 3)])
        assert len(set(greedy_coloring(g).values())) == 2

    def test_custom_order_respected(self):
        g = Graph([(0, 1)])
        colors = greedy_coloring(g, order=[0, 1])
        assert colors[0] == 0 and colors[1] == 1

    def test_color_number_upper_bounds_clique(self):
        g = random_deterministic_graph(3, 12, 0.6)
        colors = greedy_coloring(g)
        from repro.deterministic import maximum_clique

        best = maximum_clique(g)
        for v in best:
            # Any clique through v has at most color_number(v) + 1 members.
            assert len(best) <= color_number(g, colors, v) + 1

    def test_count_colors(self):
        g = Graph([(0, 1), (1, 2), (0, 2)])
        colors = greedy_coloring(g)
        assert count_colors(colors, [0, 1, 2]) == 3
        assert count_colors(colors, [0]) == 1
        assert count_colors(colors, []) == 0

    def test_verify_coloring_rejects_bad(self):
        g = Graph([(0, 1)])
        assert not verify_coloring(g, {0: 0, 1: 0})
