"""REP009 — compiled-variant parity.

The rule re-renders the dispatcher's whole legal key space from the
shared template; these tests pin the committed driver clean, the rule
silent off its anchor file, and each failure family firing when the
specialization guarantee is broken.
"""

from pathlib import Path

import pytest

from repro.analysis.registry import get_rule
from repro.analysis.rules import variants as variants_rule
from repro.analysis.runner import run_rules
from repro.analysis.source import SourceFile
from repro.engine import driver

REPO = Path(__file__).resolve().parents[1]
ENGINE_DRIVER = REPO / "src" / "repro" / "engine" / "driver.py"


def _findings(path=None, text=None):
    if path is None:
        path = ENGINE_DRIVER
    src = (
        SourceFile(str(path), text)
        if text is not None
        else SourceFile.read(str(path))
    )
    kept, _suppressed = run_rules([src], [get_rule("REP009")])
    return kept


def test_committed_driver_is_clean():
    assert _findings() == []


def test_silent_on_files_without_the_template():
    assert _findings(
        path="other.py", text="def _other():\n    pass\n"
    ) == []


def test_fires_when_a_hook_kind_goes_missing(monkeypatch):
    # Grow the required inventory past what the template provides —
    # equivalent to a hook site having been deleted from the template.
    monkeypatch.setattr(
        variants_rule,
        "OBS_RECURSION_HOOKS",
        tuple(variants_rule.OBS_RECURSION_HOOKS)
        + ("hook:on_prune:ghost",),
    )
    findings = _findings()
    assert findings
    assert any("ghost" in f.message for f in findings)
    assert any("hooked variant" in f.message for f in findings)


def test_fires_when_production_variants_keep_hooks(monkeypatch):
    # Simulate a broken fold: every key renders the hooked body.
    real_render = driver.render_variant

    def hooked_render(key):
        return real_render(("generic", True) + tuple(key[2:]))

    monkeypatch.setattr(driver, "render_variant", hooked_render)
    findings = _findings()
    assert findings
    assert any("production variant" in f.message for f in findings)


def test_fires_when_a_key_stops_rendering(monkeypatch):
    def broken_render(key):
        raise KeyError("NEW_FLAG")

    monkeypatch.setattr(driver, "render_variant", broken_render)
    findings = _findings()
    assert findings
    assert all("no longer renders" in f.message for f in findings)


def test_full_hooked_key_is_legal():
    assert variants_rule.FULL_HOOKED_KEY in driver.legal_variant_keys()


@pytest.mark.parametrize("key", driver.legal_variant_keys())
def test_every_legal_key_compiles_to_a_callable_factory(key):
    factory = driver.compiled_variant(key)
    assert callable(factory)
    assert driver.variant_id(key).startswith(key[0])
