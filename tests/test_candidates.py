"""The GenerateSet kernel and top-level candidate construction."""

from fractions import Fraction

from repro.core.candidates import generate_set, initial_candidates
from repro.uncertain import UncertainGraph, clique_probability


class TestGenerateSet:
    def test_filters_to_neighbors(self):
        g = UncertainGraph([(0, 1, 0.9), (0, 2, 0.9)])
        g.add_vertex(3)
        entries = {1: 1, 2: 1, 3: 1}
        out = generate_set(g, 0, entries, 1, 0.5)
        assert set(out) == {1, 2}

    def test_updates_r_values(self):
        g = UncertainGraph([(0, 1, 0.8), (1, 2, 0.5), (0, 2, 0.9)])
        # R = {0}, expanding with 1: q_new = 0.8.
        entries = {2: 0.9}  # r_2 relative to R = {0}
        out = generate_set(g, 1, entries, 0.8, 0.3)
        assert out == {2: 0.9 * 0.5}

    def test_threshold_filters(self):
        g = UncertainGraph([(0, 1, 0.8), (1, 2, 0.5), (0, 2, 0.9)])
        entries = {2: 0.9}
        assert generate_set(g, 1, entries, 0.8, 0.4) == {}

    def test_invariant_against_recomputation(self):
        """q_new * r_u equals the full clique probability of R' ∪ {u}."""
        g = UncertainGraph(
            [(0, 1, 0.9), (0, 2, 0.8), (1, 2, 0.7), (0, 3, 0.6),
             (1, 3, 0.5), (2, 3, 0.9)]
        )
        # R = {0}; C holds 1, 2, 3 with r = p(0, ·).
        c = {v: g.probability(0, v) for v in (1, 2, 3)}
        q_new = 1 * c[1]  # expand vertex 1
        out = generate_set(g, 1, c, q_new, 0.0001)
        for u, r in out.items():
            assert q_new * r == clique_probability(g, [0, 1, u])

    def test_exact_fractions_flow_through(self):
        g = UncertainGraph([(0, 1, Fraction(1, 2)), (1, 2, Fraction(1, 2)),
                            (0, 2, Fraction(1, 2))])
        c = {1: Fraction(1, 2), 2: Fraction(1, 2)}
        out = generate_set(g, 1, c, Fraction(1, 2), Fraction(1, 8))
        assert out == {2: Fraction(1, 4)}
        assert isinstance(out[2], Fraction)


class TestInitialCandidates:
    def test_split_by_rank(self):
        g = UncertainGraph([(0, 1, 0.9), (0, 2, 0.9)])
        rank = {0: 1, 1: 0, 2: 2}
        later, earlier = initial_candidates(g, 0, 0.5, rank)
        assert set(later) == {2}
        assert set(earlier) == {1}

    def test_eta_filters_weak_edges(self):
        g = UncertainGraph([(0, 1, 0.9), (0, 2, 0.3)])
        rank = {0: 0, 1: 1, 2: 2}
        later, earlier = initial_candidates(g, 0, 0.5, rank)
        assert set(later) == {1}
        assert earlier == {}

    def test_r_values_are_edge_probabilities(self):
        g = UncertainGraph([(0, 1, 0.7)])
        later, _ = initial_candidates(g, 0, 0.5, {0: 0, 1: 1})
        assert later == {1: 0.7}
