"""KONECT-format loading."""

import pytest

from repro.exceptions import DatasetError
from repro.datasets import (
    load_konect_uncertain,
    parse_konect,
    read_konect,
)


SAMPLE = """% sym weighted
% 5 4
1 2 3 1167609600
2 3
1 2 2 1167696000
3 3 9
4 5 -2
"""


class TestParse:
    def test_aggregates_parallel_edges(self):
        edges = parse_konect(SAMPLE)
        assert edges[(1, 2)] == 5.0  # 3 + 2

    def test_default_weight_is_one(self):
        assert parse_konect(SAMPLE)[(2, 3)] == 1.0

    def test_self_loops_dropped(self):
        assert all(u != v for (u, v) in parse_konect(SAMPLE))

    def test_negative_weights_folded(self):
        # Signed interaction counts (e.g. downvotes) count as activity.
        assert parse_konect(SAMPLE)[(4, 5)] == 2.0

    def test_comments_skipped(self):
        assert len(parse_konect("% header only\n")) == 0

    def test_missing_column(self):
        with pytest.raises(DatasetError, match="line 1"):
            parse_konect("42\n")

    def test_non_integer_vertex(self):
        with pytest.raises(DatasetError, match="integers"):
            parse_konect("a b 1\n")

    def test_bad_weight(self):
        with pytest.raises(DatasetError, match="weight"):
            parse_konect("1 2 xyz\n")


class TestLoad:
    def test_read_file(self, tmp_path):
        path = tmp_path / "out.sample"
        path.write_text(SAMPLE)
        assert read_konect(path) == parse_konect(SAMPLE)

    def test_uncertain_graph_probabilities(self, tmp_path):
        path = tmp_path / "out.sample"
        path.write_text(SAMPLE)
        graph = load_konect_uncertain(path)
        import math

        assert graph.probability(1, 2) == pytest.approx(1 - math.exp(-2.5))
        assert graph.probability(2, 3) == pytest.approx(1 - math.exp(-0.5))

    def test_other_probability_model(self, tmp_path):
        path = tmp_path / "out.sample"
        path.write_text(SAMPLE)
        graph = load_konect_uncertain(path, probability_model="uniform")
        assert all(0.5 <= p <= 1 for _u, _v, p in graph.edges())
