"""Algorithm 3 (PMUC / PMUC+): correctness, configs, and pruning power."""

import pytest

from repro.exceptions import ParameterError
from repro.core import (
    PMUC_CONFIG,
    PMUC_PLUS_CONFIG,
    PivotConfig,
    PivotEnumerator,
    muc,
    pmuc,
    pmuc_plus,
)
from repro.datasets import figure1_core_subgraph, figure1_graph
from repro.uncertain import UncertainGraph, is_maximal_k_eta_clique
from tests.conftest import as_sorted_sets, random_uncertain_graph


class TestConfigs:
    def test_default_configs(self):
        assert PMUC_CONFIG.kpivot == "off"
        assert PMUC_PLUS_CONFIG.kpivot == "color"
        assert PMUC_PLUS_CONFIG.reduction == "triangle"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("ordering", "nope"),
            ("pivot", "nope"),
            ("mpivot", "nope"),
            ("kpivot", "nope"),
            ("reduction", "nope"),
        ],
    )
    def test_invalid_choice_rejected(self, field, value):
        with pytest.raises(ParameterError):
            PivotConfig(**{field: value})

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            PMUC_CONFIG.ordering = "as-is"


class TestParameters:
    @pytest.mark.parametrize("k", [0, -2, 2.5])
    def test_bad_k(self, triangle_graph, k):
        with pytest.raises(ParameterError):
            PivotEnumerator(triangle_graph, k, 0.5)

    @pytest.mark.parametrize("eta", [0, -1, 1.01])
    def test_bad_eta(self, triangle_graph, eta):
        with pytest.raises(ParameterError):
            PivotEnumerator(triangle_graph, 2, eta)


class TestCorrectness:
    def test_matches_muc_on_random_graphs(self):
        for seed in range(15):
            g = random_uncertain_graph(seed + 100, 9, 0.55)
            for k, eta in ((1, 0.4), (2, 0.15), (3, 0.5), (4, 0.05)):
                expected = as_sorted_sets(muc(g, k, eta).cliques)
                assert as_sorted_sets(pmuc(g, k, eta).cliques) == expected
                assert as_sorted_sets(pmuc_plus(g, k, eta).cliques) == expected

    def test_every_config_axis(self, two_communities):
        expected = as_sorted_sets(muc(two_communities, 2, 0.5).cliques)
        for ordering in ("as-is", "degeneracy", "topk-core"):
            for pivot in ("first", "degree", "color", "hybrid"):
                for mpivot in ("off", "basic", "improved"):
                    for kpivot in ("off", "plain", "color"):
                        config = PivotConfig(
                            ordering=ordering,
                            pivot=pivot,
                            mpivot=mpivot,
                            kpivot=kpivot,
                            reduction="off",
                        )
                        got = PivotEnumerator(
                            two_communities, 2, 0.5, config
                        ).run()
                        assert as_sorted_sets(got.cliques) == expected

    def test_outputs_are_maximal_k_eta_cliques(self):
        g = random_uncertain_graph(7, 12, 0.6)
        k, eta = 3, 0.3
        result = pmuc_plus(g, k, eta)
        for clique in result.cliques:
            assert is_maximal_k_eta_clique(g, clique, k, eta)

    def test_no_duplicates(self):
        g = random_uncertain_graph(8, 12, 0.6)
        result = pmuc_plus(g, 2, 0.3)
        assert len(result.cliques) == len(set(result.cliques))

    def test_k1_reports_isolated_vertices(self):
        g = UncertainGraph([(0, 1, 0.9)])
        g.add_vertex(7)
        got = as_sorted_sets(pmuc_plus(g, 1, 0.5).cliques)
        assert got == [frozenset({7}), frozenset({0, 1})]

    def test_empty_graph(self):
        assert pmuc_plus(UncertainGraph(), 2, 0.5).cliques == []

    def test_callback_streams(self, two_communities):
        seen = []
        result = pmuc_plus(two_communities, 3, 0.5, on_clique=seen.append)
        assert result.cliques == []
        assert len(seen) == result.stats.outputs > 0


class TestPruningPower:
    def test_figure1_pivot_beats_set_enumeration(self):
        """The paper's headline example: on the 5-clique subgraph the
        pivot algorithm explores far fewer nodes than MUC's 32."""
        g = figure1_core_subgraph()
        baseline = muc(g, 1, 0.5, use_reduction=False)
        pivoted = pmuc(g, 1, 0.5)
        assert as_sorted_sets(pivoted.cliques) == as_sorted_sets(baseline.cliques)
        assert baseline.stats.calls == 32
        assert pivoted.stats.calls < baseline.stats.calls / 2

    def test_mpivot_records_skips(self):
        g = figure1_core_subgraph()
        result = pmuc(g, 1, 0.5)
        assert result.stats.mpivot_skips > 0

    def test_improved_mpivot_no_worse_than_basic(self):
        g = figure1_graph()
        base = PivotEnumerator(
            g, 1, 0.53, PivotConfig(mpivot="basic", reduction="off")
        ).run()
        improved = PivotEnumerator(
            g, 1, 0.53, PivotConfig(mpivot="improved", reduction="off")
        ).run()
        assert as_sorted_sets(base.cliques) == as_sorted_sets(improved.cliques)
        assert improved.stats.calls <= base.stats.calls

    def test_kpivot_prunes_small_branches(self):
        g = random_uncertain_graph(3, 14, 0.5)
        k, eta = 5, 0.2
        off = PivotEnumerator(
            g, k, eta, PivotConfig(kpivot="off", reduction="off")
        ).run()
        color = PivotEnumerator(
            g, k, eta, PivotConfig(kpivot="color", reduction="off")
        ).run()
        assert as_sorted_sets(off.cliques) == as_sorted_sets(color.cliques)
        assert color.stats.calls <= off.stats.calls

    def test_triangle_reduction_shrinks_search_graph(self, two_communities):
        plus = pmuc_plus(two_communities, 4, 0.5)
        plain = pmuc(two_communities, 4, 0.5)
        assert as_sorted_sets(plus.cliques) == as_sorted_sets(plain.cliques)

    def test_stats_depth_tracked(self, two_communities):
        result = pmuc_plus(two_communities, 2, 0.5)
        assert result.stats.max_depth >= 3
