"""UKTruss, USCAN-style clustering, and PCluster baselines."""

import random

import pytest

from repro.exceptions import ParameterError
from repro.baselines import (
    edge_support_probability,
    k_gamma_truss,
    pkwik_cluster,
    structural_similarity,
    truss_community,
    uscan,
)
from repro.uncertain import UncertainGraph, sample_worlds
from tests.conftest import random_uncertain_graph


class TestEdgeSupportProbability:
    def test_support_zero_is_edge_probability(self, triangle_graph):
        assert edge_support_probability(triangle_graph, 0, 1, 0) == pytest.approx(0.9)

    def test_one_triangle(self, triangle_graph):
        # p_e * p(0,2) * p(1,2) = 0.9^3
        assert edge_support_probability(triangle_graph, 0, 1, 1) == pytest.approx(
            0.9**3
        )

    def test_more_support_than_triangles_is_zero(self, triangle_graph):
        assert edge_support_probability(triangle_graph, 0, 1, 2) == 0.0

    def test_non_edge_rejected(self, triangle_graph):
        with pytest.raises(ParameterError):
            edge_support_probability(triangle_graph, 0, 99, 1)

    def test_negative_support_rejected(self, triangle_graph):
        with pytest.raises(ParameterError):
            edge_support_probability(triangle_graph, 0, 1, -1)

    def test_matches_monte_carlo(self):
        g = random_uncertain_graph(5, 7, 0.7)
        edges = list(g.edges())
        u, v, _p = edges[0]
        support = 1
        exact = edge_support_probability(g, u, v, support)
        hits = 0
        n_samples = 4000
        for world in sample_worlds(g, n_samples, seed=9):
            if not world.has_edge(u, v):
                continue
            triangles = sum(
                1
                for w in world.neighbors(u)
                if w in world.neighbors(v)
            )
            if triangles >= support:
                hits += 1
        assert hits / n_samples == pytest.approx(exact, abs=0.03)


class TestKGammaTruss:
    def test_triangle_survives(self, triangle_graph):
        truss = k_gamma_truss(triangle_graph, 3, 0.5)
        assert truss.num_edges == 3

    def test_triangle_peeled_at_high_gamma(self, triangle_graph):
        truss = k_gamma_truss(triangle_graph, 3, 0.8)
        assert truss.num_edges == 0

    def test_pendant_edge_removed(self):
        g = UncertainGraph(
            [(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (2, 3, 0.9)]
        )
        truss = k_gamma_truss(g, 3, 0.5)
        assert not truss.has_edge(2, 3)
        assert truss.has_edge(0, 1)

    def test_truss_condition_holds_internally(self):
        for seed in range(4):
            g = random_uncertain_graph(seed + 60, 12, 0.6)
            truss = k_gamma_truss(g, 3, 0.2)
            for u, v, _p in truss.edges():
                assert edge_support_probability(truss, u, v, 1) >= 0.2

    def test_parameter_validation(self, triangle_graph):
        with pytest.raises(ParameterError):
            k_gamma_truss(triangle_graph, 1, 0.5)
        with pytest.raises(ParameterError):
            k_gamma_truss(triangle_graph, 3, 1.5)

    def test_truss_community(self, two_communities):
        community = truss_community(two_communities, 0, 3, 0.3)
        assert 0 in community
        missing = truss_community(two_communities, 0, 3, 0.99)
        assert missing == frozenset()


class TestStructuralSimilarity:
    def test_symmetric(self, two_communities):
        for u, v, _p in two_communities.edges():
            assert structural_similarity(
                two_communities, u, v
            ) == pytest.approx(structural_similarity(two_communities, v, u))

    def test_bounded(self):
        g = random_uncertain_graph(2, 12, 0.5)
        for u, v, _p in g.edges():
            sim = structural_similarity(g, u, v)
            assert 0 <= sim <= 1.0 + 1e-9

    def test_identical_neighborhoods_high_similarity(self):
        g = UncertainGraph(
            [(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]
        )
        assert structural_similarity(g, 0, 1) == pytest.approx(1.0)


class TestUscan:
    def test_clusters_two_communities(self, two_communities):
        clusters = uscan(two_communities, epsilon=0.5, mu=3)
        assert clusters
        covered = set().union(*clusters)
        assert covered <= set(range(7))

    def test_parameter_validation(self, two_communities):
        with pytest.raises(ParameterError):
            uscan(two_communities, epsilon=0)
        with pytest.raises(ParameterError):
            uscan(two_communities, mu=0)

    def test_no_clusters_on_sparse_graph(self):
        g = UncertainGraph([(0, 1, 0.1), (2, 3, 0.1)])
        assert uscan(g, epsilon=0.9, mu=3) == []


class TestPkwikCluster:
    def test_partitions_vertices(self):
        g = random_uncertain_graph(3, 20, 0.3)
        clusters = pkwik_cluster(g, seed=1)
        flat = [v for c in clusters for v in c]
        assert sorted(flat) == sorted(g.vertices())

    def test_deterministic_by_seed(self):
        g = random_uncertain_graph(4, 15, 0.4)
        a = pkwik_cluster(g, seed=5)
        b = pkwik_cluster(g, seed=5)
        assert a == b

    def test_majority_threshold_respected(self):
        g = UncertainGraph([(0, 1, 0.9), (1, 2, 0.1)])
        clusters = pkwik_cluster(g, threshold=0.5, seed=0)
        for cluster in clusters:
            if 0 in cluster and 1 in cluster:
                break
        else:
            pytest.fail("strong edge (0,1) should be clustered together "
                        "whenever 0 or 1 is chosen as pivot first")

    def test_threshold_validation(self, triangle_graph):
        with pytest.raises(ParameterError):
            pkwik_cluster(triangle_graph, threshold=0)
