"""``python -m repro.obs`` — the report and diff entry points.

The diff command is CI's perf gate: exit 0 on clean comparisons, 1 on
any regression beyond threshold, 2 on unusable input — so every status
is pinned here, over all three artifact kinds the loader sniffs.
"""

import json
from dataclasses import replace

import pytest

from repro.core import PMUC_PLUS_CONFIG, PivotEnumerator
from repro.obs.cli import main
from repro.obs.session import observe
from repro.uncertain import UncertainGraph


def tiny_graph():
    g = UncertainGraph()
    for u, v in ((0, 1), (0, 2), (1, 2), (2, 3), (1, 3)):
        g.add_edge(u, v, 0.9)
    return g


def bench_document(
    seconds=0.5, calls=100, expansions=80, outputs=10, variant=None
):
    run = {
        "workload": "tiny",
        "backend": "dict",
        "k": 2,
        "eta": 0.1,
        "seconds": seconds,
        "num_cliques": outputs,
        "stats": {
            "calls": calls,
            "expansions": expansions,
            "outputs": outputs,
            "max_depth": 3,
        },
        "metrics": {"counters": {}, "gauges": {},
                    "phases": {}, "depth": {}},
    }
    if variant is not None:
        run["variant"] = variant
    return {
        "schema": "repro.obs/bench-v1",
        "runs": [run],
    }


@pytest.fixture
def artifacts(tmp_path):
    """A real session's trace + metrics files from one tiny run."""
    trace = tmp_path / "run.trace.jsonl"
    metrics = tmp_path / "run.metrics.json"
    with observe(trace_path=str(trace), metrics_path=str(metrics)):
        config = replace(PMUC_PLUS_CONFIG, obs="full")
        PivotEnumerator(tiny_graph(), k=2, eta=0.1, config=config).run()
    return trace, metrics


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
def test_report_renders_all_three_artifact_kinds(
    artifacts, tmp_path, capsys
):
    trace, metrics = artifacts
    bench = tmp_path / "bench.json"
    bench.write_text(json.dumps(bench_document()))
    for path, marker in (
        (trace, "trace:"),
        (metrics, "run 0 ["),
        (bench, "tiny/dict"),
    ):
        assert main(["report", str(path)]) == 0
        assert marker in capsys.readouterr().out


def test_report_missing_file_exits_2(tmp_path, capsys):
    assert main(["report", str(tmp_path / "nope.json")]) == 2
    assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------
def test_diff_clean_exits_0(tmp_path, capsys):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(bench_document()))
    assert main(["diff", str(path), str(path)]) == 0
    out = capsys.readouterr().out
    assert "no regressions" in out
    assert "tiny/dict: calls 100 -> 100 ok" in out


def test_diff_counter_regression_exits_1(tmp_path, capsys):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(bench_document()))
    cur.write_text(json.dumps(bench_document(calls=150)))
    assert main(["diff", str(base), str(cur)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION tiny/dict: calls grew 100 -> 150" in out


def test_diff_output_drift_is_always_a_regression(tmp_path, capsys):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(bench_document()))
    cur.write_text(json.dumps(bench_document(outputs=11)))
    assert main(["diff", str(base), str(cur)]) == 1
    assert "outputs changed 10 -> 11" in capsys.readouterr().out


def test_diff_time_regression_respects_threshold(tmp_path, capsys):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(bench_document(seconds=0.1)))
    cur.write_text(json.dumps(bench_document(seconds=0.2)))
    # Doubling trips the default 1.5x gate ...
    assert main(["diff", str(base), str(cur)]) == 1
    assert "seconds grew" in capsys.readouterr().out
    # ... but not a widened one (cross-machine comparisons).
    assert main(
        ["diff", str(base), str(cur), "--time-threshold", "3.0"]
    ) == 0
    capsys.readouterr()


def test_diff_missing_run_is_a_regression(tmp_path, capsys):
    base_doc = bench_document()
    base_doc["runs"].append(
        dict(base_doc["runs"][0], backend="kernel")
    )
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(base_doc))
    cur.write_text(json.dumps(bench_document()))
    assert main(["diff", str(base), str(cur)]) == 1
    assert "tiny/kernel: missing from current" in capsys.readouterr().out
    # --only-common downgrades the absence (CI gates a --quick slice
    # against the full committed baseline) but still compares the rest.
    assert main(["diff", str(base), str(cur), "--only-common"]) == 0
    out = capsys.readouterr().out
    assert "tiny/kernel: not in current, skipped" in out
    assert "tiny/dict: calls 100 -> 100 ok" in out


def test_diff_only_common_with_empty_intersection_still_fails(
    tmp_path, capsys
):
    base_doc = bench_document()
    cur_doc = bench_document()
    cur_doc["runs"][0]["workload"] = "other"
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(base_doc))
    cur.write_text(json.dumps(cur_doc))
    assert main(["diff", str(base), str(cur), "--only-common"]) == 1
    assert "no common runs" in capsys.readouterr().out


def test_diff_cross_backend_documents_exit_2(tmp_path, capsys):
    base_doc = bench_document()
    cur_doc = bench_document()
    cur_doc["runs"][0]["backend"] = "kernel"
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(base_doc))
    cur.write_text(json.dumps(cur_doc))
    # Disjoint backends are unusable input, not a regression: wall
    # clocks are incomparable and no key would align anyway.
    assert main(["diff", str(base), str(cur)]) == 2
    err = capsys.readouterr().err
    assert "cross-backend comparison" in err
    assert "dict" in err and "kernel" in err


def test_diff_cross_variant_documents_exit_2(tmp_path, capsys):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(bench_document(variant="generic")))
    cur.write_text(json.dumps(bench_document(variant="generic+hooks")))
    # A hooked closure's wall clock is not comparable to the
    # production variant's: unusable input, not a regression.
    assert main(["diff", str(base), str(cur)]) == 2
    err = capsys.readouterr().err
    assert "cross-variant comparison" in err
    assert "generic+hooks" in err


def test_diff_unstamped_baseline_accepts_stamped_current(
    tmp_path, capsys
):
    # Artifacts predating the variant stamp must keep gating cleanly
    # against freshly stamped re-runs (the committed BENCH_pr4.json
    # case).
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(bench_document()))
    cur.write_text(json.dumps(bench_document(variant="generic")))
    assert main(["diff", str(base), str(cur)]) == 0
    assert "no regressions" in capsys.readouterr().out


def test_diff_matching_variants_compare_normally(tmp_path, capsys):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(bench_document(variant="bitset")))
    cur.write_text(
        json.dumps(bench_document(calls=150, variant="bitset"))
    )
    assert main(["diff", str(base), str(cur)]) == 1
    assert "calls grew" in capsys.readouterr().out


def test_diff_session_metrics_documents(artifacts, tmp_path, capsys):
    _trace, metrics = artifacts
    assert main(["diff", str(metrics), str(metrics)]) == 0
    assert "run0/kernel" in capsys.readouterr().out


def test_diff_trace_input_exits_2(artifacts, capsys):
    trace, _metrics = artifacts
    assert main(["diff", str(trace), str(trace)]) == 2
    assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# cross-platform warning: once per distinct drift per invocation
# ----------------------------------------------------------------------
def multi_run_document(env=None, workloads=("a", "b", "c")):
    """A bench document with several runs, each stamped with ``env``."""
    doc = bench_document()
    template = doc["runs"][0]
    doc["runs"] = [
        dict(template, workload=name, env=dict(env or {}))
        for name in workloads
    ]
    return doc


def test_diff_cross_platform_warning_fires_once_per_invocation(
    tmp_path, capsys
):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    here = {"python": "3.11.4", "platform": "Linux-x86_64"}
    there = {"python": "3.11.4", "platform": "Darwin-arm64"}
    base.write_text(json.dumps(multi_run_document(env=here)))
    cur.write_text(json.dumps(multi_run_document(env=there)))
    assert main(["diff", str(base), str(cur)]) == 0
    out = capsys.readouterr().out
    # Three aligned rows crossed the same machine boundary: the drift
    # is reported once for the whole invocation, not once per row.
    assert out.count("cross-platform compare") == 1
    assert "Linux-x86_64 -> Darwin-arm64" in out
    for name in ("a", "b", "c"):
        assert "%s/dict: calls 100 -> 100 ok" % name in out


def test_diff_distinct_drifts_each_warn_once(tmp_path, capsys):
    # Two different foreign environments in one document: one warning
    # per *distinct* drift, still independent of the row count.
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    here = {"python": "3.11.4", "platform": "Linux-x86_64"}
    base_doc = multi_run_document(env=here, workloads=("a", "b", "c", "d"))
    cur_doc = multi_run_document(env=here, workloads=("a", "b", "c", "d"))
    for run in cur_doc["runs"][:2]:
        run["env"] = {"python": "3.11.4", "platform": "Darwin-arm64"}
    for run in cur_doc["runs"][2:]:
        run["env"] = {"python": "3.12.1", "platform": "Linux-x86_64"}
    base.write_text(json.dumps(base_doc))
    cur.write_text(json.dumps(cur_doc))
    assert main(["diff", str(base), str(cur)]) == 0
    out = capsys.readouterr().out
    assert out.count("cross-platform compare") == 2
    assert "platform Linux-x86_64 -> Darwin-arm64" in out
    assert "python 3.11.4 -> 3.12.1" in out


def test_diff_document_level_stamp_dedupes_against_run_level(
    tmp_path, capsys
):
    # When the document meta restates the same drift the per-run envs
    # already surfaced, one invocation still prints it exactly once.
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    here = {"python": "3.11.4", "platform": "Linux-x86_64"}
    there = {"python": "3.11.4", "platform": "Darwin-arm64"}
    base_doc = multi_run_document(env=here)
    cur_doc = multi_run_document(env=there)
    base_doc["meta"] = dict(here)
    cur_doc["meta"] = dict(there)
    base.write_text(json.dumps(base_doc))
    cur.write_text(json.dumps(cur_doc))
    assert main(["diff", str(base), str(cur)]) == 0
    out = capsys.readouterr().out
    assert out.count("cross-platform compare") == 1


def test_diff_same_platform_runs_do_not_warn(tmp_path, capsys):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    here = {"python": "3.11.4", "platform": "Linux-x86_64"}
    base.write_text(json.dumps(multi_run_document(env=here)))
    cur.write_text(json.dumps(multi_run_document(env=here)))
    assert main(["diff", str(base), str(cur)]) == 0
    assert "cross-platform" not in capsys.readouterr().out
