"""Bron–Kerbosch variants against a brute-force oracle."""

from itertools import combinations

from hypothesis import given, settings, strategies as st

from repro.deterministic import (
    Graph,
    bron_kerbosch,
    bron_kerbosch_degeneracy,
    bron_kerbosch_pivot,
    maximal_cliques,
    maximum_clique,
    count_triangles,
    iter_triangles,
    triangles_of_edge,
)
from tests.conftest import as_sorted_sets, random_deterministic_graph


def naive_maximal_cliques(graph: Graph) -> list:
    cliques = []
    vertices = graph.vertices()
    for size in range(1, len(vertices) + 1):
        for subset in combinations(vertices, size):
            if graph.is_clique(subset):
                cliques.append(frozenset(subset))
    clique_set = set(cliques)
    return as_sorted_sets(
        c
        for c in cliques
        if not any(
            frozenset(c | {v}) in clique_set for v in vertices if v not in c
        )
    )


class TestVariantsAgree:
    @given(st.integers(0, 80), st.integers(1, 9))
    @settings(max_examples=50, deadline=None)
    def test_all_variants_match_naive(self, seed, n):
        g = random_deterministic_graph(seed, n, 0.5)
        expected = naive_maximal_cliques(g)
        assert as_sorted_sets(bron_kerbosch(g)) == expected
        assert as_sorted_sets(bron_kerbosch_pivot(g)) == expected
        assert as_sorted_sets(bron_kerbosch_degeneracy(g)) == expected

    def test_empty_graph(self):
        assert list(bron_kerbosch_pivot(Graph())) == []

    def test_isolated_vertices_are_cliques(self):
        g = Graph()
        g.add_vertex(0)
        g.add_vertex(1)
        assert as_sorted_sets(bron_kerbosch_degeneracy(g)) == [
            frozenset({0}),
            frozenset({1}),
        ]

    def test_maximal_cliques_helper_sorted(self):
        g = Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
        result = maximal_cliques(g)
        assert result == [frozenset({2, 3}), frozenset({0, 1, 2})]

    def test_maximum_clique(self):
        g = Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
        assert maximum_clique(g) == frozenset({0, 1, 2})
        assert maximum_clique(Graph()) == frozenset()


class TestTriangles:
    def test_single_triangle(self):
        g = Graph([(0, 1), (1, 2), (0, 2)])
        assert count_triangles(g) == 1
        assert sorted(triangles_of_edge(g, 0, 1)) == [2]

    def test_no_triangles_in_tree(self):
        g = Graph([(0, 1), (1, 2), (2, 3)])
        assert count_triangles(g) == 0

    def test_k4_has_four_triangles(self):
        g = Graph([(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert count_triangles(g) == 4

    @given(st.integers(0, 50), st.integers(3, 10))
    @settings(max_examples=30, deadline=None)
    def test_each_triangle_listed_once(self, seed, n):
        g = random_deterministic_graph(seed, n, 0.5)
        listed = [frozenset(t) for t in iter_triangles(g)]
        assert len(listed) == len(set(listed))
        naive = sum(
            1
            for t in combinations(g.vertices(), 3)
            if g.is_clique(t)
        )
        assert len(listed) == naive
