"""Unit tests for the deterministic Graph substrate."""

import pytest

from repro.exceptions import GraphError
from repro.deterministic import Graph


class TestBasics:
    def test_constructor_and_counts(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph([(1, 1)])

    def test_add_vertex(self):
        g = Graph()
        g.add_vertex("x")
        assert "x" in g
        assert g.degree("x") == 0

    def test_remove_vertex(self):
        g = Graph([(1, 2), (2, 3)])
        g.remove_vertex(2)
        assert g.num_edges == 0
        assert 2 not in g

    def test_remove_missing_vertex(self):
        with pytest.raises(GraphError):
            Graph().remove_vertex(1)

    def test_neighbors_missing_vertex(self):
        with pytest.raises(GraphError):
            Graph().neighbors(1)

    def test_edges_each_once(self):
        g = Graph([(1, 2), (2, 3), (1, 3)])
        assert len(list(g.edges())) == 3

    def test_max_degree(self):
        g = Graph([(1, 2), (1, 3), (1, 4)])
        assert g.max_degree() == 3
        assert Graph().max_degree() == 0

    def test_len_iter(self):
        g = Graph([(1, 2)])
        assert len(g) == 2
        assert sorted(g) == [1, 2]

    def test_repr(self):
        assert repr(Graph([(1, 2)])) == "Graph(n=2, m=1)"


class TestPredicates:
    def test_is_clique_true(self):
        g = Graph([(1, 2), (2, 3), (1, 3)])
        assert g.is_clique([1, 2, 3])
        assert g.is_clique([1])
        assert g.is_clique([])

    def test_is_clique_false(self):
        g = Graph([(1, 2), (2, 3)])
        assert not g.is_clique([1, 2, 3])

    def test_is_clique_unknown_vertex(self):
        g = Graph([(1, 2)])
        assert not g.is_clique([1, 99])


class TestDerived:
    def test_subgraph(self):
        g = Graph([(1, 2), (2, 3), (3, 4)])
        sub = g.subgraph([2, 3, 4])
        assert sub.num_edges == 2
        assert not sub.has_edge(1, 2)

    def test_copy_independent(self):
        g = Graph([(1, 2)])
        dup = g.copy()
        dup.add_edge(2, 3)
        assert not g.has_edge(2, 3)
