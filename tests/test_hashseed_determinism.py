"""End-to-end hash-seed independence of the analysis-audited pipelines.

Runs the modules repro-lint's REP001 audit touched — USCAN clustering
(including the first-match border attachment), the peeling baselines,
the ``(Top_k, η)``-core reduction and Bron–Kerbosch — in fresh
interpreters under two different ``PYTHONHASHSEED`` values and asserts
byte-identical output.  String vertices are essential: their hashes
(and therefore raw set iteration order) change with the seed, which is
exactly what the audited code must no longer depend on.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

PIPELINE = r"""
import json
import random

from repro.baselines.ukcore import k_eta_core_vertices
from repro.baselines.uktruss import k_gamma_truss
from repro.baselines.uscan import uscan
from repro.deterministic.bron_kerbosch import bron_kerbosch_pivot
from repro.deterministic.graph import Graph
from repro.reduction.topk_core import topk_core_vertices
from repro.uncertain.graph import UncertainGraph

rng = random.Random(7)
names = ["node-%02d" % i for i in range(18)]
ug = UncertainGraph()
dg = Graph()
for i, u in enumerate(names):
    for v in names[i + 1:]:
        if rng.random() < 0.35:
            ug.add_edge(u, v, round(0.5 + 0.5 * rng.random(), 3))
            dg.add_edge(u, v)

out = {
    # Cluster *order* and border membership are part of the contract.
    "uscan": [sorted(c) for c in uscan(ug, epsilon=0.35, mu=2)],
    "kcore": sorted(k_eta_core_vertices(ug, 2, 0.3)),
    "truss": sorted(
        sorted([u, v]) for u, v, _p in k_gamma_truss(ug, 3, 0.2).edges()
    ),
    "topk": sorted(topk_core_vertices(ug, 2, 0.3)),
    # Yield order pins the recursion tree, not just the clique set.
    "bk": [sorted(c) for c in bron_kerbosch_pivot(dg)],
}
print(json.dumps(out, sort_keys=True))
"""


def run_pipeline(hashseed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = str(REPO / "src")
    result = subprocess.run(
        [sys.executable, "-c", PIPELINE],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO),
        check=True,
    )
    return result.stdout


def test_pipeline_is_hashseed_independent():
    first = run_pipeline(1)
    second = run_pipeline(4242)
    assert first == second
    assert '"uscan"' in first  # the pipeline actually produced output


def test_pipeline_produces_nonempty_results():
    import json

    payload = json.loads(run_pipeline(0))
    assert payload["bk"], "Bron-Kerbosch found no cliques"
    assert payload["kcore"], "core peeling removed everything"
