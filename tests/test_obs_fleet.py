"""Fleet aggregation: parallel shards, flight replay parity, CLI views."""

import json
from dataclasses import replace

from repro.core import enumerate_parallel, enumerate_partitioned
from repro.core.config import PMUC_PLUS_CONFIG
from repro.core.pmuc import PivotEnumerator
from repro.obs.cli import main as obs_main
from repro.obs.fleet import fleet_summary
from repro.obs.flight import merge_flight_registries, replay_flight
from repro.obs.session import observe

from tests.conftest import as_sorted_sets, random_uncertain_graph


def _canon(doc):
    return json.dumps(doc, sort_keys=True)


class TestFleetSummary:
    SHARDS = [
        {"shard": 1, "seeds": 4, "outputs": 3, "wall_s": 1.0,
         "metrics": None},
        {"shard": 0, "seeds": 6, "outputs": 7, "wall_s": 3.0,
         "metrics": None},
    ]

    def test_imbalance_and_utilization(self):
        summary = fleet_summary(self.SHARDS)
        assert summary["workers"] == 2
        assert summary["seeds"] == 10
        assert summary["outputs"] == 10
        # Ordered by shard index, not input order.
        assert summary["wall_s"] == [3.0, 1.0]
        assert summary["imbalance"] == 1.5   # max 3.0 / mean 2.0
        assert summary["utilization"] == 0.6667
        # A shard without metrics keeps the merged registry out.
        assert "metrics" not in summary

    def test_empty_shards(self):
        assert fleet_summary([]) == {}

    def test_order_insensitive(self):
        assert _canon(fleet_summary(self.SHARDS)) == _canon(
            fleet_summary(self.SHARDS[::-1])
        )


class TestPartitionedBreakdown:
    def test_shards_survive_the_merge(self):
        g = random_uncertain_graph(13, 16, 0.5)
        merged = enumerate_partitioned(g, 2, 0.4, parts=3)
        assert len(merged.shards) == 3
        assert sum(s["outputs"] for s in merged.shards) == \
            merged.stats.outputs
        assert sum(s["calls"] for s in merged.shards) == merged.stats.calls
        assert merged.fleet["workers"] == 3
        assert merged.fleet["outputs"] == merged.stats.outputs

    def test_monolithic_result_has_no_fleet(self):
        g = random_uncertain_graph(10, 8, 0.5)
        result = PivotEnumerator(g, 2, 0.4).run()
        assert result.shards == []
        assert result.fleet == {}

    def test_observed_shards_carry_metrics(self):
        g = random_uncertain_graph(13, 16, 0.5)
        config = replace(PMUC_PLUS_CONFIG, obs="light")
        merged = enumerate_partitioned(g, 2, 0.4, parts=2, config=config)
        assert all(s["metrics"] is not None for s in merged.shards)
        live = merged.fleet["metrics"]
        stats = merged.stats.as_dict()
        expected = {k: v for k, v in stats.items() if k != "max_depth"}
        assert live["counters"] == expected
        assert live["gauges"]["max_depth"] == stats["max_depth"]


class TestParallelFlightParity:
    def test_parallel_flight_replay_matches_live_registry(self, tmp_path):
        g = random_uncertain_graph(14, 18, 0.5)
        config = replace(PMUC_PLUS_CONFIG, obs="light")
        flight_dir = str(tmp_path / "flights")
        merged = enumerate_parallel(
            g, 2, 0.4, parts=2, processes=2, config=config,
            flight_dir=flight_dir,
        )
        sequential = enumerate_partitioned(
            g, 2, 0.4, parts=2, config=config
        )
        single = PivotEnumerator(g, 2, 0.4, config).run()

        # Clique surface: invariant across all drivers.
        assert as_sorted_sets(merged.cliques) == \
            as_sorted_sets(single.cliques)
        # Counter surface: byte-identical to the same-chunking
        # sequential run.
        assert _canon(merged.stats.as_dict()) == \
            _canon(sequential.stats.as_dict())

        # Per-worker flight logs exist and replay to the live registry.
        worker_paths = sorted(
            str(p) for p in (tmp_path / "flights").glob(
                "flight-worker*.jsonl"
            )
        )
        assert len(worker_paths) == 2
        logs = [replay_flight(p) for p in worker_paths]
        assert all(not log.truncated for log in logs)
        replayed = merge_flight_registries(logs)
        assert _canon(replayed.as_dict()) == _canon(merged.fleet["metrics"])
        # ... independent of replay order.
        shuffled = merge_flight_registries(logs[::-1])
        assert _canon(shuffled.as_dict()) == _canon(merged.fleet["metrics"])

        # The parent log records the fan-out and the merged finish.
        parent = replay_flight(str(tmp_path / "flights"
                                   / "flight-parent.jsonl"))
        assert parent.role == "parent"
        dispatches = [
            e for e in parent.events if e["event"] == "dispatch"
        ]
        assert [d["shard"] for d in dispatches] == [0, 1]
        assert parent.finish()["outputs"] == merged.stats.outputs

    def test_single_chunk_parallel_records_flight(self, tmp_path):
        g = random_uncertain_graph(10, 8, 0.5)
        flight_dir = str(tmp_path / "flights")
        merged = enumerate_parallel(
            g, 2, 0.4, parts=1, flight_dir=flight_dir
        )
        assert len(merged.shards) == 1
        worker = replay_flight(
            str(tmp_path / "flights" / "flight-worker00.jsonl")
        )
        # obs off: no metrics snapshot, but the flat stats still replay
        # into comparable counters.
        registry = worker.registry()
        assert registry.counters()["outputs"] == merged.stats.outputs


class TestObsCli:
    def _flights(self, tmp_path):
        g = random_uncertain_graph(12, 14, 0.5)
        config = replace(PMUC_PLUS_CONFIG, obs="light")
        flight_dir = tmp_path / "flights"
        enumerate_parallel(
            g, 2, 0.4, parts=2, processes=2, config=config,
            flight_dir=str(flight_dir),
        )
        return sorted(str(p) for p in flight_dir.glob("flight-*.jsonl"))

    def test_tail_fleet_timeline_smoke(self, tmp_path, capsys):
        paths = self._flights(tmp_path)
        assert obs_main(["tail", paths[0], "--last", "3"]) == 0
        out = capsys.readouterr().out
        assert "repro.obs/flight-v1" in out

        assert obs_main(["fleet"] + paths) == 0
        out = capsys.readouterr().out
        assert "parent 0" in out
        assert "imbalance" in out

        trace_path = str(tmp_path / "trace.jsonl")
        assert obs_main(["timeline"] + paths + ["--out", trace_path]) == 0
        capsys.readouterr()
        events = [
            json.loads(line)
            for line in open(trace_path, encoding="utf-8")
        ]
        lanes = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert any(name.startswith("parent") for name in lanes)
        assert sum(1 for n in lanes if n.startswith("worker")) == 2
        # The timeline doubles as a report-able trace artifact.
        assert obs_main(["report", trace_path]) == 0
        assert "lanes" in capsys.readouterr().out

    def test_report_renders_flight_log(self, tmp_path, capsys):
        paths = self._flights(tmp_path)
        assert obs_main(["report", paths[0]]) == 0
        assert "run_start" in capsys.readouterr().out

    def test_trajectory_over_bench_artifacts(self, capsys):
        assert obs_main(["trajectory", "BENCH_pr6.json"]) == 0
        out = capsys.readouterr().out
        assert "kernel-backend-speedup" in out
        assert "BENCH_pr6.json" in out

    def test_diff_speedup_document_against_itself(self, capsys):
        code = obs_main(["diff", "BENCH_pr6.json", "BENCH_pr6.json"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no regressions beyond threshold" in out
        # Same artifact, same fingerprint: never a cross-platform warning.
        assert "cross-platform" not in out

    def test_missing_file_exits_2(self, capsys):
        assert obs_main(["tail", "no-such-flight.jsonl"]) == 2
        capsys.readouterr()


class TestPlatformWarning:
    def test_diff_warns_on_cross_platform(self, tmp_path, capsys):
        base = {
            "bench": "kernel-backend-speedup",
            "env": {"python": "3.11.1", "platform": "Linux-x"},
            "workloads": [
                {"name": "w", "outputs": 5, "best_s": {"kernel": 1.0},
                 "variants": {}},
            ],
        }
        run = json.loads(json.dumps(base))
        run["env"] = {"python": "3.12.0", "platform": "macOS-y"}
        base_path = str(tmp_path / "base.json")
        run_path = str(tmp_path / "run.json")
        for path, doc in ((base_path, base), (run_path, run)):
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(doc, handle)
        assert obs_main(["diff", base_path, run_path]) == 0
        out = capsys.readouterr().out
        # Warns (not fails): counters still gate, the clock does not.
        assert "cross-platform" in out
        assert "no regressions beyond threshold" in out


class TestParallelGate:
    def test_gate_passes_end_to_end(self, tmp_path, capsys):
        from repro.bench.parallel_gate import main as gate_main

        flight_dir = str(tmp_path / "gate")
        trace = str(tmp_path / "gate" / "trace.jsonl")
        code = gate_main([
            "--flight-dir", flight_dir, "--timeline-out", trace,
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "parallel obs gate ok" in out
        assert (tmp_path / "gate" / "trace.jsonl").exists()


class TestProgressIntegration:
    def test_progress_rides_an_observe_session(self):
        from repro.obs.progress import ProgressTracker

        class Stream:
            def __init__(self):
                self.lines = []

            def write(self, text):
                self.lines.append(text)

            def flush(self):
                pass

        g = random_uncertain_graph(12, 14, 0.5)
        stream = Stream()
        tracker = ProgressTracker(stream=stream, interval=0.0)
        config = replace(PMUC_PLUS_CONFIG, obs="light")
        with observe(progress=tracker):
            result = PivotEnumerator(g, 2, 0.4, config).run()
        assert result.stats.outputs > 0
        assert tracker.roots_total > 0
        assert stream.lines, "progress should have rendered"
        assert "progress" in stream.lines[0]
