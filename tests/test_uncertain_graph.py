"""Unit tests for :class:`repro.uncertain.UncertainGraph`."""

from fractions import Fraction

import pytest

from repro.exceptions import GraphError, InvalidProbabilityError
from repro.uncertain import UncertainGraph, normalize_edge


class TestConstruction:
    def test_empty_graph(self):
        g = UncertainGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_constructor_edges(self):
        g = UncertainGraph([(1, 2, 0.5), (2, 3, 0.7)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_add_vertex_idempotent(self):
        g = UncertainGraph()
        g.add_vertex("a")
        g.add_vertex("a")
        assert g.num_vertices == 1

    def test_add_edge_creates_vertices(self):
        g = UncertainGraph()
        g.add_edge(1, 2, 0.5)
        assert 1 in g and 2 in g

    def test_add_edge_overwrites_probability(self):
        g = UncertainGraph()
        g.add_edge(1, 2, 0.5)
        g.add_edge(1, 2, 0.8)
        assert g.probability(1, 2) == 0.8
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = UncertainGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1, 0.5)

    @pytest.mark.parametrize("p", [0, -0.1, 1.5, 2])
    def test_invalid_probability_rejected(self, p):
        g = UncertainGraph()
        with pytest.raises(InvalidProbabilityError):
            g.add_edge(1, 2, p)

    def test_probability_one_allowed(self):
        g = UncertainGraph([(1, 2, 1.0)])
        assert g.probability(1, 2) == 1.0

    def test_fraction_probability_allowed(self):
        g = UncertainGraph([(1, 2, Fraction(1, 2))])
        assert g.probability(1, 2) == Fraction(1, 2)


class TestRemoval:
    def test_remove_edge(self):
        g = UncertainGraph([(1, 2, 0.5)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_vertices == 2

    def test_remove_missing_edge_raises(self):
        g = UncertainGraph([(1, 2, 0.5)])
        with pytest.raises(GraphError):
            g.remove_edge(1, 3)

    def test_remove_vertex(self):
        g = UncertainGraph([(1, 2, 0.5), (2, 3, 0.5)])
        g.remove_vertex(2)
        assert 2 not in g
        assert g.num_edges == 0

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(GraphError):
            UncertainGraph().remove_vertex(7)


class TestQueries:
    def test_probability_of_missing_edge_is_zero(self):
        g = UncertainGraph([(1, 2, 0.5)])
        assert g.probability(1, 3) == 0
        assert g.probability(9, 10) == 0

    def test_neighbors(self):
        g = UncertainGraph([(1, 2, 0.5), (1, 3, 0.7)])
        assert g.neighbors(1) == {2: 0.5, 3: 0.7}

    def test_neighbors_of_missing_vertex_raises(self):
        with pytest.raises(GraphError):
            UncertainGraph().neighbors(1)

    def test_degree_and_max_degree(self):
        g = UncertainGraph([(1, 2, 0.5), (1, 3, 0.5), (2, 3, 0.5)])
        assert g.degree(1) == 2
        assert g.max_degree() == 2
        assert UncertainGraph().max_degree() == 0

    def test_edges_yields_each_once(self):
        g = UncertainGraph([(1, 2, 0.5), (2, 3, 0.6), (1, 3, 0.7)])
        edges = list(g.edges())
        assert len(edges) == 3
        keys = {normalize_edge(u, v) for u, v, _ in edges}
        assert keys == {(1, 2), (2, 3), (1, 3)}

    def test_iteration_and_len(self):
        g = UncertainGraph([(1, 2, 0.5)])
        assert sorted(g) == [1, 2]
        assert len(g) == 2

    def test_repr(self):
        assert repr(UncertainGraph([(1, 2, 0.5)])) == "UncertainGraph(n=2, m=1)"


class TestDerivedGraphs:
    def test_subgraph_keeps_internal_edges(self):
        g = UncertainGraph([(1, 2, 0.5), (2, 3, 0.6), (3, 4, 0.7)])
        sub = g.subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.has_edge(1, 2) and sub.has_edge(2, 3)
        assert not sub.has_edge(3, 4)

    def test_subgraph_ignores_unknown_vertices(self):
        g = UncertainGraph([(1, 2, 0.5)])
        sub = g.subgraph([1, 2, 99])
        assert sub.num_vertices == 2

    def test_subgraph_does_not_alias_original(self):
        g = UncertainGraph([(1, 2, 0.5)])
        sub = g.subgraph([1, 2])
        sub.remove_edge(1, 2)
        assert g.has_edge(1, 2)

    def test_edge_subgraph(self):
        g = UncertainGraph([(1, 2, 0.5), (2, 3, 0.6), (1, 3, 0.7)])
        sub = g.edge_subgraph([(1, 2), (2, 3)])
        assert sub.num_edges == 2
        assert not sub.has_edge(1, 3)

    def test_edge_subgraph_skips_missing(self):
        g = UncertainGraph([(1, 2, 0.5)])
        sub = g.edge_subgraph([(1, 2), (5, 6)])
        assert sub.num_edges == 1

    def test_to_deterministic(self):
        g = UncertainGraph([(1, 2, 0.5), (2, 3, 0.6)])
        g.add_vertex(9)
        det = g.to_deterministic()
        assert det.num_vertices == 4
        assert det.has_edge(1, 2) and det.has_edge(2, 3)

    def test_with_exact_probabilities(self):
        g = UncertainGraph([(1, 2, 0.5), (2, 3, 0.3)])
        exact = g.with_exact_probabilities()
        assert exact.probability(1, 2) == Fraction(1, 2)
        assert exact.probability(2, 3) == Fraction(3, 10)

    def test_copy_is_independent(self):
        g = UncertainGraph([(1, 2, 0.5)])
        dup = g.copy()
        dup.add_edge(2, 3, 0.9)
        assert not g.has_edge(2, 3)


class TestComponents:
    def test_connected_components(self):
        g = UncertainGraph([(1, 2, 0.5), (3, 4, 0.5)])
        g.add_vertex(9)
        comps = sorted(sorted(c) for c in g.connected_components())
        assert comps == [[1, 2], [3, 4], [9]]

    def test_single_component(self):
        g = UncertainGraph([(1, 2, 0.5), (2, 3, 0.5)])
        assert len(g.connected_components()) == 1


class TestNormalizeEdge:
    def test_orders_comparable(self):
        assert normalize_edge(2, 1) == (1, 2)
        assert normalize_edge("b", "a") == ("a", "b")

    def test_orders_mixed_types_deterministically(self):
        assert normalize_edge(1, "a") == normalize_edge("a", 1)
