"""End-to-end integration tests across modules and datasets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CliqueQuerySession,
    enumerate_maximal_cliques,
    verify_enumeration,
)
from repro.datasets import DATASET_NAMES, load_dataset
from repro.uncertain import threshold, sharpen
from tests.conftest import as_sorted_sets, random_uncertain_graph


class TestEveryDataset:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_enumerate_and_verify(self, name):
        """Load every stand-in, enumerate, and independently verify."""
        graph = load_dataset(name)
        eta = 0.01 if name == "dblp" else 0.1
        result = enumerate_maximal_cliques(graph, 4, eta, "pmuc+", limit=200)
        cliques = result.cliques
        # Verification without cross-check (limit may truncate the set,
        # but every reported clique must be sound).
        report = verify_enumeration(graph, 4, eta, cliques)
        assert not report.not_eta_cliques
        assert not report.not_maximal
        assert not report.too_small
        assert not report.duplicates

    @pytest.mark.parametrize("name", ("enron", "cn15k"))
    def test_algorithms_agree_on_datasets(self, name):
        graph = load_dataset(name)
        results = {
            algorithm: as_sorted_sets(
                enumerate_maximal_cliques(graph, 5, 0.1, algorithm).cliques
            )
            for algorithm in ("muc", "pmuc", "pmuc+")
        }
        assert results["muc"] == results["pmuc"] == results["pmuc+"]


class TestTransformTheorems:
    @given(st.integers(0, 80), st.sampled_from([0.2, 0.4, 0.6]))
    @settings(max_examples=25, deadline=None)
    def test_threshold_at_eta_preserves_cliques(self, seed, eta):
        """Every edge of an η-clique has probability >= η (the product
        of the others is <= 1), so dropping sub-η edges changes
        nothing about the maximal (k, η)-clique set."""
        g = random_uncertain_graph(seed, 9, 0.55)
        cut = threshold(g, eta)
        for k in (1, 2, 3):
            original = as_sorted_sets(
                enumerate_maximal_cliques(g, k, eta).cliques
            )
            reduced = as_sorted_sets(
                enumerate_maximal_cliques(cut, k, eta).cliques
            )
            assert original == reduced

    @given(st.integers(0, 40))
    @settings(max_examples=15, deadline=None)
    def test_sharpen_monotone_clique_count(self, seed):
        """Raising all probabilities (gamma < 1) can only keep or grow
        the set of η-cliques, so the maximum clique size never drops."""
        g = random_uncertain_graph(seed, 9, 0.55)
        eta = 0.3
        base = enumerate_maximal_cliques(g, 1, eta).cliques
        sharp = enumerate_maximal_cliques(sharpen(g, 0.5), 1, eta).cliques
        assert max(map(len, sharp), default=0) >= max(map(len, base), default=0)


class TestSessionMatchesAlgorithms:
    def test_session_vs_all_algorithms(self):
        graph = load_dataset("superuser")
        session = CliqueQuerySession(graph, eta=0.1)
        for k in (3, 6):
            expected = as_sorted_sets(
                enumerate_maximal_cliques(graph, k, 0.1, "muc").cliques
            )
            assert as_sorted_sets(session.query(k).cliques) == expected


class TestPipelines:
    def test_ppi_pipeline(self):
        """Generate → enumerate → score → export, end to end."""
        from repro.applications import (
            community_to_dot,
            ppi_cluster_with_cliques,
            score_clusters,
        )
        from repro.datasets import generate_ppi_network

        network = generate_ppi_network(
            seed=3, num_proteins=120, num_complexes=12, noise_edges=300
        )
        clusters = ppi_cluster_with_cliques(network.graph, 4, 0.1)
        report = score_clusters("PMUCE", clusters, network)
        assert report.precision > 0.5
        dot = community_to_dot(network.graph, max(clusters, key=len))
        assert dot.startswith("graph")

    def test_serialize_enumerate_round_trip(self, tmp_path):
        from repro.uncertain import load_json, save_json

        graph = load_dataset("cn15k")
        path = tmp_path / "kg.json"
        save_json(graph, path)
        again = load_json(path)
        a = as_sorted_sets(enumerate_maximal_cliques(graph, 4, 0.01).cliques)
        b = as_sorted_sets(enumerate_maximal_cliques(again, 4, 0.01).cliques)
        assert a == b
