"""GraphViz DOT export."""

from repro.applications import community_to_dot, to_dot
from repro.uncertain import UncertainGraph


class TestToDot:
    def test_basic_structure(self, triangle_graph):
        dot = to_dot(triangle_graph)
        assert dot.startswith('graph "uncertain" {')
        assert dot.rstrip().endswith("}")
        assert dot.count("--") == 3
        assert '"0" -- "1"' in dot

    def test_probability_labels_and_width(self, triangle_graph):
        dot = to_dot(triangle_graph)
        assert 'label="0.90"' in dot
        assert "penwidth=2.70" in dot

    def test_highlight_groups_colored(self, two_communities):
        dot = to_dot(two_communities, highlights=[[0, 1, 2, 3], [4, 5, 6]])
        assert "lightblue" in dot
        assert "lightgoldenrod" in dot
        assert "style=bold" in dot

    def test_min_probability_filters_edges(self, two_communities):
        dot = to_dot(two_communities, min_probability=0.5)
        # the weak 0.2 bridge (0, 6) is omitted
        assert '"0" -- "6"' not in dot

    def test_labels_override(self):
        g = UncertainGraph([(0, 1, 0.5)])
        dot = to_dot(g, labels={0: "alice"})
        assert 'label="alice"' in dot

    def test_quoting(self):
        g = UncertainGraph([('he said "hi"', "b", 0.5)])
        dot = to_dot(g)
        assert '\\"hi\\"' in dot

    def test_isolated_vertices_rendered(self):
        g = UncertainGraph([(0, 1, 0.5)])
        g.add_vertex(9)
        assert '"9"' in to_dot(g)


class TestCommunityToDot:
    def test_query_double_circle(self, two_communities):
        dot = community_to_dot(two_communities, [0, 1, 2, 3], query=0)
        assert '"0" [peripheries=2];' in dot
        # vertices outside the community never appear
        assert '"5"' not in dot

    def test_query_outside_community_ignored(self, two_communities):
        dot = community_to_dot(two_communities, [0, 1, 2], query=6)
        assert "peripheries" not in dot
