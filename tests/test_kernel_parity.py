"""Kernel-backend parity: the bitset fast path is observationally
identical to the dict backend.

The kernel (``PivotConfig.backend = "kernel"``) re-implements the
pivot recursion over dense integer ids and big-int neighbor bitsets
with log-domain threshold tests.  Parity here is strict: for every
graph/config/k/eta the two backends must emit *exactly* the same
maximal clique sets and byte-identical :class:`SearchStats` counters —
the speedup must come from cheaper per-call work, never from a
different search tree.  Exact :class:`~fractions.Fraction` runs are
out of scope for the kernel and must fall back to the dict path
silently.
"""

import random
from dataclasses import replace
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.core import PMUC_PLUS_CONFIG, PivotConfig, PivotEnumerator
from repro.kernel.enumerate import supports
from repro.uncertain import UncertainGraph

CONFIGS = (
    PMUC_PLUS_CONFIG,
    PivotConfig(
        pivot="degree", kpivot="plain", ordering="degeneracy",
        reduction="off",
    ),
    PivotConfig(
        pivot="color", mpivot="basic", kpivot="off",
        ordering="degeneracy", reduction="triangle",
    ),
    PivotConfig(
        pivot="first", mpivot="off", kpivot="off", ordering="as-is",
        reduction="off",
    ),
)


def run_both(graph, k, eta, config, **kwargs):
    """Run the same enumeration on both backends."""
    dict_result = PivotEnumerator(
        graph, k=k, eta=eta, config=replace(config, backend="dict"),
        **kwargs,
    ).run()
    kernel_result = PivotEnumerator(
        graph, k=k, eta=eta, config=replace(config, backend="kernel"),
        **kwargs,
    ).run()
    return dict_result, kernel_result


def assert_parity(graph, k, eta, config, **kwargs):
    dict_result, kernel_result = run_both(graph, k, eta, config, **kwargs)
    assert set(dict_result.cliques) == set(kernel_result.cliques)
    assert dict_result.stats.__dict__ == kernel_result.stats.__dict__
    return dict_result, kernel_result


@st.composite
def float_uncertain_graphs(draw):
    """Random float-probability graphs with up to 16 vertices."""
    n = draw(st.integers(4, 16))
    seed = draw(st.integers(0, 10_000))
    density = draw(st.sampled_from([0.2, 0.4, 0.6]))
    rng = random.Random(seed)
    g = UncertainGraph()
    for v in range(n):
        g.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                g.add_edge(u, v, round(rng.uniform(0.05, 1.0), 3))
    return g


@given(
    float_uncertain_graphs(),
    st.integers(1, 4),
    st.sampled_from((0.05, 0.25, 0.5)),
    st.sampled_from(CONFIGS),
)
@settings(max_examples=60, deadline=None)
def test_backends_agree_on_random_graphs(graph, k, eta, config):
    assert_parity(graph, k, eta, config)


def test_parity_on_denser_fixed_graph():
    """A denser fixed graph exercises deep recursions in both paths."""
    rng = random.Random(11)
    g = UncertainGraph()
    for u in range(40):
        for v in range(u + 1, 40):
            if rng.random() < 0.35:
                g.add_edge(u, v, rng.choice([0.35, 0.6, 0.85, 0.95]))
    for config in CONFIGS:
        for k, eta in ((2, 0.1), (3, 0.05), (4, 0.3)):
            assert_parity(g, k, eta, config)


def test_emission_order_matches():
    """Streaming sinks observe the same clique *sequence*, not just
    the same set: the kernel mirrors the recursion order exactly."""
    rng = random.Random(5)
    g = UncertainGraph()
    for u in range(25):
        for v in range(u + 1, 25):
            if rng.random() < 0.4:
                g.add_edge(u, v, round(rng.uniform(0.3, 1.0), 2))
    seen = {"dict": [], "kernel": []}
    for backend in ("dict", "kernel"):
        config = replace(PMUC_PLUS_CONFIG, backend=backend)
        PivotEnumerator(
            g, k=2, eta=0.1, config=config,
            on_clique=seen[backend].append,
        ).run()
    assert seen["dict"] == seen["kernel"]


def test_limit_truncates_identically():
    rng = random.Random(3)
    g = UncertainGraph()
    for u in range(30):
        for v in range(u + 1, 30):
            if rng.random() < 0.4:
                g.add_edge(u, v, round(rng.uniform(0.2, 1.0), 2))
    for config in CONFIGS[:2]:
        dict_result, kernel_result = run_both(
            g, 2, 0.1, config, limit=5
        )
        assert dict_result.cliques == kernel_result.cliques
        assert len(kernel_result.cliques) == 5
        assert dict_result.stats.__dict__ == kernel_result.stats.__dict__


def test_float_boundary_exactness():
    """Thresholds sitting exactly on representable float products must
    not be lost to the log-domain rewrite (the guard band replays the
    dict backend's float arithmetic for in-band decisions)."""
    g = UncertainGraph()
    for u, v in ((0, 1), (0, 2), (1, 2)):
        g.add_edge(u, v, 0.5)
    # Pr(triangle) = 0.125 exactly; eta == 0.125 must include it.
    for eta, expected in (
        (0.125, {frozenset({0, 1, 2})}),
        (0.2501, {frozenset({0, 1}), frozenset({0, 2}),
                  frozenset({1, 2})}),
    ):
        for config in CONFIGS:
            dict_result, kernel_result = assert_parity(g, 2, eta, config)
            assert set(kernel_result.cliques) == expected


def test_observer_metrics_match_across_backends():
    """The observability layer sees the *same search tree* from both
    backends: counters, gauges, and per-depth histograms must be
    identical (timers are wall-clock and are excluded)."""
    rng = random.Random(11)
    g = UncertainGraph()
    for u in range(30):
        for v in range(u + 1, 30):
            if rng.random() < 0.35:
                g.add_edge(u, v, rng.choice([0.35, 0.6, 0.85, 0.95]))
    for config in CONFIGS:
        views = {}
        for backend in ("dict", "kernel"):
            enumerator = PivotEnumerator(
                g, k=3, eta=0.1,
                config=replace(config, backend=backend, obs="metrics"),
            )
            enumerator.run()
            doc = enumerator.obs.metrics.as_dict()
            doc.pop("phases")  # measured seconds, backend-dependent
            views[backend] = doc
        assert views["dict"] == views["kernel"], config


def test_observer_sampled_stacks_match_across_backends():
    """Sampling is counter-based and the kernel translates its integer
    ids back to labels, so the folded flamegraph input — sampled
    recursion paths and weights — is byte-identical too."""
    rng = random.Random(5)
    g = UncertainGraph()
    for u in range(25):
        for v in range(u + 1, 25):
            if rng.random() < 0.4:
                g.add_edge(u, v, round(rng.uniform(0.3, 1.0), 2))
    folded = {}
    for backend in ("dict", "kernel"):
        enumerator = PivotEnumerator(
            g, k=2, eta=0.1,
            config=replace(
                PMUC_PLUS_CONFIG, backend=backend, obs="full"
            ),
        )
        enumerator.run()
        folded[backend] = enumerator.obs.folded.render()
    assert folded["dict"] == folded["kernel"]
    assert folded["dict"].startswith("enumerate")


def test_fraction_probabilities_fall_back_to_dict_path():
    """Exact-arithmetic graphs are unsupported by the kernel and must
    silently take the dict path with identical results."""
    g = UncertainGraph()
    g.add_edge("a", "b", Fraction(1, 2))
    g.add_edge("b", "c", Fraction(3, 4))
    g.add_edge("a", "c", Fraction(3, 4))
    assert not supports(g, Fraction(1, 4))
    dict_result, kernel_result = run_both(
        g, 2, Fraction(1, 4), PMUC_PLUS_CONFIG
    )
    assert set(kernel_result.cliques) == set(dict_result.cliques) == {
        frozenset({"a", "b", "c"})
    }
    assert dict_result.stats.__dict__ == kernel_result.stats.__dict__


def test_float_graph_fraction_eta_falls_back():
    """A float graph with a Fraction eta is also dict-path territory."""
    g = UncertainGraph()
    g.add_edge(0, 1, 0.9)
    g.add_edge(1, 2, 0.9)
    g.add_edge(0, 2, 0.9)
    assert not supports(g, Fraction(1, 2))
    dict_result, kernel_result = run_both(
        g, 2, Fraction(1, 2), PMUC_PLUS_CONFIG
    )
    assert set(kernel_result.cliques) == set(dict_result.cliques)
    assert dict_result.stats.__dict__ == kernel_result.stats.__dict__
