"""REP015 — nondeterministic content in a cache key.

The store's whole correctness story rests on RunKey being a pure
function of run semantics; these tests pin the committed key module
clean, the rule firing on every seeded mutant family, and the two
deliberate non-findings (abspath feeding ``open``, functions outside
the name pattern) staying silent.
"""

from pathlib import Path

from repro.analysis.registry import get_rule
from repro.analysis.runner import run_rules
from repro.analysis.source import SourceFile

REPO = Path(__file__).resolve().parents[1]
MUTANTS = REPO / "tests" / "fixtures" / "store_mutants"
KEY_MODULE = REPO / "src" / "repro" / "store" / "key.py"
CACHE_MODULE = REPO / "src" / "repro" / "analysis" / "cache.py"


def _findings(path=None, text=None):
    src = (
        SourceFile("mutant.py", text)
        if text is not None
        else SourceFile.read(str(path))
    )
    kept, _suppressed = run_rules([src], [get_rule("REP015")])
    return kept


def test_rule_is_registered():
    rule = get_rule("REP015")
    assert rule is not None
    assert rule.name == "nondeterministic-key-content"
    assert rule.severity.value == "error"


def test_committed_key_module_is_clean():
    assert _findings(path=KEY_MODULE) == []


def test_analysis_cache_salt_functions_stay_clean():
    # ``salted_sources`` resolves an abspath to *open* the engine
    # driver; only hashing the path itself would be a finding.
    assert _findings(path=CACHE_MODULE) == []


def test_every_mutant_family_fires():
    findings = _findings(path=MUTANTS / "nondeterministic_key.py")
    by_func = {}
    for finding in findings:
        name = finding.message.split("'")[1]
        by_func.setdefault(name, []).append(finding)
    assert set(by_func) == {
        "stamped_salt_mutant",
        "session_fingerprint_mutant",
        "path_salt_mutant",
        "staged_path_salt_mutant",
        "config_fingerprint_mutant",
        "json_key_for_mutant",
    }
    # The pid+id mutant carries two distinct sources; everything else
    # yields exactly one finding per function (no double-reporting of
    # update(path.encode()) shapes).
    assert len(by_func["session_fingerprint_mutant"]) == 2
    for name, group in by_func.items():
        if name != "session_fingerprint_mutant":
            assert len(group) == 1, (name, group)


def test_clock_reads_are_flagged_wherever_they_feed():
    findings = _findings(text=(
        "import time\n"
        "def run_key_for(k):\n"
        "    stamp = time.monotonic()\n"
        "    return (k, stamp)\n"
    ))
    assert len(findings) == 1
    assert "per-process/per-moment" in findings[0].message


def test_datetime_now_is_flagged_through_the_module_chain():
    findings = _findings(text=(
        "import datetime\n"
        "def canonical_stamp():\n"
        "    return datetime.datetime.now().isoformat()\n"
    ))
    assert len(findings) == 1
    assert "datetime.now()" in findings[0].message


def test_unsorted_json_dumps_is_flagged_and_sorted_is_not():
    bad = _findings(text=(
        "import json\n"
        "def key_for(fields):\n"
        "    return json.dumps(fields)\n"
    ))
    assert len(bad) == 1
    assert "sort_keys" in bad[0].message
    good = _findings(text=(
        "import json\n"
        "def key_for(fields):\n"
        "    return json.dumps(fields, sort_keys=True)\n"
    ))
    assert good == []


def test_sorted_items_loop_is_clean_unsorted_is_not():
    template = (
        "import hashlib\n"
        "def config_fingerprint(config):\n"
        "    digest = hashlib.sha256()\n"
        "    for name, value in %s:\n"
        "        digest.update(repr((name, value)).encode())\n"
        "    return digest.hexdigest()\n"
    )
    assert _findings(text=template % "sorted(config.items())") == []
    bad = _findings(text=template % "config.items()")
    assert len(bad) == 1
    assert "insertion order" in bad[0].message


def test_dict_view_loop_without_digest_sink_is_clean():
    # Iterating .items() to *build* something order-insensitive is not
    # the rule's business — only a digest feed is.
    findings = _findings(text=(
        "def canonical_view(config):\n"
        "    total = 0\n"
        "    for _name, value in config.items():\n"
        "        total += value\n"
        "    return total\n"
    ))
    assert findings == []


def test_functions_outside_the_name_pattern_are_out_of_scope():
    # FindingsCache.key hashes an abspath deliberately (the lint cache
    # is machine-local); 'key' alone must not match the pattern.
    findings = _findings(text=(
        "import hashlib, os\n"
        "class FindingsCache:\n"
        "    def key(self, path):\n"
        "        digest = hashlib.sha256()\n"
        "        digest.update(os.path.abspath(path).encode())\n"
        "        return digest.hexdigest()\n"
    ))
    assert findings == []


def test_suppression_comment_silences_the_rule():
    findings = _findings(text=(
        "import json\n"
        "def key_for(fields):\n"
        "    # repro-lint: ok REP015 keys are single-machine here\n"
        "    return json.dumps(fields)\n"
    ))
    assert findings == []
