"""Monte-Carlo estimators, stratified sampling, and reliability."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ParameterError
from repro.sampling import (
    Estimate,
    clique_reliability,
    estimate,
    estimate_clique_indicator,
    exact_reliability,
    reliability,
    sample_edge_matrix,
    stratified_estimate,
)
from repro.uncertain import UncertainGraph, clique_probability
from tests.conftest import random_uncertain_graph


class TestEstimate:
    def test_indicator_convergence(self, triangle_graph):
        result = estimate(
            triangle_graph,
            lambda w: 1.0 if w.is_clique([0, 1, 2]) else 0.0,
            samples=4000,
            seed=1,
        )
        assert result.value == pytest.approx(0.9**3, abs=0.03)
        assert 0.9**3 in result

    def test_interval_shrinks_with_samples(self, triangle_graph):
        small = estimate(triangle_graph, lambda w: 1.0, samples=100)
        large = estimate(triangle_graph, lambda w: 1.0, samples=10000)
        assert large.half_width < small.half_width

    def test_bounds_enforced(self, triangle_graph):
        with pytest.raises(ParameterError, match="outside"):
            estimate(triangle_graph, lambda w: 5.0, samples=3)

    def test_custom_bounds(self, triangle_graph):
        result = estimate(
            triangle_graph,
            lambda w: float(w.num_edges),
            samples=2000,
            seed=0,
            bounded=(0.0, 3.0),
        )
        assert result.value == pytest.approx(2.7, abs=0.15)

    def test_parameter_validation(self, triangle_graph):
        with pytest.raises(ParameterError):
            estimate(triangle_graph, lambda w: 0.0, samples=0)
        with pytest.raises(ParameterError):
            estimate(triangle_graph, lambda w: 0.0, confidence=1.0)
        with pytest.raises(ParameterError):
            estimate(triangle_graph, lambda w: 0.0, bounded=(1.0, 1.0))

    def test_estimate_container(self):
        e = Estimate(0.5, 0.4, 0.6, 100)
        assert e.half_width == pytest.approx(0.1)
        assert 0.45 in e and 0.7 not in e


class TestEdgeMatrix:
    def test_shape(self, triangle_graph):
        matrix, edges = sample_edge_matrix(triangle_graph, 50, seed=0)
        assert matrix.shape == (50, 3)
        assert len(edges) == 3

    def test_deterministic_by_seed(self, triangle_graph):
        a, _ = sample_edge_matrix(triangle_graph, 20, seed=5)
        b, _ = sample_edge_matrix(triangle_graph, 20, seed=5)
        assert (a == b).all()

    def test_marginals(self):
        g = UncertainGraph([(0, 1, 0.2), (1, 2, 0.8)])
        matrix, edges = sample_edge_matrix(g, 20000, seed=1)
        rates = matrix.mean(axis=0)
        by_edge = dict(zip(edges, rates))
        for (u, v), rate in by_edge.items():
            assert rate == pytest.approx(float(g.probability(u, v)), abs=0.02)

    def test_validation(self, triangle_graph):
        with pytest.raises(ParameterError):
            sample_edge_matrix(triangle_graph, 0)

    def test_clique_indicator_close_to_eq2(self):
        g = random_uncertain_graph(4, 6, 0.7)
        members = [0, 1, 2]
        result = estimate_clique_indicator(g, members, samples=20000, seed=2)
        assert result.value == pytest.approx(
            float(clique_probability(g, members)), abs=0.02
        )


class TestStratified:
    def test_unbiased_on_indicator(self, triangle_graph):
        truth = 0.9**3
        result = stratified_estimate(
            triangle_graph,
            lambda w: 1.0 if w.is_clique([0, 1, 2]) else 0.0,
            samples=4000,
            pivot_edges=2,
            seed=3,
        )
        assert result.value == pytest.approx(truth, abs=0.03)

    def test_explicit_pivots(self, triangle_graph):
        result = stratified_estimate(
            triangle_graph,
            lambda w: 1.0 if w.has_edge(0, 1) else 0.0,
            samples=64,
            pivots=[(0, 1)],
            seed=0,
        )
        # Conditioning on the queried edge makes the estimate exact.
        assert result.value == pytest.approx(0.9)

    def test_invalid_pivot(self, triangle_graph):
        with pytest.raises(ParameterError):
            stratified_estimate(
                triangle_graph, lambda w: 0.0, pivots=[(0, 99)]
            )

    def test_needs_pivots(self):
        g = UncertainGraph()
        g.add_vertex(0)
        with pytest.raises(ParameterError):
            stratified_estimate(g, lambda w: 0.0)

    def test_lower_error_than_naive_on_skewed_query(self):
        """With the decisive edge as pivot, the stratified estimator's
        error on a fixed budget beats naive sampling on average."""
        g = UncertainGraph([(0, 1, 0.5), (1, 2, 0.95), (0, 2, 0.95)])
        truth = float(clique_probability(g, [0, 1, 2]))

        def query(world):
            return 1.0 if world.is_clique([0, 1, 2]) else 0.0

        naive_err = strat_err = 0.0
        trials = 30
        for trial in range(trials):
            naive_err += abs(estimate(g, query, samples=60, seed=trial).value - truth)
            strat_err += abs(
                stratified_estimate(
                    g, query, samples=60, pivots=[(0, 1)], seed=trial
                ).value
                - truth
            )
        assert strat_err < naive_err


class TestReliability:
    def test_exact_single_edge(self):
        g = UncertainGraph([(0, 1, 0.3)])
        assert exact_reliability(g, 0, 1) == pytest.approx(0.3)

    def test_exact_two_paths(self):
        g = UncertainGraph([(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.5)])
        # direct edge or the two-hop path: 0.5 + 0.5*0.25 = 0.625
        assert exact_reliability(g, 0, 2) == pytest.approx(0.625)

    def test_same_vertex(self):
        g = UncertainGraph([(0, 1, 0.5)])
        assert exact_reliability(g, 0, 0) == pytest.approx(1.0)

    def test_estimate_matches_exact(self):
        g = random_uncertain_graph(6, 6, 0.5)
        if g.num_edges > 14:
            g = g.subgraph(list(range(5)))
        truth = exact_reliability(g, 0, 1)
        for stratified in (False, True):
            result = reliability(
                g, 0, 1, samples=4000, seed=7, stratified=stratified
            )
            assert result.value == pytest.approx(truth, abs=0.04)

    def test_unknown_vertices(self, triangle_graph):
        with pytest.raises(ParameterError):
            reliability(triangle_graph, 0, 99)
        with pytest.raises(ParameterError):
            exact_reliability(triangle_graph, 99, 0)

    def test_clique_reliability_at_least_clique_probability(self):
        g = random_uncertain_graph(8, 7, 0.7)
        members = [0, 1, 2]
        result = clique_reliability(g, members, samples=4000, seed=0)
        assert result.value >= float(clique_probability(g, members)) - 0.03

    def test_clique_reliability_unknown_vertex(self, triangle_graph):
        with pytest.raises(ParameterError):
            clique_reliability(triangle_graph, [0, 99])
