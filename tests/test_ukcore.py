"""UKCore baseline: Bernoulli tail DP, η-degree, and (k, η)-core peeling."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ParameterError
from repro.baselines import (
    core_community,
    eta_degree,
    k_eta_core,
    k_eta_core_vertices,
    tail_distribution,
)
from repro.uncertain import UncertainGraph
from tests.conftest import random_uncertain_graph


def naive_tail(probs, k):
    """Pr[at least k successes] by full outcome enumeration."""
    import itertools

    total = 0.0
    for outcome in itertools.product([0, 1], repeat=len(probs)):
        if sum(outcome) >= k:
            mass = 1.0
            for bit, p in zip(outcome, probs):
                mass *= p if bit else (1 - p)
            total += mass
    return total


class TestTailDistribution:
    def test_empty(self):
        assert tail_distribution([]) == [1.0]

    def test_single_edge(self):
        tail = tail_distribution([0.3])
        assert tail[0] == pytest.approx(1.0)
        assert tail[1] == pytest.approx(0.3)

    def test_monotone_decreasing(self):
        tail = tail_distribution([0.2, 0.5, 0.9])
        assert all(a >= b - 1e-12 for a, b in zip(tail, tail[1:]))

    @given(st.lists(st.sampled_from([0.1, 0.4, 0.7, 1.0]), min_size=1, max_size=7))
    @settings(max_examples=40, deadline=None)
    def test_matches_enumeration(self, probs):
        tail = tail_distribution(probs)
        for k in range(len(probs) + 1):
            assert tail[k] == pytest.approx(naive_tail(probs, k), abs=1e-10)


class TestEtaDegree:
    def test_certain_edges(self):
        g = UncertainGraph([(0, 1, 1.0), (0, 2, 1.0)])
        assert eta_degree(g, 0, 0.9) == 2

    def test_threshold_behaviour(self):
        g = UncertainGraph([(0, 1, 0.5), (0, 2, 0.5)])
        # Pr[deg >= 1] = 0.75, Pr[deg >= 2] = 0.25.
        assert eta_degree(g, 0, 0.7) == 1
        assert eta_degree(g, 0, 0.2) == 2
        assert eta_degree(g, 0, 0.8) == 0

    def test_eta_validation(self):
        g = UncertainGraph([(0, 1, 0.5)])
        with pytest.raises(ParameterError):
            eta_degree(g, 0, -0.1)


class TestKEtaCore:
    def test_strong_clique_survives(self, two_communities):
        core = k_eta_core(two_communities, 2, 0.5)
        assert set(core.vertices()) == set(range(7))

    def test_weak_pendant_peeled(self):
        g = UncertainGraph(
            [(0, 1, 0.95), (1, 2, 0.95), (0, 2, 0.95), (2, 3, 0.2)]
        )
        core = k_eta_core(g, 2, 0.5)
        assert 3 not in core

    def test_core_condition_holds_internally(self):
        for seed in range(5):
            g = random_uncertain_graph(seed + 40, 14, 0.4)
            core = k_eta_core(g, 2, 0.3)
            work = core
            for v in work.vertices():
                assert eta_degree(work, v, 0.3) >= 2

    def test_negative_k_rejected(self, triangle_graph):
        with pytest.raises(ParameterError):
            k_eta_core_vertices(triangle_graph, -1, 0.5)

    def test_k0_keeps_everything(self, triangle_graph):
        assert k_eta_core_vertices(triangle_graph, 0, 0.5) == {0, 1, 2}


class TestCoreCommunity:
    def test_query_component(self, two_communities):
        community = core_community(two_communities, 0, 2, 0.5)
        assert 0 in community and len(community) >= 4

    def test_peeled_query_gives_empty(self):
        g = UncertainGraph([(0, 1, 0.95), (1, 2, 0.95), (0, 2, 0.95), (2, 3, 0.1)])
        assert core_community(g, 3, 2, 0.5) == frozenset()

    def test_disconnected_components_separated(self):
        g = UncertainGraph()
        for base in (0, 10):
            for i in range(3):
                for j in range(i + 1, 3):
                    g.add_edge(base + i, base + j, 0.9)
        community = core_community(g, 0, 2, 0.5)
        assert community == frozenset({0, 1, 2})
