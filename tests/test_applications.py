"""Case-study applications: Table 2, Fig. 11 and Table 3 behaviours."""

import pytest

from repro.applications import (
    PrecisionReport,
    best_team,
    clique_community,
    community_diameter,
    form_teams,
    predicted_pairs,
    score_clusters,
    search_communities,
    table2_reports,
)
from repro.datasets import (
    generate_collaboration_network,
    generate_knowledge_graph,
    generate_ppi_network,
)
from repro.uncertain import UncertainGraph


@pytest.fixture(scope="module")
def ppi():
    return generate_ppi_network(seed=0)


@pytest.fixture(scope="module")
def kg():
    return generate_knowledge_graph("conceptnet", seed=0)


@pytest.fixture(scope="module")
def collaboration():
    return generate_collaboration_network(seed=0)


class TestPrecisionScoring:
    def test_predicted_pairs(self):
        pairs = predicted_pairs([[1, 2, 3], [3, 4]])
        assert pairs == {(1, 2), (1, 3), (2, 3), (3, 4)}

    def test_precision_computation(self, ppi):
        report = score_clusters("toy", [sorted(ppi.complexes[0])], ppi)
        assert report.false_positive == 0
        assert report.precision == 1.0

    def test_zero_prediction_precision(self, ppi):
        report = score_clusters("empty", [], ppi)
        assert report.precision == 0.0

    def test_report_row_fields(self):
        row = PrecisionReport("x", 1, 3, 1).as_row()
        assert row == {"Algorithm": "x", "#Results": 1, "TP": 3, "FP": 1,
                       "PR": 0.75}


class TestTable2:
    def test_five_methods_reported(self, ppi):
        reports = table2_reports(ppi)
        assert [r.algorithm for r in reports] == [
            "USCAN", "PCluster", "UKCore", "UKTruss", "PMUCE",
        ]

    def test_pmuce_wins_precision(self, ppi):
        """The paper's headline for Table 2: the clique method has the
        best precision, density-based baselines over-merge."""
        reports = {r.algorithm: r for r in table2_reports(ppi)}
        pmuce = reports["PMUCE"]
        assert pmuce.precision > 0.5
        for name in ("USCAN", "UKCore", "UKTruss"):
            assert pmuce.precision > reports[name].precision

    def test_core_and_truss_overmerge(self, ppi):
        reports = {r.algorithm: r for r in table2_reports(ppi)}
        # Density-based subgraphs lump many complexes into few clusters.
        assert reports["UKCore"].num_results < 10
        assert reports["UKCore"].false_positive > reports["PMUCE"].false_positive


class TestCommunitySearch:
    def test_clique_community_contains_query(self, kg):
        community = clique_community(kg.graph, "plant", 4, 0.001)
        assert "plant" in community

    def test_query_without_cliques_gives_empty(self):
        g = UncertainGraph([(0, 1, 0.9)])
        assert clique_community(g, 0, 3, 0.5) == frozenset()

    def test_diameter_helper(self):
        g = UncertainGraph([(0, 1, 1.0), (1, 2, 1.0)])
        assert community_diameter(g, [0, 1, 2]) == 2
        assert community_diameter(g, []) is None

    def test_diameter_disconnected(self):
        g = UncertainGraph([(0, 1, 1.0), (2, 3, 1.0)])
        assert community_diameter(g, [0, 1, 2, 3]) is None

    def test_pmuce_purest_and_smallest(self, kg):
        results = {
            r.method: r
            for r in search_communities(
                kg.graph, "plant", 4, 0.001, kg, "plant"
            )
        }
        pmuce = results["PMUCE"]
        assert pmuce.purity == 1.0
        for other in ("UKCore", "UKTruss"):
            assert pmuce.size <= results[other].size
            assert pmuce.purity >= results[other].purity

    def test_rows_have_expected_columns(self, kg):
        rows = [
            r.as_row()
            for r in search_communities(kg.graph, "plant", 4, 0.001, kg, "plant")
        ]
        for row in rows:
            assert set(row) == {
                "method", "query", "vertices", "edges", "diameter", "purity",
            }


class TestTeamFormation:
    def test_best_team_contains_query_and_planted_members(self, collaboration):
        graph = collaboration.topic_graphs["databases"]
        team = best_team(graph, "anchor-0", 4, 1e-10)
        planted = collaboration.teams["databases"]["anchor-0"]
        assert "anchor-0" in team
        assert len(team & planted) >= len(planted) - 1

    def test_teams_differ_across_topics(self, collaboration):
        db = best_team(
            collaboration.topic_graphs["databases"], "anchor-0", 4, 1e-10
        )
        inet = best_team(
            collaboration.topic_graphs["information networks"],
            "anchor-0", 4, 1e-10,
        )
        assert db != inet

    def test_clique_team_much_smaller_than_core(self, collaboration):
        results = {r.method: r for r in form_teams(collaboration, "databases",
                                                   "anchor-0")}
        assert results["PMUCE"].size < results["UKCore"].size / 5
        assert results["PMUCE"].probability >= 1e-10

    def test_missing_query_yields_empty_team(self, collaboration):
        graph = collaboration.topic_graphs["databases"]
        assert best_team(graph, "author-0", 40, 0.9) == frozenset()
