"""Tests for clique probability (Eq. 2) and the η-clique predicates."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ParameterError
from repro.uncertain import (
    UncertainGraph,
    clique_probability,
    extension_probability,
    is_eta_clique,
    is_maximal_eta_clique,
    is_maximal_k_eta_clique,
)
from tests.conftest import EXACT_PROBABILITIES, random_uncertain_graph


class TestCliqueProbability:
    def test_empty_and_singleton_are_certain(self, triangle_graph):
        assert clique_probability(triangle_graph, []) == 1
        assert clique_probability(triangle_graph, [0]) == 1

    def test_pair_is_edge_probability(self, triangle_graph):
        assert clique_probability(triangle_graph, [0, 1]) == 0.9

    def test_triangle_product(self, triangle_graph):
        assert clique_probability(triangle_graph, [0, 1, 2]) == pytest.approx(0.9**3)

    def test_missing_edge_gives_zero(self):
        g = UncertainGraph([(0, 1, 0.9), (1, 2, 0.9)])
        assert clique_probability(g, [0, 1, 2]) == 0

    def test_duplicates_rejected(self, triangle_graph):
        with pytest.raises(ParameterError):
            clique_probability(triangle_graph, [0, 0, 1])

    def test_exact_fractions(self):
        g = UncertainGraph(
            [(0, 1, Fraction(1, 2)), (1, 2, Fraction(1, 3)), (0, 2, Fraction(3, 4))]
        )
        assert clique_probability(g, [0, 1, 2]) == Fraction(1, 8)

    @given(st.integers(0, 100), st.integers(4, 8))
    @settings(max_examples=40, deadline=None)
    def test_order_invariance_with_fractions(self, seed, n):
        """Eq. 2 is a product: with exact arithmetic, any member order
        gives the identical value."""
        g = random_uncertain_graph(seed, n, 0.7, EXACT_PROBABILITIES)
        members = list(range(n))
        forward = clique_probability(g, members)
        backward = clique_probability(g, list(reversed(members)))
        assert forward == backward


class TestExtensionProbability:
    def test_matches_recomputation(self, triangle_graph):
        base = clique_probability(triangle_graph, [0, 1])
        ext = extension_probability(triangle_graph, base, [0, 1], 2)
        assert ext == pytest.approx(clique_probability(triangle_graph, [0, 1, 2]))

    def test_missing_edge_returns_zero(self):
        g = UncertainGraph([(0, 1, 0.9)])
        g.add_vertex(2)
        assert extension_probability(g, 0.9, [0, 1], 2) == 0


class TestEtaPredicates:
    def test_is_eta_clique_threshold(self, triangle_graph):
        assert is_eta_clique(triangle_graph, [0, 1, 2], 0.7)
        assert not is_eta_clique(triangle_graph, [0, 1, 2], 0.73)

    def test_eta_out_of_range(self, triangle_graph):
        with pytest.raises(ParameterError):
            is_eta_clique(triangle_graph, [0, 1], 1.5)

    def test_exact_boundary_counts(self):
        g = UncertainGraph([(0, 1, Fraction(1, 2))])
        assert is_eta_clique(g, [0, 1], Fraction(1, 2))

    def test_maximal_eta_clique_true(self, triangle_graph):
        assert is_maximal_eta_clique(triangle_graph, [0, 1, 2], 0.5)

    def test_non_maximal_detected(self, triangle_graph):
        # {0, 1} extends to the triangle at eta = 0.5.
        assert not is_maximal_eta_clique(triangle_graph, [0, 1], 0.5)

    def test_maximal_because_extension_drops_probability(self):
        g = UncertainGraph([(0, 1, 0.9), (1, 2, 0.3), (0, 2, 0.3)])
        # {0,1} has 0.9; adding 2 gives 0.9*0.09 < 0.5 -> maximal.
        assert is_maximal_eta_clique(g, [0, 1], 0.5)

    def test_below_threshold_not_maximal(self, triangle_graph):
        assert not is_maximal_eta_clique(triangle_graph, [0, 1, 2], 0.99)

    def test_empty_set_maximality(self):
        g = UncertainGraph()
        g.add_vertex(0)
        # The empty set extends by vertex 0 (singletons have Pr 1).
        assert not is_maximal_eta_clique(g, [], 0.5)

    def test_k_eta_clique_size_filter(self, triangle_graph):
        assert is_maximal_k_eta_clique(triangle_graph, [0, 1, 2], 3, 0.5)
        assert not is_maximal_k_eta_clique(triangle_graph, [0, 1, 2], 4, 0.5)

    def test_k_must_be_positive(self, triangle_graph):
        with pytest.raises(ParameterError):
            is_maximal_k_eta_clique(triangle_graph, [0, 1, 2], 0, 0.5)
