"""Run the doctest examples embedded in the library docstrings."""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro.uncertain.graph",
    "repro.uncertain.clique_probability",
    "repro.uncertain.io",
    "repro.uncertain.maximality",
    "repro.deterministic.graph",
    "repro.deterministic.coloring",
    "repro.reduction.eta_degree",
    "repro.core.api",
    "repro.core.dynamic",
    "repro.core.session",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_module_doctests(name):
    # importlib avoids attribute shadowing (some packages re-export a
    # function under the same name as its defining submodule).
    module = importlib.import_module(name)
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{name} has no doctests"
    assert result.failed == 0
