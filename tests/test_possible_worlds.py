"""Possible-world semantics: Eq. 1, sampling, and the Eq. 2 validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ParameterError
from repro.uncertain import (
    UncertainGraph,
    clique_probability,
    enumerate_worlds,
    estimate_clique_probability,
    exact_maximal_eta_cliques_by_worlds,
    sample_world,
    sample_worlds,
)
from tests.conftest import random_uncertain_graph


class TestEnumerateWorlds:
    def test_counts_and_total_probability(self, triangle_graph):
        worlds = list(enumerate_worlds(triangle_graph))
        assert len(worlds) == 2**3
        assert sum(p for _w, p in worlds) == pytest.approx(1.0)

    def test_world_probability_formula(self):
        g = UncertainGraph([(0, 1, 0.25)])
        worlds = {w.num_edges: p for w, p in enumerate_worlds(g)}
        assert worlds[0] == pytest.approx(0.75)
        assert worlds[1] == pytest.approx(0.25)

    def test_refuses_large_graphs(self):
        g = random_uncertain_graph(0, 10, density=0.9)
        assert g.num_edges > 20
        with pytest.raises(ParameterError):
            list(enumerate_worlds(g))

    def test_worlds_preserve_vertices(self, triangle_graph):
        for world, _p in enumerate_worlds(triangle_graph):
            assert world.num_vertices == 3

    @given(st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_eq2_matches_world_sum(self, seed):
        """Definition 1 (sum over worlds) equals Eq. 2 (edge product)."""
        g = random_uncertain_graph(seed, 5, density=0.6)
        if g.num_edges > 10:
            return
        members = [0, 1, 2]
        by_worlds = sum(
            p for w, p in enumerate_worlds(g) if w.is_clique(members)
        )
        assert by_worlds == pytest.approx(
            clique_probability(g, members), abs=1e-12
        )


class TestSampling:
    def test_sample_worlds_deterministic_by_seed(self, triangle_graph):
        a = [w.num_edges for w in sample_worlds(triangle_graph, 10, seed=3)]
        b = [w.num_edges for w in sample_worlds(triangle_graph, 10, seed=3)]
        assert a == b

    def test_sample_worlds_count(self, triangle_graph):
        assert len(list(sample_worlds(triangle_graph, 7))) == 7

    def test_negative_count_rejected(self, triangle_graph):
        with pytest.raises(ParameterError):
            list(sample_worlds(triangle_graph, -1))

    def test_certain_edges_always_sampled(self):
        import random

        g = UncertainGraph([(0, 1, 1.0)])
        world = sample_world(g, random.Random(0))
        assert world.has_edge(0, 1)

    def test_monte_carlo_estimate_close(self, triangle_graph):
        estimate = estimate_clique_probability(
            triangle_graph, [0, 1, 2], samples=20000, seed=1
        )
        assert estimate == pytest.approx(0.9**3, abs=0.02)

    def test_estimate_zero_for_non_clique(self):
        g = UncertainGraph([(0, 1, 0.9)])
        g.add_vertex(2)
        assert estimate_clique_probability(g, [0, 1, 2], samples=10) == 0.0

    def test_estimate_requires_positive_samples(self, triangle_graph):
        with pytest.raises(ParameterError):
            estimate_clique_probability(triangle_graph, [0, 1], samples=0)


class TestOracle:
    def test_oracle_on_triangle(self, triangle_graph):
        result = exact_maximal_eta_cliques_by_worlds(triangle_graph, 3, 0.5)
        assert result == [frozenset({0, 1, 2})]

    def test_oracle_respects_k(self, triangle_graph):
        assert exact_maximal_eta_cliques_by_worlds(triangle_graph, 4, 0.5) == []

    def test_oracle_splits_below_threshold(self, triangle_graph):
        # At eta = 0.85 only pairs survive; all three are maximal.
        result = exact_maximal_eta_cliques_by_worlds(triangle_graph, 2, 0.85)
        assert result == [
            frozenset({0, 1}),
            frozenset({0, 2}),
            frozenset({1, 2}),
        ]

    def test_oracle_vertex_limit(self):
        g = random_uncertain_graph(0, 13, density=0.1)
        with pytest.raises(ParameterError):
            exact_maximal_eta_cliques_by_worlds(g, 1, 0.5)
