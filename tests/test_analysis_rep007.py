"""REP007 — engine sanitizer-hook coverage.

With one recursion left (the engine driver), the old backend-parity
tests become coverage tests: the committed engine must call every
sanitizer hook the runtime checks depend on, and neutralizing the hook
calls in ``repro.engine.driver`` must make the rule fire and name the
missing hook.
"""

from pathlib import Path

from repro.analysis.fingerprint import hook_labels
from repro.analysis.registry import get_rule
from repro.analysis.rules.conformance import find_engine_anchors
from repro.analysis.rules.sanitizer import DRIVER_HOOKS, RECURSION_HOOKS
from repro.analysis.runner import run_rules
from repro.analysis.source import SourceFile

REPO = Path(__file__).resolve().parents[1]
ENGINE_DRIVER = REPO / "src" / "repro" / "engine" / "driver.py"
DICT_BACKEND = REPO / "src" / "repro" / "core" / "pmuc.py"


def _rep007_findings(driver_text):
    src = SourceFile(str(ENGINE_DRIVER), driver_text)
    kept, _suppressed = run_rules([src], [get_rule("REP007")])
    return kept


def _neutralize(text, fragment, count=1):
    """Replace every line containing ``fragment`` with ``pass``.

    Keeping the indentation (and a ``pass`` statement) preserves the
    surrounding ``if san is not None:`` guard's syntax, so the mutant
    still parses — the hook call alone disappears.  ``count`` asserts
    how many sites the fragment was expected to hit, so a refactor
    that changes the site count breaks the test loudly instead of
    silently weakening it.
    """
    lines = text.splitlines(keepends=True)
    hits = [i for i, ln in enumerate(lines) if fragment in ln]
    assert len(hits) == count, f"expected {count} line(s) with {fragment!r}"
    for i in hits:
        indent = lines[i][: len(lines[i]) - len(lines[i].lstrip())]
        lines[i] = f"{indent}pass\n"
    return "".join(lines)


# ----------------------------------------------------------------------
# the committed engine
# ----------------------------------------------------------------------
def test_committed_engine_covers_every_required_hook():
    src = SourceFile.read(str(ENGINE_DRIVER))
    recursion, driver = find_engine_anchors(src)
    assert recursion is not None, "engine recursion anchor missing"
    assert driver is not None, "engine run-lifecycle anchor missing"
    rec_labels = set(hook_labels(recursion, hook_root="san"))
    drv_labels = set(hook_labels(driver, hook_root="san"))
    # "No hooks anywhere" must not be able to pass silently.
    assert rec_labels >= set(RECURSION_HOOKS), rec_labels
    assert drv_labels >= set(DRIVER_HOOKS), drv_labels


def test_rep007_silent_on_the_committed_engine():
    assert _rep007_findings(ENGINE_DRIVER.read_text()) == []


# ----------------------------------------------------------------------
# deleting a hook call in the engine fails the rule
# ----------------------------------------------------------------------
def test_rep007_fires_when_the_cover_hook_is_dropped():
    mutant = _neutralize(
        ENGINE_DRIVER.read_text(),
        "san.on_cover(depth, r, unexpanded, periphery)",
    )
    found = _rep007_findings(mutant)
    assert len(found) == 1
    assert found[0].rule == "REP007"
    assert "on_cover" in found[0].message
    assert "recursion" in found[0].message
    assert found[0].path == str(ENGINE_DRIVER)


def test_rep007_fires_when_every_node_hook_is_dropped():
    # The recursion has two on_node sites (the entry and the inlined
    # no-candidate leaf); coverage is only lost when both go.
    text = ENGINE_DRIVER.read_text()
    mutant = _neutralize(text, "san.on_node(depth)")
    mutant = _neutralize(mutant, "san.on_node(depth1)")
    found = _rep007_findings(mutant)
    assert len(found) == 1
    assert "hook:on_node" in found[0].message


def test_rep007_fires_when_the_driver_drops_the_context_hook():
    mutant = _neutralize(
        ENGINE_DRIVER.read_text(), "san.on_context(color, edges)"
    )
    found = _rep007_findings(mutant)
    assert len(found) == 1
    assert "on_context" in found[0].message
    assert "run lifecycle" in found[0].message


def test_rep007_fires_when_the_driver_drops_the_finish_hook():
    mutant = _neutralize(
        ENGINE_DRIVER.read_text(), "san.on_finish(complete)"
    )
    found = _rep007_findings(mutant)
    assert len(found) == 1
    assert "on_finish" in found[0].message


# ----------------------------------------------------------------------
# files without the engine anchors keep the rule silent
# ----------------------------------------------------------------------
def test_rep007_silent_on_files_without_engine_anchors():
    src = SourceFile.read(str(DICT_BACKEND))
    kept, _ = run_rules([src], [get_rule("REP007")])
    assert kept == []
