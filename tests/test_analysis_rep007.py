"""REP007 — sanitizer hook parity between the enumeration backends.

Mirrors the REP005 self-scan tests one level up: the committed backend
pair must carry identical, non-empty hook fingerprints, and
neutralizing a single hook call in either recursion must make the rule
fire and name the drifting hook.
"""

import os
from pathlib import Path

from repro.analysis.fingerprint import hook_fingerprint_function, labels
from repro.analysis.registry import get_rule
from repro.analysis.rules.mirror import find_mirror_anchors
from repro.analysis.runner import parse_files, run_rules
from repro.analysis.source import SourceFile

REPO = Path(__file__).resolve().parents[1]
DICT_BACKEND = REPO / "src" / "repro" / "core" / "pmuc.py"
KERNEL_BACKEND = REPO / "src" / "repro" / "kernel" / "enumerate.py"


def _rep007_findings(dict_text, kernel_text):
    files = [
        SourceFile(str(DICT_BACKEND), dict_text),
        SourceFile(str(KERNEL_BACKEND), kernel_text),
    ]
    kept, _suppressed = run_rules(files, [get_rule("REP007")])
    return kept


def _neutralize(text, fragment):
    """Replace the single line containing ``fragment`` with ``pass``.

    Keeping the indentation (and a ``pass`` statement) preserves the
    surrounding ``if san is not None:`` guard's syntax, so the mutant
    still parses — the hook call alone disappears.
    """
    lines = text.splitlines(keepends=True)
    hits = [i for i, ln in enumerate(lines) if fragment in ln]
    assert len(hits) == 1, f"expected exactly one line with {fragment!r}"
    i = hits[0]
    indent = lines[i][: len(lines[i]) - len(lines[i].lstrip())]
    lines[i] = f"{indent}pass\n"
    return "".join(lines)


# ----------------------------------------------------------------------
# the committed pair
# ----------------------------------------------------------------------
def test_committed_hook_fingerprints_match_and_are_nontrivial():
    files = parse_files([str(DICT_BACKEND), str(KERNEL_BACKEND)])
    (_, dict_func), (_, kernel_func) = find_mirror_anchors(files)
    dict_seq = labels(hook_fingerprint_function(dict_func))
    kernel_seq = labels(hook_fingerprint_function(kernel_func))
    assert dict_seq == kernel_seq
    # "No hooks anywhere" must not be able to pass silently: the
    # committed recursions call all three recursion hooks.
    for expected in ("hook:on_node", "hook:on_emit", "hook:on_cover"):
        assert expected in dict_seq, dict_seq


def test_rep007_silent_on_the_committed_pair():
    assert (
        _rep007_findings(
            DICT_BACKEND.read_text(), KERNEL_BACKEND.read_text()
        )
        == []
    )


# ----------------------------------------------------------------------
# hook drift fires, in either direction
# ----------------------------------------------------------------------
def test_rep007_fires_when_the_kernel_drops_the_cover_hook():
    mutant = _neutralize(
        KERNEL_BACKEND.read_text(),
        "san.on_cover(depth, r, unexpanded, periphery)",
    )
    found = _rep007_findings(DICT_BACKEND.read_text(), mutant)
    assert len(found) == 1
    assert found[0].rule == "REP007"
    assert "sanitizer hook drift" in found[0].message
    assert "on_cover" in found[0].message
    assert found[0].path == str(KERNEL_BACKEND)


def test_rep007_fires_when_the_dict_side_drops_the_node_hook():
    mutant = _neutralize(DICT_BACKEND.read_text(), "san.on_node(depth)")
    found = _rep007_findings(mutant, KERNEL_BACKEND.read_text())
    assert len(found) == 1
    assert "on_node" in found[0].message


def test_rep007_fires_when_the_kernel_drops_the_main_emit_hook():
    # The kernel has two on_emit sites (the main one and the inlined
    # no-candidate leaf); dropping only the main one is still drift.
    mutant = _neutralize(
        KERNEL_BACKEND.read_text(), "san.on_emit(r, nlq, True)"
    )
    found = _rep007_findings(DICT_BACKEND.read_text(), mutant)
    assert len(found) == 1
    assert "on_emit" in found[0].message


# ----------------------------------------------------------------------
# missing anchors keep the rule silent (scan-set safety, as REP005)
# ----------------------------------------------------------------------
def test_rep007_silent_when_an_anchor_is_missing():
    files = [SourceFile(str(DICT_BACKEND), DICT_BACKEND.read_text())]
    kept, _ = run_rules(files, [get_rule("REP007")])
    assert kept == []


def test_rep007_names_both_anchor_paths_in_its_message():
    mutant = _neutralize(DICT_BACKEND.read_text(), "san.on_node(depth)")
    found = _rep007_findings(mutant, KERNEL_BACKEND.read_text())
    message = found[0].message
    assert os.path.join("core", "pmuc.py") in message
    assert os.path.join("kernel", "enumerate.py") in message
