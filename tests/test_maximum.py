"""Maximum (k, η)-clique search and top-r queries."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ParameterError
from repro.core import (
    SearchStats,
    enumerate_maximal_cliques,
    maximum_k_eta_clique,
    top_r_maximal_cliques,
)
from repro.datasets import figure1_graph, load_dataset
from repro.uncertain import UncertainGraph, clique_probability
from tests.conftest import random_uncertain_graph


def maximum_by_enumeration(graph, k, eta):
    cliques = enumerate_maximal_cliques(graph, k, eta, "pmuc+").cliques
    return max((len(c) for c in cliques), default=0)


class TestMaximumClique:
    def test_figure1(self):
        g = figure1_graph()
        best = maximum_k_eta_clique(g, 1, 0.53)
        assert best == frozenset({4, 5, 6, 7, 8})

    def test_none_when_no_clique(self, triangle_graph):
        assert maximum_k_eta_clique(triangle_graph, 4, 0.5) is None

    def test_k1_isolated_vertex(self):
        g = UncertainGraph()
        g.add_vertex("solo")
        assert maximum_k_eta_clique(g, 1, 0.5) == frozenset({"solo"})

    def test_empty_graph(self):
        assert maximum_k_eta_clique(UncertainGraph(), 1, 0.5) is None

    def test_parameter_validation(self, triangle_graph):
        with pytest.raises(ParameterError):
            maximum_k_eta_clique(triangle_graph, 0, 0.5)
        with pytest.raises(ParameterError):
            maximum_k_eta_clique(triangle_graph, 1, 0)

    @given(st.integers(0, 200), st.integers(4, 10))
    @settings(max_examples=50, deadline=None)
    def test_size_matches_enumeration(self, seed, n):
        g = random_uncertain_graph(seed, n, 0.55)
        for k, eta in ((1, 0.3), (2, 0.5), (3, 0.1)):
            best = maximum_k_eta_clique(g, k, eta)
            expected = maximum_by_enumeration(g, k, eta)
            if best is None:
                assert expected == 0
            else:
                assert len(best) == expected
                assert clique_probability(g, best) >= eta

    def test_prunes_versus_enumeration(self):
        g = load_dataset("soflow")
        stats = SearchStats()
        best = maximum_k_eta_clique(g, 4, 0.1, stats)
        full = enumerate_maximal_cliques(
            g, 4, 0.1, "pmuc+", on_clique=lambda c: None
        )
        assert best is not None
        assert stats.calls < full.stats.calls / 3


class TestTopR:
    def test_ranked_by_size_then_probability(self, two_communities):
        ranked = top_r_maximal_cliques(two_communities, 2, 0.5, r=3)
        sizes = [len(c) for c, _p in ranked]
        assert sizes == sorted(sizes, reverse=True)
        for clique, prob in ranked:
            assert prob == clique_probability(two_communities, clique)

    def test_r_bounds_output(self, two_communities):
        assert len(top_r_maximal_cliques(two_communities, 2, 0.5, r=1)) == 1

    def test_fewer_cliques_than_r(self, triangle_graph):
        ranked = top_r_maximal_cliques(triangle_graph, 3, 0.5, r=10)
        assert len(ranked) == 1

    def test_r_validation(self, triangle_graph):
        with pytest.raises(ParameterError):
            top_r_maximal_cliques(triangle_graph, 1, 0.5, r=0)

    def test_top1_matches_maximum_size(self):
        g = random_uncertain_graph(9, 12, 0.6)
        ranked = top_r_maximal_cliques(g, 1, 0.3, r=1)
        best = maximum_k_eta_clique(g, 1, 0.3)
        assert len(ranked[0][0]) == len(best)
