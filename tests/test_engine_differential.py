"""Differential property test: both backends through the one engine.

With the recursion unified in :mod:`repro.engine.driver`, backend
parity is more than equal clique sets — the two ``StateOps``
implementations must drive the *same search tree*.  These tests record
the full sanitizer and observer hook streams the engine fires and
require them to be identical event-for-event across backends, on
randomized small graphs over varying ``k``, ``eta``, orderings and
pivot strategies.  An exact-:class:`~fractions.Fraction` ground truth
pins both backends to the brute-force oracle (and documents the
kernel's silent fall-back to the dict path on non-float inputs).

Payloads that intentionally live in backend-local spaces are excluded
from the comparison: the threaded ``q`` value (probability vs summed
negative logs), the ``on_context`` payload (labels vs rank ids), and
the live path list passed to ``obs.on_node``.  ``on_reduced`` is
compared as a set — both backends report original vertex labels, in
their own iteration order.
"""

import random
from fractions import Fraction

import pytest

from repro.core import PivotConfig, PivotEnumerator
from repro.kernel.enumerate import supports
from repro.uncertain import UncertainGraph
from tests.conftest import (
    EXACT_PROBABILITIES,
    as_sorted_sets,
    brute_force_maximal_k_eta_cliques,
    random_uncertain_graph,
)


class RecordingObserver:
    """Observer stand-in: appends one tuple per engine hook call."""

    def __init__(self):
        self.events = []

    def set_labels(self, labels):
        # Kernel wiring (id -> label table), not an engine event.
        pass

    def on_gauge(self, name, value):
        self.events.append(("gauge", name, value))

    def on_node(self, depth, r):
        # ``r`` is the live path list in backend-local vertex space;
        # only the tree shape is comparable.
        self.events.append(("node", depth))

    def on_emit(self, depth, size):
        self.events.append(("emit", depth, size))

    def on_expand(self, depth):
        self.events.append(("expand", depth))

    def on_prune(self, kind, depth, *detail):
        self.events.append(("prune", kind, depth) + detail)

    def on_phase(self, name, seconds):
        # Wall time is not comparable; the phase sequence is.
        self.events.append(("phase", name))

    def on_root(self, index, total, candidates):
        # ``candidates`` is the root frontier in backend-local form;
        # only the seed position and total are comparable.
        self.events.append(("root", index, total))

    def on_finish(self, stats):
        self.events.append(("finish",))


class RecordingSanitizer:
    """Sanitizer stand-in: records hook payloads in label space.

    The kernel backend wraps this in
    :class:`repro.sanitize.sanitizer.IdSanitizer`, which translates
    rank ids back to original labels before forwarding — so ``r``,
    ``unexpanded`` and ``periphery`` arrive comparable across backends.
    """

    def __init__(self):
        self.events = []

    def on_reduced(self, vertices):
        self.events.append(("reduced", frozenset(vertices)))

    def on_context(self, color, edges):
        # Payload lives in backend-local vertex space (labels vs rank
        # ids); only the event itself is comparable.
        self.events.append(("context",))

    def on_node(self, depth):
        self.events.append(("node", depth))

    def on_emit(self, r, value, log_domain):
        # ``value`` is the threaded q in the backend's numeric domain
        # (plain probability vs summed -log); only the clique compares.
        self.events.append(("emit", tuple(r)))

    def on_cover(self, depth, r, unexpanded, periphery):
        self.events.append(
            (
                "cover",
                depth,
                tuple(r),
                tuple(unexpanded),
                frozenset(periphery),
            )
        )

    def on_finish(self, complete):
        self.events.append(("finish", complete))


def run_recorded(graph, k, eta, config, monkeypatch, seeds=None):
    """One enumeration with recording hooks swapped into the engine."""
    import repro.obs.observer as observer_mod
    import repro.sanitize.sanitizer as sanitizer_mod

    obs = RecordingObserver()
    san = RecordingSanitizer()
    with monkeypatch.context() as m:
        # The engine imports both builders lazily inside run(), so the
        # module attributes are the single seam for every backend.
        m.setattr(observer_mod, "build_observer", lambda *a, **kw: obs)
        m.setattr(sanitizer_mod, "build_sanitizer", lambda *a, **kw: san)
        enumerator = PivotEnumerator(graph, k, eta, config)
        result = enumerator.run(seeds)
    return result, obs.events, san.events, enumerator.backend_used


def _random_case(seed):
    """Deterministic (graph, k, eta, config axes) for one seed."""
    rng = random.Random(9000 + seed)
    graph = random_uncertain_graph(
        seed=seed,
        n=rng.randint(6, 10),
        density=rng.choice((0.4, 0.55, 0.7)),
    )
    k = rng.randint(1, 4)
    eta = rng.choice((0.15, 0.3, 0.55))
    axes = dict(
        ordering=rng.choice(("as-is", "degeneracy", "topk-core")),
        pivot=rng.choice(("first", "degree", "color", "hybrid")),
        mpivot=rng.choice(("off", "basic", "improved")),
        kpivot=rng.choice(("off", "plain", "color")),
        reduction=rng.choice(("off", "core", "triangle")),
    )
    return graph, k, eta, axes


@pytest.mark.parametrize("seed", range(14))
def test_backends_drive_identical_search_trees(seed, monkeypatch):
    graph, k, eta, axes = _random_case(seed)
    assert supports(graph, eta)
    d_result, d_obs, d_san, d_used = run_recorded(
        graph, k, eta, PivotConfig(backend="dict", **axes), monkeypatch
    )
    k_result, k_obs, k_san, k_used = run_recorded(
        graph, k, eta, PivotConfig(backend="kernel", **axes), monkeypatch
    )
    # Guard against the comparison going vacuous through a silent
    # kernel fallback: both backends must actually have executed.
    assert d_used == "dict"
    assert k_used == "kernel"
    assert as_sorted_sets(d_result.cliques) == as_sorted_sets(
        k_result.cliques
    )
    assert d_result.stats.__dict__ == k_result.stats.__dict__
    assert d_obs == k_obs
    assert d_san == k_san
    # The streams are real: complete runs close both hook channels,
    # and any emitted clique implies the recursion actually ran.
    assert ("finish", True) in d_san
    assert any(event[0] == "gauge" for event in d_obs)
    if d_result.cliques:
        assert any(event[0] == "node" for event in d_obs)


@pytest.mark.parametrize("seed", (2, 5, 11))
def test_seed_restricted_runs_agree_event_for_event(seed, monkeypatch):
    # The partition/parallel drivers route per-seed slices through the
    # same engine; the hook streams must stay identical there too.
    graph, k, eta, axes = _random_case(seed)
    roots = sorted(graph.vertices())[:: 2]
    d_result, d_obs, d_san, d_used = run_recorded(
        graph, k, eta, PivotConfig(backend="dict", **axes), monkeypatch,
        seeds=roots,
    )
    k_result, k_obs, k_san, k_used = run_recorded(
        graph, k, eta, PivotConfig(backend="kernel", **axes), monkeypatch,
        seeds=roots,
    )
    assert d_used == "dict" and k_used == "kernel"
    assert as_sorted_sets(d_result.cliques) == as_sorted_sets(
        k_result.cliques
    )
    assert d_obs == k_obs
    assert d_san == k_san
    # A seed-restricted run is reported incomplete to the sanitizer.
    assert ("finish", False) in d_san


def test_event_streams_are_deterministic_across_repeat_runs(monkeypatch):
    graph, k, eta, axes = _random_case(3)
    first = run_recorded(
        graph, k, eta, PivotConfig(backend="kernel", **axes), monkeypatch
    )
    second = run_recorded(
        graph, k, eta, PivotConfig(backend="kernel", **axes), monkeypatch
    )
    assert first[1] == second[1]
    assert first[2] == second[2]


@pytest.mark.parametrize("seed", range(6))
def test_exact_fraction_ground_truth_on_both_backends(seed, monkeypatch):
    """Exact-arithmetic oracle: no float noise can hide a logic bug.

    Fraction inputs are outside the kernel's float domain, so the
    ``backend="kernel"`` run documents the silent dict fallback while
    still matching the brute-force result.
    """
    rng = random.Random(500 + seed)
    graph = UncertainGraph()
    n = rng.randint(5, 8)
    for v in range(n):
        graph.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.55:
                graph.add_edge(u, v, rng.choice(EXACT_PROBABILITIES))
    k = rng.randint(1, 3)
    eta = Fraction(rng.choice((1, 2, 5, 9)), 10)
    assert not supports(graph, eta)
    oracle = brute_force_maximal_k_eta_cliques(graph, k, eta)
    streams = []
    for backend in ("dict", "kernel"):
        result, obs_events, san_events, used = run_recorded(
            graph, k, eta, PivotConfig(backend=backend), monkeypatch
        )
        assert used == "dict"
        assert as_sorted_sets(result.cliques) == oracle
        streams.append((obs_events, san_events))
    # Both runs executed the same (dict) path: identical streams.
    assert streams[0] == streams[1]


# ----------------------------------------------------------------------
# compiled-variant matrix
# ----------------------------------------------------------------------
def run_variant_cell(graph, k, eta, config, monkeypatch):
    """One run with recorders injected only for the *enabled* hooks.

    Unlike :func:`run_recorded` (which always injects), disabled hook
    channels keep their real builders, which return None for an "off"
    config — so hook-off cells genuinely execute the production
    variants.
    """
    import repro.obs.observer as observer_mod
    import repro.sanitize.sanitizer as sanitizer_mod

    obs = RecordingObserver() if config.obs != "off" else None
    san = RecordingSanitizer() if config.sanitize != "off" else None
    with monkeypatch.context() as m:
        if obs is not None:
            m.setattr(observer_mod, "build_observer", lambda *a, **kw: obs)
        if san is not None:
            m.setattr(
                sanitizer_mod, "build_sanitizer", lambda *a, **kw: san
            )
        enumerator = PivotEnumerator(graph, k, eta, config)
        result = enumerator.run()
    return (
        result,
        obs.events if obs is not None else None,
        san.events if san is not None else None,
        enumerator,
    )


@pytest.mark.parametrize("kpivot", ("off", "plain", "color"))
@pytest.mark.parametrize(
    "sanitize,obs",
    (("off", "off"), ("full", "off"), ("off", "full"), ("full", "full")),
)
def test_variant_matrix_agrees_with_oracle(
    kpivot, sanitize, obs, monkeypatch
):
    """Every dispatcher cell: oracle cliques + cross-backend streams.

    The specializer must be invisible: whichever compiled variant a
    (backend, sanitize, obs, kpivot) cell selects, the clique set
    matches the brute-force oracle and both backends' hook streams
    stay identical event for event where hooks are enabled.
    """
    graph = random_uncertain_graph(seed=77, n=9, density=0.55)
    k, eta = 2, 0.2
    assert supports(graph, eta)
    oracle = brute_force_maximal_k_eta_cliques(graph, k, eta)
    hooks_on = sanitize != "off" or obs != "off"
    cells = {}
    for backend in ("dict", "kernel"):
        config = PivotConfig(
            backend=backend, sanitize=sanitize, obs=obs, kpivot=kpivot
        )
        result, obs_events, san_events, enumerator = run_variant_cell(
            graph, k, eta, config, monkeypatch
        )
        assert enumerator.backend_used == backend
        assert as_sorted_sets(result.cliques) == oracle
        if hooks_on:
            # Hooks force the generic shape on either backend.
            assert enumerator.variant_used == "generic+hooks"
        else:
            assert enumerator.variant_used == (
                "bitset" if backend == "kernel" else "generic"
            )
        cells[backend] = (result, obs_events, san_events)
    d_result, d_obs, d_san = cells["dict"]
    k_result, k_obs, k_san = cells["kernel"]
    assert d_result.stats.__dict__ == k_result.stats.__dict__
    assert d_obs == k_obs
    assert d_san == k_san
    if obs != "off":
        assert any(event[0] == "node" for event in d_obs)
    if sanitize != "off":
        assert ("finish", True) in d_san


def test_wide_scan_variant_on_large_search_graphs():
    """Past ~512 search vertices the kernel asks for the wide variant."""
    graph = UncertainGraph()
    n = 540
    for v in range(n):
        graph.add_vertex(v)
    for v in range(n):
        graph.add_edge(v, (v + 1) % n, 0.9)
    results = {}
    for backend in ("dict", "kernel"):
        config = PivotConfig(backend=backend, reduction="off")
        enumerator = PivotEnumerator(graph, k=1, eta=0.5, config=config)
        results[backend] = enumerator.run()
        assert enumerator.backend_used == backend
        if backend == "kernel":
            assert enumerator.variant_used == "bitset+wide"
    assert as_sorted_sets(results["dict"].cliques) == as_sorted_sets(
        results["kernel"].cliques
    )
    assert results["dict"].stats.outputs == n


def test_recursion_limit_restored_when_build_search_raises(monkeypatch):
    """The raise-limit/restore pair survives a failing specializer."""
    import repro.engine.driver as driver

    graph, k, eta, axes = _random_case(1)
    calls = []

    def boom(*args, **kwargs):
        raise RuntimeError("specializer exploded")

    with monkeypatch.context() as m:
        m.setattr(driver.sys, "getrecursionlimit", lambda: 50)
        m.setattr(driver.sys, "setrecursionlimit", calls.append)
        m.setattr(driver, "build_search", boom)
        with pytest.raises(RuntimeError, match="specializer exploded"):
            PivotEnumerator(
                graph, k, eta, PivotConfig(backend="dict", **axes)
            ).run()
    # Raised once for the run, restored exactly once by the finally.
    assert len(calls) == 2
    assert calls[0] > 50
    assert calls[1] == 50
