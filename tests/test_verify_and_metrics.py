"""The result verifier and the extended clustering metrics."""

import pytest

from repro.applications import complex_recovery, score_clusters
from repro.core import enumerate_maximal_cliques, verify_enumeration
from repro.datasets import generate_ppi_network
from repro.uncertain import UncertainGraph
from tests.conftest import random_uncertain_graph


@pytest.fixture(scope="module")
def ppi():
    return generate_ppi_network(seed=0)


class TestVerifier:
    def test_accepts_correct_output(self):
        g = random_uncertain_graph(4, 12, 0.5)
        result = enumerate_maximal_cliques(g, 2, 0.4)
        report = verify_enumeration(g, 2, 0.4, result.cliques)
        assert report.ok
        assert report.summary().startswith("OK")
        assert report.checked == len(result.cliques)

    def test_detects_below_eta(self, triangle_graph):
        report = verify_enumeration(triangle_graph, 3, 0.99, [[0, 1, 2]])
        assert not report.ok
        assert report.not_eta_cliques == [frozenset({0, 1, 2})]

    def test_detects_too_small(self, triangle_graph):
        report = verify_enumeration(triangle_graph, 4, 0.5, [[0, 1, 2]])
        assert report.too_small == [frozenset({0, 1, 2})]

    def test_detects_non_maximal(self, triangle_graph):
        report = verify_enumeration(triangle_graph, 2, 0.5, [[0, 1]])
        assert report.not_maximal == [frozenset({0, 1})]
        assert "non-maximal" in report.summary()

    def test_detects_duplicates(self, triangle_graph):
        report = verify_enumeration(
            triangle_graph, 3, 0.5, [[0, 1, 2], [2, 1, 0]]
        )
        assert report.duplicates == [frozenset({0, 1, 2})]

    def test_detects_nested_pairs(self):
        g = UncertainGraph([(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (2, 3, 0.9)])
        report = verify_enumeration(g, 2, 0.5, [[0, 1], [0, 1, 2]])
        assert report.nested == [(frozenset({0, 1}), frozenset({0, 1, 2}))]

    def test_cross_check_finds_missing(self, two_communities):
        full = enumerate_maximal_cliques(two_communities, 3, 0.5).cliques
        report = verify_enumeration(
            two_communities, 3, 0.5, full[:1], cross_check="muc"
        )
        assert report.missing and not report.spurious
        assert not report.ok

    def test_cross_check_clean(self, two_communities):
        full = enumerate_maximal_cliques(two_communities, 3, 0.5).cliques
        report = verify_enumeration(
            two_communities, 3, 0.5, full, cross_check="muc"
        )
        assert report.ok and report.missing == [] and report.spurious == []


class TestExtendedMetrics:
    def test_recall_and_f1(self, ppi):
        perfect = [sorted(c) for c in ppi.complexes]
        report = score_clusters("oracle", perfect, ppi)
        assert report.recall == 1.0
        assert report.f1 == 1.0
        assert report.as_extended_row()["Recall"] == 1.0

    def test_partial_recall(self, ppi):
        half = [sorted(c) for c in ppi.complexes[: len(ppi.complexes) // 2]]
        report = score_clusters("half", half, ppi)
        assert 0 < report.recall < 1
        assert 0 < report.f1 < 1

    def test_zero_denominators(self):
        from repro.applications import PrecisionReport

        empty = PrecisionReport("x", 0, 0, 0, 0)
        assert empty.recall == 0.0 and empty.f1 == 0.0

    def test_complex_recovery_perfect(self, ppi):
        perfect = [set(c) for c in ppi.complexes]
        assert complex_recovery(perfect, ppi) == 1.0

    def test_complex_recovery_partial_overlap(self, ppi):
        # Clusters missing one member still pass at overlap = 0.5.
        clipped = [sorted(c)[:-1] for c in ppi.complexes]
        rate = complex_recovery(clipped, ppi, overlap=0.5)
        assert rate == 1.0
        strict = complex_recovery(clipped, ppi, overlap=0.95)
        assert strict < 1.0

    def test_complex_recovery_validation(self, ppi):
        with pytest.raises(ValueError):
            complex_recovery([], ppi, overlap=0)

    def test_cliques_recover_most_complexes(self, ppi):
        from repro.applications import ppi_cluster_with_cliques

        clusters = ppi_cluster_with_cliques(ppi.graph, 5, 0.1)
        assert complex_recovery(clusters, ppi, overlap=0.4) > 0.6
