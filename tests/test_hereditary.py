"""The general pivot framework (Algorithm 2) over hereditary properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ParameterError
from repro.deterministic import Graph, maximal_cliques
from repro.hereditary import (
    BoundedDegreeProperty,
    CliqueProperty,
    EtaCliqueProperty,
    IndependentSetProperty,
    KPlexProperty,
    enumerate_maximal_sets,
    maximal_sets_naive,
)
from tests.conftest import (
    as_sorted_sets,
    random_deterministic_graph,
    random_uncertain_graph,
)


class TestProperties:
    def test_clique_property_holds(self):
        g = Graph([(0, 1), (1, 2), (0, 2)])
        prop = CliqueProperty(g)
        assert prop.holds([0, 1, 2])
        assert not prop.holds([0, 1, 3]) if 3 in g else True

    def test_independent_set_property(self):
        g = Graph([(0, 1), (2, 3)])
        prop = IndependentSetProperty(g)
        assert prop.holds([0, 2])
        assert not prop.holds([0, 1])

    def test_eta_clique_property(self, triangle_graph):
        prop = EtaCliqueProperty(triangle_graph, 0.5)
        assert prop.holds([0, 1, 2])
        assert not EtaCliqueProperty(triangle_graph, 0.99).holds([0, 1, 2])

    def test_eta_clique_property_validates_eta(self, triangle_graph):
        with pytest.raises(ParameterError):
            EtaCliqueProperty(triangle_graph, 0)

    def test_bounded_degree_property(self):
        g = Graph([(0, 1), (1, 2), (0, 2)])
        prop = BoundedDegreeProperty(g, 1)
        assert prop.holds([0, 1])          # a single edge: degrees 1
        assert not prop.holds([0, 1, 2])   # triangle: degrees 2

    def test_bounded_degree_validates(self):
        with pytest.raises(ParameterError):
            BoundedDegreeProperty(Graph(), -1)

    def test_heredity_spot_check(self):
        """Every property instance is hereditary: subsets of holding
        sets hold."""
        det = random_deterministic_graph(0, 8, 0.5)
        ug = random_uncertain_graph(0, 8, 0.5)
        props = [
            CliqueProperty(det),
            IndependentSetProperty(det),
            EtaCliqueProperty(ug, 0.3),
            BoundedDegreeProperty(det, 2),
        ]
        for prop in props:
            for full in maximal_sets_naive(prop):
                members = sorted(full, key=repr)
                for drop in members:
                    subset = [v for v in members if v != drop]
                    assert prop.holds(subset)


class TestFramework:
    @given(st.integers(0, 60), st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_matches_naive_for_cliques(self, seed, n):
        g = random_deterministic_graph(seed, n, 0.5)
        prop = CliqueProperty(g)
        expected = maximal_sets_naive(prop)
        got = as_sorted_sets(enumerate_maximal_sets(prop).cliques)
        assert got == expected

    @given(st.integers(0, 60), st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_matches_naive_for_independent_sets(self, seed, n):
        g = random_deterministic_graph(seed, n, 0.5)
        prop = IndependentSetProperty(g)
        expected = maximal_sets_naive(prop)
        got = as_sorted_sets(enumerate_maximal_sets(prop).cliques)
        assert got == expected

    @given(st.integers(0, 40), st.integers(3, 7))
    @settings(max_examples=20, deadline=None)
    def test_matches_naive_for_eta_cliques(self, seed, n):
        g = random_uncertain_graph(seed, n, 0.6)
        prop = EtaCliqueProperty(g, 0.3)
        expected = maximal_sets_naive(prop)
        got = as_sorted_sets(enumerate_maximal_sets(prop).cliques)
        assert got == expected

    @given(st.integers(0, 40), st.integers(3, 7))
    @settings(max_examples=20, deadline=None)
    def test_matches_naive_for_bounded_degree(self, seed, n):
        g = random_deterministic_graph(seed, n, 0.5)
        prop = BoundedDegreeProperty(g, 1)
        expected = maximal_sets_naive(prop)
        got = as_sorted_sets(enumerate_maximal_sets(prop).cliques)
        assert got == expected

    @given(st.integers(0, 40), st.integers(3, 7), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_matches_naive_for_kplex(self, seed, n, s):
        g = random_deterministic_graph(seed, n, 0.5)
        prop = KPlexProperty(g, s)
        expected = maximal_sets_naive(prop)
        got = as_sorted_sets(enumerate_maximal_sets(prop).cliques)
        assert got == expected

    def test_1plex_equals_cliques(self):
        g = random_deterministic_graph(21, 9, 0.5)
        plexes = as_sorted_sets(enumerate_maximal_sets(KPlexProperty(g, 1)).cliques)
        cliques = as_sorted_sets(enumerate_maximal_sets(CliqueProperty(g)).cliques)
        assert plexes == cliques

    def test_2plex_can_miss_one_edge(self):
        # A 4-cycle is a 2-plex (each vertex misses exactly one other).
        g = Graph([(0, 1), (1, 2), (2, 3), (3, 0)])
        prop = KPlexProperty(g, 2)
        assert prop.holds([0, 1, 2, 3])
        assert not KPlexProperty(g, 1).holds([0, 1, 2, 3])

    def test_kplex_validates(self):
        with pytest.raises(ParameterError):
            KPlexProperty(Graph(), 0)

    def test_agrees_with_bron_kerbosch(self):
        g = random_deterministic_graph(11, 10, 0.5)
        via_framework = as_sorted_sets(
            enumerate_maximal_sets(CliqueProperty(g)).cliques
        )
        assert via_framework == as_sorted_sets(maximal_cliques(g))

    def test_agrees_with_specialized_pmuc(self):
        """The general framework instantiated with the η-clique property
        enumerates exactly what the specialized PMUC engine does (with
        k = 1, i.e. no size filter)."""
        from repro.core import pmuc_plus

        g = random_uncertain_graph(17, 9, 0.6)
        eta = 0.3
        general = as_sorted_sets(
            enumerate_maximal_sets(EtaCliqueProperty(g, eta)).cliques
        )
        specialized = as_sorted_sets(pmuc_plus(g, 1, eta).cliques)
        assert general == specialized

    def test_pivot_reduces_calls_on_clique(self):
        n = 8
        g = Graph([(i, j) for i in range(n) for j in range(i + 1, n)])
        prop = CliqueProperty(g)
        with_pivot = enumerate_maximal_sets(prop, use_pivot=True)
        without = enumerate_maximal_sets(prop, use_pivot=False)
        assert as_sorted_sets(with_pivot.cliques) == as_sorted_sets(without.cliques)
        assert with_pivot.stats.calls < without.stats.calls

    def test_naive_limit(self):
        g = random_deterministic_graph(0, 25, 0.2)
        with pytest.raises(ValueError):
            maximal_sets_naive(CliqueProperty(g))
