"""Graph reduction: η-topdegree, (Top_k, η)-core and -triangle, orderings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ParameterError
from repro.core import enumerate_maximal_cliques
from repro.reduction import (
    ORDERINGS,
    degeneracy_ordering,
    eta_topdegree,
    top_product_count,
    top_triangle_degree,
    top_triangle_decomposition,
    topk_core,
    topk_core_decomposition,
    topk_core_vertices,
    topk_triangle,
    topk_triangle_edges,
    topk_core_ordering,
    vertex_ordering,
    verify_topk_core,
    verify_topk_triangle,
)
from repro.uncertain import UncertainGraph, clique_probability
from tests.conftest import random_uncertain_graph


class TestTopProductCount:
    def test_takes_largest_first(self):
        assert top_product_count([0.9, 0.5, 0.8], 0.5) == 2

    def test_zero_when_nothing_fits(self):
        assert top_product_count([0.3], 0.5) == 0

    def test_all_fit(self):
        assert top_product_count([1.0, 1.0, 1.0], 0.9) == 3

    def test_base_argument(self):
        assert top_product_count([0.9], 0.5, base=0.5) == 0
        assert top_product_count([0.9], 0.4, base=0.5) == 1

    def test_eta_validation(self):
        with pytest.raises(ParameterError):
            top_product_count([0.5], 1.5)


class TestEtaTopdegree:
    def test_example(self):
        g = UncertainGraph([(0, 1, 0.9), (0, 2, 0.9), (0, 3, 0.1)])
        assert eta_topdegree(g, 0, 0.5) == 2
        assert eta_topdegree(g, 0, 0.9) == 1
        assert eta_topdegree(g, 3, 0.05) == 1

    def test_isolated_vertex(self):
        g = UncertainGraph()
        g.add_vertex(0)
        assert eta_topdegree(g, 0, 0.5) == 0


class TestTopTriangleDegree:
    def test_triangle(self, triangle_graph):
        # p_e * (p1 * p2) = 0.9^3 = 0.729
        assert top_triangle_degree(triangle_graph, 0, 1, 0.7) == 1
        assert top_triangle_degree(triangle_graph, 0, 1, 0.75) == 0

    def test_non_edge_rejected(self, triangle_graph):
        with pytest.raises(ParameterError):
            top_triangle_degree(triangle_graph, 0, 99, 0.5)

    def test_takes_strongest_triangles(self):
        g = UncertainGraph(
            [
                (0, 1, 1.0),
                (0, 2, 0.9), (1, 2, 0.9),
                (0, 3, 0.4), (1, 3, 0.4),
            ]
        )
        # strongest triangle (apex 2) has open prob 0.81; apex 3 has 0.16.
        assert top_triangle_degree(g, 0, 1, 0.5) == 1
        assert top_triangle_degree(g, 0, 1, 0.1) == 2


class TestTopkCore:
    def test_whole_clique_survives(self, two_communities):
        core = topk_core(two_communities, 3, 0.5)
        assert set(core.vertices()) == set(range(7))

    def test_peels_weak_vertices(self):
        g = UncertainGraph([(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (2, 3, 0.1)])
        core = topk_core(g, 2, 0.5)
        assert 3 not in core
        assert set(core.vertices()) == {0, 1, 2}

    def test_result_verifies(self):
        for seed in range(6):
            g = random_uncertain_graph(seed, 14, 0.5)
            for k in (1, 2, 3):
                core = topk_core(g, k, 0.3)
                assert verify_topk_core(core, k, 0.3)

    def test_negative_k_rejected(self, triangle_graph):
        with pytest.raises(ParameterError):
            topk_core_vertices(triangle_graph, -1, 0.5)

    @given(st.integers(0, 40), st.integers(2, 4))
    @settings(max_examples=25, deadline=None)
    def test_contains_all_k_eta_cliques(self, seed, k):
        """Soundness: every maximal (k, η)-clique lies in the
        (Top_{k-1}, η)-core."""
        eta = 0.3
        g = random_uncertain_graph(seed, 10, 0.5)
        core_vertices = topk_core_vertices(g, k - 1, eta)
        for clique in enumerate_maximal_cliques(g, k, eta, "muc-basic").cliques:
            assert clique <= core_vertices

    def test_maximality_of_core(self):
        """Adding any peeled vertex back violates the core condition
        for some vertex."""
        g = random_uncertain_graph(5, 12, 0.5)
        k, eta = 2, 0.4
        survivors = topk_core_vertices(g, k, eta)
        peeled = set(g.vertices()) - survivors
        for v in peeled:
            candidate = g.subgraph(survivors | {v})
            assert not verify_topk_core(candidate, k, eta)

    def test_decomposition_consistent_with_core(self):
        g = random_uncertain_graph(2, 12, 0.5)
        eta = 0.3
        shell = topk_core_decomposition(g, eta)
        for k in range(1, max(shell.values(), default=0) + 1):
            core_v = topk_core_vertices(g, k, eta)
            by_shell = {v for v, s in shell.items() if s >= k}
            assert core_v == by_shell


class TestTopkTriangle:
    def test_strong_triangle_cluster_survives(self, two_communities):
        sub = topk_triangle(two_communities, 1, 0.5)
        assert set(sub.vertices()) == set(range(7))

    def test_result_verifies(self):
        for seed in range(6):
            g = random_uncertain_graph(seed + 10, 12, 0.6)
            for k in (1, 2):
                sub = topk_triangle(g, k, 0.2)
                assert verify_topk_triangle(sub, k, 0.2)

    def test_negative_k_rejected(self, triangle_graph):
        with pytest.raises(ParameterError):
            topk_triangle_edges(triangle_graph, -1, 0.5)

    @given(st.integers(0, 40), st.integers(3, 4))
    @settings(max_examples=25, deadline=None)
    def test_lemma8_cliques_contained(self, seed, k):
        """Lemma 8: maximal (k, η)-cliques live in the
        (Top_{k-2}, η)-triangle."""
        eta = 0.3
        g = random_uncertain_graph(seed, 10, 0.55)
        sub = topk_triangle(g, k - 2, eta)
        vertices = set(sub.vertices())
        for clique in enumerate_maximal_cliques(g, k, eta, "muc-basic").cliques:
            assert clique <= vertices
            # the clique's edges survive too
            members = sorted(clique)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    assert sub.has_edge(u, v)

    @given(st.integers(0, 30))
    @settings(max_examples=20, deadline=None)
    def test_lemma10_triangle_inside_core(self, seed):
        """Lemma 10: a (Top_k, η)-triangle is a (Top_{k+1}, η)-core."""
        eta = 0.3
        g = random_uncertain_graph(seed, 10, 0.6)
        for k in (1, 2):
            sub = topk_triangle(g, k, eta)
            if sub.num_vertices:
                assert verify_topk_core(sub, k + 1, eta)

    def test_decomposition_levels(self):
        g = random_uncertain_graph(4, 10, 0.7)
        eta = 0.2
        levels = top_triangle_decomposition(g, eta)
        for e, s in levels.items():
            assert s >= 0
        # Edges at level >= k are exactly the k-triangle survivors.
        for k in (1, 2):
            survivors = topk_triangle_edges(g, k, eta)
            by_level = {e for e, s in levels.items() if s >= k}
            # Survivors come back in deterministic edge-scan order;
            # membership (not order) is what the levels predict.
            assert len(survivors) == len(set(survivors))
            assert set(survivors) == by_level


class TestOrderings:
    def test_names(self):
        assert set(ORDERINGS) == {"as-is", "degeneracy", "topk-core"}

    def test_all_are_permutations(self, two_communities):
        vertices = sorted(two_communities.vertices())
        for name in ORDERINGS:
            order = vertex_ordering(two_communities, name, eta=0.5)
            assert sorted(order) == vertices

    def test_unknown_ordering(self, two_communities):
        with pytest.raises(ParameterError):
            vertex_ordering(two_communities, "bogus")

    def test_topk_core_requires_eta(self, two_communities):
        with pytest.raises(ParameterError):
            vertex_ordering(two_communities, "topk-core")

    def test_degeneracy_ordering_matches_backbone(self, two_communities):
        from repro.deterministic import degeneracy_ordering as det_order

        assert degeneracy_ordering(two_communities) == det_order(
            two_communities.to_deterministic()
        )

    def test_topk_core_ordering_peels_weak_first(self):
        g = UncertainGraph(
            [(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9), (2, 3, 0.1)]
        )
        order = topk_core_ordering(g, 0.5)
        assert order[0] == 3
