"""Property-based tests: all enumerators agree with the oracle.

Probabilities are exact :class:`~fractions.Fraction` values so clique
probabilities are independent of multiplication order; any disagreement
between algorithms is then a real logic bug, never floating-point
noise at the η boundary.
"""

import random
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.core import PivotConfig, PivotEnumerator, muc
from repro.uncertain import (
    UncertainGraph,
    clique_probability,
    is_maximal_k_eta_clique,
)
from tests.conftest import (
    EXACT_PROBABILITIES,
    as_sorted_sets,
    brute_force_maximal_k_eta_cliques,
)


@st.composite
def small_uncertain_graphs(draw):
    """Graphs with <= 8 vertices, <= 18 edges, exact probabilities."""
    n = draw(st.integers(3, 8))
    seed = draw(st.integers(0, 10_000))
    density = draw(st.sampled_from([0.35, 0.5, 0.65]))
    rng = random.Random(seed)
    g = UncertainGraph()
    for v in range(n):
        g.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                g.add_edge(u, v, rng.choice(EXACT_PROBABILITIES))
    return g


ETAS = tuple(Fraction(i, 20) for i in (1, 4, 8, 12))


@given(
    small_uncertain_graphs(),
    st.integers(1, 4),
    st.sampled_from(ETAS),
)
@settings(max_examples=60, deadline=None)
def test_all_algorithms_match_brute_force(graph, k, eta):
    oracle = brute_force_maximal_k_eta_cliques(graph, k, eta)
    assert as_sorted_sets(muc(graph, k, eta).cliques) == oracle
    assert (
        as_sorted_sets(muc(graph, k, eta, use_reduction=False).cliques) == oracle
    )
    for config in (
        PivotConfig(),  # PMUC defaults
        PivotConfig(kpivot="color", reduction="triangle"),  # PMUC+
        PivotConfig(ordering="as-is", pivot="first", mpivot="basic",
                    kpivot="plain", reduction="off"),
        PivotConfig(ordering="degeneracy", pivot="color", mpivot="off",
                    kpivot="off", reduction="core"),
    ):
        result = PivotEnumerator(graph, k, eta, config).run()
        assert as_sorted_sets(result.cliques) == oracle


@given(small_uncertain_graphs(), st.integers(1, 3), st.sampled_from(ETAS))
@settings(max_examples=60, deadline=None)
def test_outputs_are_maximal_and_unique(graph, k, eta):
    result = PivotEnumerator(
        graph, k, eta, PivotConfig(kpivot="color", reduction="triangle")
    ).run()
    assert len(result.cliques) == len(set(result.cliques))
    for clique in result.cliques:
        assert is_maximal_k_eta_clique(graph, clique, k, eta)
        assert clique_probability(graph, clique) >= eta


@given(small_uncertain_graphs(), st.sampled_from(ETAS))
@settings(max_examples=40, deadline=None)
def test_k_monotonicity(graph, eta):
    """Raising k can only filter the result set: every maximal
    (k+1, η)-clique is also a maximal (k, η)-clique."""
    smaller = set(PivotEnumerator(graph, 2, eta).run().cliques)
    larger = set(PivotEnumerator(graph, 3, eta).run().cliques)
    assert larger <= smaller


@given(small_uncertain_graphs(), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_eta_monotonicity_of_probabilities(graph, k):
    """All cliques reported at a high η are η-cliques at any lower η
    (though possibly no longer maximal there)."""
    high = PivotEnumerator(graph, k, Fraction(3, 5)).run()
    for clique in high.cliques:
        assert clique_probability(graph, clique) >= Fraction(1, 5)
