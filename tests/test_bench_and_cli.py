"""The bench harness, experiment functions (tiny grids), and the CLI."""

import pytest

from repro.bench import (
    RunRecord,
    experiment_ablation,
    experiment_fig3,
    experiment_fig4,
    experiment_fig5,
    experiment_fig6_fig7,
    experiment_fig8,
    experiment_fig9,
    experiment_fig10,
    experiment_fig11,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    format_table,
    peak_memory_bytes,
    timed_config_enumeration,
    timed_enumeration,
)
from repro.core import PMUC_PLUS_CONFIG
from repro.cli import main
from repro.datasets import DATASET_NAMES

TINY = dict(datasets=("enron",), ks=(4,), etas=(0.1,))


class TestHarness:
    def test_timed_enumeration(self, two_communities):
        record = timed_enumeration("t", two_communities, 3, 0.5, "pmuc+")
        assert record.num_cliques == 2
        assert record.seconds >= 0
        assert record.stats["outputs"] == 2

    def test_timed_config_enumeration(self, two_communities):
        record = timed_config_enumeration(
            "c", two_communities, 3, 0.5, PMUC_PLUS_CONFIG
        )
        assert record.num_cliques == 2

    def test_run_record_row(self):
        record = RunRecord("x", 0.5, 3, {"calls": 7}, {"note": "hi"})
        row = record.as_row()
        assert row["run"] == "x" and row["stat_calls"] == 7 and row["note"] == "hi"

    def test_peak_memory_positive(self):
        assert peak_memory_bytes(lambda: list(range(100_000))) > 100_000

    def test_format_table(self):
        text = format_table([{"a": 1, "b": None}, {"a": 2.5}], title="T")
        assert "T" in text and "a" in text and "-" in text

    def test_format_empty(self):
        assert "(no rows)" in format_table([])


class TestExperiments:
    def test_table1_covers_all_datasets(self):
        rows = experiment_table1()
        assert [r["dataset"] for r in rows] == list(DATASET_NAMES)

    def test_fig3_rows(self):
        rows = experiment_fig3(**TINY)
        algorithms = {r["algorithm"] for r in rows}
        assert algorithms == {"muc", "pmuc", "pmuc+"}
        sweeps = {r["sweep"] for r in rows}
        assert sweeps == {"k", "eta"}

    def test_fig4_variants(self):
        rows = experiment_fig4(**TINY)
        assert {r["variant"] for r in rows} == {"PMUC-R", "PMUC-C", "PMUC+"}

    def test_fig5_variants(self):
        rows = experiment_fig5(**TINY)
        assert {r["variant"] for r in rows} == {"PMUC-D", "PMUC-CD", "PMUC+"}

    def test_fig6_fig7_reduction_monotone(self):
        rows = experiment_fig6_fig7(**TINY)
        by_technique = {r["technique"]: r for r in rows}
        # Fig. 7's claim: TopTriangle prunes at least as much as TopCore.
        assert (
            by_technique["TopTriangle"]["remaining_vertices"]
            <= by_technique["TopCore"]["remaining_vertices"]
        )

    def test_fig8_series_naming(self):
        rows = experiment_fig8(datasets=("enron",), ks=(4,), models=("uniform",))
        assert {r["series"] for r in rows} == {"UMC", "UPM+"}

    def test_fig9_fractions(self):
        rows = experiment_fig9(fractions=(0.4,), algorithms=("pmuc+",))
        assert {r["sampled"] for r in rows} == {"vertices", "edges"}

    def test_fig10_memory(self):
        rows = experiment_fig10(datasets=("enron",), algorithms=("pmuc+",))
        assert rows[0]["peak_mb"] > 0

    def test_table2_precision_order(self):
        rows = experiment_table2()
        best = max(rows, key=lambda r: r["PR"])
        assert best["Algorithm"] == "PMUCE"

    def test_fig11_rows(self):
        rows = experiment_fig11()
        assert {r["dataset"] for r in rows} == {"cn15k", "nl27k"}

    def test_table3_rows(self):
        rows = experiment_table3()
        methods = [r["method"] for r in rows]
        assert methods.count("PMUCE") == 2  # two topics

    def test_ablation_no_pivot_is_worst(self):
        rows = experiment_ablation(datasets=("enron",), k=6)
        calls = {r["variant"]: r["calls"] for r in rows}
        cliques = {r["variant"]: r["cliques"] for r in rows}
        assert len(set(cliques.values())) == 1  # all variants agree
        assert calls["no-pivot"] >= calls["full-pmuc+"]


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "enron" in out and "delta" in out

    def test_fig3_quick_with_overrides(self, capsys):
        assert main(["fig3", "--datasets", "enron", "--ks", "4",
                     "--etas", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "pmuc+" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_fig11(self, capsys):
        assert main(["fig11"]) == 0
        assert "PMUCE" in capsys.readouterr().out

    def test_markdown_export(self, capsys, tmp_path):
        path = tmp_path / "report.md"
        assert main(["table1", "--markdown", str(path)]) == 0
        text = path.read_text()
        assert text.startswith("# Reproduction report")
        assert "| enron |" in text

    def test_json_export(self, capsys, tmp_path):
        import json

        path = tmp_path / "rows.json"
        assert main(["table3", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert "table3" in data and data["table3"]["rows"]
