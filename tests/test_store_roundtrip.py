"""Store round-trips: what goes in comes back, or misses cleanly.

Three families:

* **round-trip** — a stored run replays with the producing run's exact
  clique set and counters, on random graphs (hypothesis) and across
  both backends (whose runs live under *different* keys but must store
  *identical* clique bytes);
* **corruption-as-miss** — any damage (flipped byte, truncated tail,
  missing file, tampered key) makes ``get_run`` return None, never an
  exception and never wrong data; a re-put heals the entry;
* **reductions** — the shared decomposition cache round-trips its
  shell maps exactly, including tuple vertices.
"""

import json
import os
from dataclasses import replace
from fractions import Fraction

import random

from hypothesis import given, settings, strategies as st

from repro.core.config import PMUC_PLUS_CONFIG
from repro.core.pmuc import PivotEnumerator
from repro.datasets.figure1 import figure1_graph
from repro.reduction import (
    top_triangle_decomposition,
    topk_core_decomposition,
)
from repro.store.key import reduction_key_for, run_key_for
from repro.store.records import stamped_record
from repro.store.store import RunStore
from repro.uncertain import UncertainGraph
from tests.conftest import EXACT_PROBABILITIES, as_sorted_sets


def run_and_store(store, graph, k, eta, config=PMUC_PLUS_CONFIG):
    enumerator = PivotEnumerator(graph, k, eta, config)
    result = enumerator.run()
    key = run_key_for(graph, k, eta, config)
    record = stamped_record(
        "test", 0.25, len(result.cliques), result.stats.as_dict(),
        extra={"k": k, "eta": repr(eta)},
        backend=enumerator.backend_used,
        variant=enumerator.variant_used,
    )
    digest = store.put_run(key, record, cliques=result.cliques)
    return key, digest, result


@st.composite
def small_graphs(draw):
    n = draw(st.integers(3, 8))
    seed = draw(st.integers(0, 5_000))
    rng = random.Random(seed)
    g = UncertainGraph()
    for v in range(n):
        g.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.5:
                g.add_edge(u, v, rng.choice(EXACT_PROBABILITIES))
    return g


# ----------------------------------------------------------------------
# round-trip
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(small_graphs(), st.integers(1, 3))
def test_roundtrip_replays_exact_cliques_and_counters(tmp_path_factory, graph, k):
    store = RunStore(str(tmp_path_factory.mktemp("store")))
    eta = Fraction(1, 4)
    key, digest, result = run_and_store(store, graph, k, eta)
    stored = store.get_run(key)
    assert stored is not None
    assert stored.digest == digest
    replayed = stored.result()
    assert as_sorted_sets(replayed.cliques) == as_sorted_sets(result.cliques)
    assert replayed.stats.as_dict() == result.stats.as_dict()


def test_both_backends_store_identical_clique_bytes(tmp_path):
    """dict and kernel runs key differently but must agree on content."""
    store = RunStore(str(tmp_path / "store"))
    graph, k, eta = figure1_graph(), 3, 0.1
    digests = {}
    for backend in ("dict", "kernel"):
        config = replace(PMUC_PLUS_CONFIG, backend=backend)
        key, digest, _result = run_and_store(store, graph, k, eta, config)
        assert key.backend == backend
        digests[backend] = digest
    assert digests["dict"] != digests["kernel"]
    blobs = {}
    for backend, digest in digests.items():
        path = os.path.join(store.run_dir(digest), "cliques.jsonl")
        with open(path, "rb") as handle:
            blobs[backend] = handle.read()
    assert blobs["dict"] == blobs["kernel"]


def test_hooked_variant_stores_the_same_cliques_under_its_own_key(tmp_path):
    store = RunStore(str(tmp_path / "store"))
    graph, k, eta = figure1_graph(), 3, 0.1
    lean_key, lean_digest, lean = run_and_store(store, graph, k, eta)
    hooked_config = replace(PMUC_PLUS_CONFIG, obs="light")
    hooked_key, hooked_digest, hooked = run_and_store(
        store, graph, k, eta, hooked_config
    )
    assert lean_key.variant == "lean" and hooked_key.variant == "hooked"
    assert lean_digest != hooked_digest
    assert as_sorted_sets(lean.cliques) == as_sorted_sets(hooked.cliques)
    assert lean.stats.as_dict() == hooked.stats.as_dict()


def test_put_is_idempotent_and_first_write_wins(tmp_path):
    store = RunStore(str(tmp_path / "store"))
    key, digest, _ = run_and_store(store, figure1_graph(), 3, 0.1)
    again_key, again_digest, _ = run_and_store(store, figure1_graph(), 3, 0.1)
    assert key == again_key and digest == again_digest
    assert len(store.list_runs()) == 1


def test_violation_round_trips_without_a_clique_set(tmp_path):
    store = RunStore(str(tmp_path / "store"))
    key = run_key_for(figure1_graph(), 3, 0.1, PMUC_PLUS_CONFIG)
    report = {"check": "maximality", "name": "figure1", "witness": [1, 2]}
    record = stamped_record("sanitize:test", 0.1, 0, extra={"k": 3})
    store.put_run(key, record, cliques=None, violation=report)
    stored = store.get_run(key)
    assert stored is not None
    assert stored.cliques is None
    assert stored.violation == report


# ----------------------------------------------------------------------
# corruption degrades to a miss (and heals on re-put)
# ----------------------------------------------------------------------
def corrupt(path, how):
    if how == "flip":
        with open(path, "r+b") as handle:
            blob = handle.read()
            handle.seek(0)
            handle.write(bytes([blob[0] ^ 0xFF]) + blob[1:])
    elif how == "truncate":
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(0, size - 7))
    elif how == "remove":
        os.remove(path)


def test_every_damage_mode_is_a_miss_and_reput_heals(tmp_path):
    for name in ("cliques.jsonl", "record.json", "key.json", "MANIFEST.json"):
        for how in ("flip", "truncate", "remove"):
            store = RunStore(str(tmp_path / ("s-%s-%s" % (name, how))))
            key, digest, result = run_and_store(
                store, figure1_graph(), 3, 0.1
            )
            corrupt(os.path.join(store.run_dir(digest), name), how)
            assert store.get_run(key) is None, (name, how)
            assert store.get_by_digest(digest) is None, (name, how)
            assert not store.has(key), (name, how)
            # The damaged entry must not pin its digest forever: a
            # fresh put evicts it and the key hits again.
            healed_key, healed_digest, _ = run_and_store(
                store, figure1_graph(), 3, 0.1
            )
            assert healed_digest == digest
            healed = store.get_run(key)
            assert healed is not None, (name, how)
            assert as_sorted_sets(healed.cliques) == as_sorted_sets(
                result.cliques
            ), (name, how)


def test_tampered_key_file_is_a_miss(tmp_path):
    """A key.json rewritten (with a matching manifest) to different
    fields must not serve under the requested key."""
    store = RunStore(str(tmp_path / "store"))
    key, digest, _ = run_and_store(store, figure1_graph(), 3, 0.1)
    entry = store.run_dir(digest)
    forged = dict(key.as_dict(), k=99)
    body = (json.dumps(forged, indent=2, sort_keys=True) + "\n").encode()
    with open(os.path.join(entry, "key.json"), "wb") as handle:
        handle.write(body)
    manifest_path = os.path.join(entry, "MANIFEST.json")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    import hashlib

    manifest["files"]["key.json"] = hashlib.sha256(body).hexdigest()
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    assert store.get_run(key) is None
    assert store.misses >= 1


def test_missing_store_directory_is_just_a_miss(tmp_path):
    store = RunStore(str(tmp_path / "never-created"))
    key = run_key_for(figure1_graph(), 3, 0.1, PMUC_PLUS_CONFIG)
    assert store.get_run(key) is None
    assert store.list_runs() == []
    assert store.get_by_digest("feed") is None


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------
def test_reduction_cache_round_trips_shell_maps(tmp_path):
    store = RunStore(str(tmp_path / "store"))
    graph, eta = figure1_graph(), 0.1
    core_shell = topk_core_decomposition(graph, eta)
    triangle_shell = top_triangle_decomposition(graph, eta)
    key = reduction_key_for(graph, eta)
    store.put_reduction(key, core_shell, triangle_shell)
    loaded = store.get_reduction(key)
    assert loaded is not None
    assert loaded[0] == core_shell
    assert loaded[1] == triangle_shell
    # No cross-eta service.
    assert store.get_reduction(reduction_key_for(graph, 0.05)) is None


def test_corrupted_reduction_is_a_miss(tmp_path):
    store = RunStore(str(tmp_path / "store"))
    graph, eta = figure1_graph(), 0.1
    key = reduction_key_for(graph, eta)
    digest = store.put_reduction(
        key,
        topk_core_decomposition(graph, eta),
        top_triangle_decomposition(graph, eta),
    )
    path = os.path.join(
        store._entry_dir("reductions", digest), "core.jsonl"
    )
    corrupt(path, "flip")
    assert store.get_reduction(key) is None
