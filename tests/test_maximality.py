"""World-maximality probability and α-maximal cliques."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ParameterError
from repro.uncertain import (
    UncertainGraph,
    alpha_maximal_cliques,
    enumerate_worlds,
    estimate_maximal_clique_probability,
    maximal_clique_probability,
)
from tests.conftest import random_uncertain_graph


def maximality_by_world_enumeration(graph, members):
    """Reference: sum the probabilities of worlds where H is maximal."""
    total = 0
    member_set = set(members)
    for world, p in enumerate_worlds(graph):
        if not world.is_clique(members):
            continue
        if members:
            extenders = set(world.neighbors(members[0]))
            for v in members[1:]:
                extenders &= world.neighbors(v)
            extenders -= member_set
        else:
            extenders = set(world.vertices())
        if not extenders:
            total += p
    return total


class TestClosedForm:
    def test_pendant_pair(self):
        g = UncertainGraph([(0, 1, 0.9), (1, 2, 0.5), (0, 2, 0.5)])
        # {0,1} maximal iff edge (0,1) present and 2 fails to connect
        # to both: 0.9 * (1 - 0.25) = 0.675.
        assert maximal_clique_probability(g, [0, 1]) == pytest.approx(0.675)

    def test_whole_triangle(self, triangle_graph):
        # No outside vertices: maximality == clique probability.
        assert maximal_clique_probability(
            triangle_graph, [0, 1, 2]
        ) == pytest.approx(0.9**3)

    def test_non_clique_is_zero(self):
        g = UncertainGraph([(0, 1, 0.9)])
        g.add_vertex(2)
        assert maximal_clique_probability(g, [0, 1, 2]) == 0

    def test_empty_set(self):
        assert maximal_clique_probability(UncertainGraph(), []) == 1
        g = UncertainGraph()
        g.add_vertex(0)
        assert maximal_clique_probability(g, []) == 0

    def test_singleton(self):
        g = UncertainGraph([(0, 1, 0.3)])
        # {0} is maximal iff the edge is absent.
        assert maximal_clique_probability(g, [0]) == pytest.approx(0.7)

    @given(st.integers(0, 60), st.integers(3, 6))
    @settings(max_examples=25, deadline=None)
    def test_matches_world_enumeration(self, seed, n):
        g = random_uncertain_graph(seed, n, 0.6)
        if g.num_edges > 12:
            return
        members = list(range(min(3, n)))
        exact = maximal_clique_probability(g, members)
        reference = maximality_by_world_enumeration(g, members)
        assert float(exact) == pytest.approx(float(reference), abs=1e-12)

    def test_monte_carlo_agrees(self):
        g = random_uncertain_graph(3, 7, 0.6)
        members = [0, 1]
        exact = maximal_clique_probability(g, members)
        estimate = estimate_maximal_clique_probability(
            g, members, samples=8000, seed=2
        )
        assert estimate == pytest.approx(float(exact), abs=0.03)

    def test_estimator_validates_samples(self, triangle_graph):
        with pytest.raises(ParameterError):
            estimate_maximal_clique_probability(triangle_graph, [0], samples=0)


class TestAlphaMaximal:
    def test_filters_by_alpha(self, two_communities):
        everything = alpha_maximal_cliques(two_communities, 3, 0.5, alpha=0.0)
        assert len(everything) == 2
        strict = alpha_maximal_cliques(two_communities, 3, 0.5, alpha=0.99)
        assert len(strict) <= len(everything)

    def test_sorted_by_probability(self):
        g = random_uncertain_graph(11, 10, 0.6)
        scored = alpha_maximal_cliques(g, 2, 0.3, alpha=0.0)
        probabilities = [p for _c, p in scored]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_scores_are_exact(self, two_communities):
        for clique, probability in alpha_maximal_cliques(
            two_communities, 3, 0.5, alpha=0.0
        ):
            assert probability == maximal_clique_probability(
                two_communities, clique
            )

    def test_alpha_validation(self, triangle_graph):
        with pytest.raises(ParameterError):
            alpha_maximal_cliques(triangle_graph, 1, 0.5, alpha=1.5)
