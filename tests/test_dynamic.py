"""Dynamic maintenance of maximal (k, η)-cliques under updates."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError, ParameterError
from repro.core import DynamicCliqueIndex
from repro.uncertain import UncertainGraph
from tests.conftest import random_uncertain_graph


class TestBasics:
    def test_initial_build(self, two_communities):
        index = DynamicCliqueIndex(two_communities, 3, 0.5)
        assert len(index) == 2
        assert index.check()

    def test_does_not_alias_input_graph(self, triangle_graph):
        index = DynamicCliqueIndex(triangle_graph, 3, 0.5)
        triangle_graph.remove_edge(0, 1)
        assert index.graph.has_edge(0, 1)

    def test_parameter_validation(self, triangle_graph):
        with pytest.raises(ParameterError):
            DynamicCliqueIndex(triangle_graph, 0, 0.5)
        with pytest.raises(ParameterError):
            DynamicCliqueIndex(triangle_graph, 1, 0)

    def test_contains(self, triangle_graph):
        index = DynamicCliqueIndex(triangle_graph, 3, 0.5)
        assert [0, 1, 2] in index
        assert [0, 1] not in index


class TestEdgeUpdates:
    def test_insertion_creates_clique(self):
        g = UncertainGraph([(0, 1, 0.9), (1, 2, 0.9)])
        index = DynamicCliqueIndex(g, 3, 0.5)
        assert len(index) == 0
        index.add_edge(0, 2, 0.9)
        assert frozenset({0, 1, 2}) in index.cliques
        assert index.check()

    def test_insertion_retires_subsumed_cliques(self):
        g = UncertainGraph([(0, 1, 1.0), (1, 2, 1.0)])
        index = DynamicCliqueIndex(g, 2, 0.5)
        assert frozenset({0, 1}) in index.cliques
        index.add_edge(0, 2, 1.0)
        assert frozenset({0, 1}) not in index.cliques
        assert frozenset({0, 1, 2}) in index.cliques

    def test_probability_update(self, triangle_graph):
        index = DynamicCliqueIndex(triangle_graph, 3, 0.7)
        assert len(index) == 1
        index.add_edge(0, 1, 0.5)  # lowers Pr below eta
        assert frozenset({0, 1, 2}) not in index.cliques
        assert index.check()

    def test_deletion_splits_clique(self, triangle_graph):
        index = DynamicCliqueIndex(triangle_graph, 2, 0.5)
        index.remove_edge(0, 1)
        assert index.cliques == {frozenset({0, 2}), frozenset({1, 2})}
        assert index.check()

    def test_deletion_of_missing_edge_raises(self, triangle_graph):
        index = DynamicCliqueIndex(triangle_graph, 2, 0.5)
        with pytest.raises(GraphError):
            index.remove_edge(0, 99)

    def test_repairs_counted(self, triangle_graph):
        index = DynamicCliqueIndex(triangle_graph, 2, 0.5)
        index.add_edge(0, 3, 0.9)
        index.remove_edge(0, 3)
        assert index.repairs == 2


class TestVertexUpdates:
    def test_add_vertex_k1(self):
        g = UncertainGraph([(0, 1, 0.9)])
        index = DynamicCliqueIndex(g, 1, 0.5)
        index.add_vertex(9)
        assert frozenset({9}) in index.cliques
        assert index.check()

    def test_add_existing_vertex_noop(self, triangle_graph):
        index = DynamicCliqueIndex(triangle_graph, 3, 0.5)
        index.add_vertex(0)
        assert index.check()

    def test_remove_vertex(self, two_communities):
        index = DynamicCliqueIndex(two_communities, 3, 0.5)
        index.remove_vertex(3)  # the articulation vertex of both cliques
        assert index.check()
        assert all(3 not in c for c in index.cliques)

    def test_remove_missing_vertex_raises(self, triangle_graph):
        index = DynamicCliqueIndex(triangle_graph, 2, 0.5)
        with pytest.raises(GraphError):
            index.remove_vertex(42)


class TestRandomizedAgainstRecompute:
    @given(st.integers(0, 300), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_random_update_sequences(self, seed, k):
        rng = random.Random(seed)
        graph = random_uncertain_graph(seed, 8, 0.4)
        eta = rng.choice([0.2, 0.4, 0.6])
        index = DynamicCliqueIndex(graph, k, eta)
        vertices = graph.vertices()
        for _step in range(8):
            u, v = rng.sample(vertices, 2)
            if index.graph.has_edge(u, v) and rng.random() < 0.5:
                index.remove_edge(u, v)
            else:
                index.add_edge(u, v, rng.choice([0.3, 0.5, 0.9, 1.0]))
        assert index.check()

    def test_interleaved_vertex_and_edge_updates(self):
        graph = random_uncertain_graph(5, 10, 0.4)
        index = DynamicCliqueIndex(graph, 2, 0.4)
        index.add_vertex("new")
        index.add_edge("new", 0, 0.9)
        index.add_edge("new", 1, 0.9)
        index.remove_vertex(2)
        assert index.check()
