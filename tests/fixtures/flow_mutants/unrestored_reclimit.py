"""Seeded mutant: recursion limit raised with the restore not in a
``finally`` — the exact bug PR 6 fixed by hand in the engine driver.

``deepen`` leaks the raised limit when ``explore`` raises;
``deepen_safe`` is the corrected twin and must stay silent.
"""

import sys


def deepen(graph, needed):
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(needed)
    result = explore(graph)  # raises -> limit stays raised
    sys.setrecursionlimit(previous)
    return result


def deepen_safe(graph, needed):
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(needed)
    try:
        return explore(graph)
    finally:
        sys.setrecursionlimit(previous)


def explore(graph):
    return list(graph)
