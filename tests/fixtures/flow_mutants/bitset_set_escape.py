"""Seeded mutant: big-int candidate bitsets escaping the bit domain.

``collect`` does the blessed extraction loop (silent) but then
materializes the bitset as a ``set()``; ``count_members`` probes every
index of the universe with ``>> w & 1`` instead of popcounting.
"""


def collect(cand_bits, bit_at):
    live = cand_bits
    members = []
    while live:
        w = live.bit_length() - 1
        live ^= bit_at[w]
        members.append(w)  # blessed extraction idiom: stays silent
    leaked = cand_bits
    return set(leaked)  # REP011: materialized via set()


def count_members(cand_bits, n):
    hits = 0
    for w in range(n):
        if cand_bits >> w & 1:  # REP011: per-index membership probe
            hits += 1
    return hits
