"""Seeded mutant: log/linear probability mix inside a folded variant.

The mix hides in the ``if BITSET:`` arm of a ``_search_template``
clone.  REP010 never analyzes the unfolded template (production only
ever executes the AST-folded variants), so the bug is visible only to
a scanner that folds the template the way the engine's specializer
does and analyzes each distinct variant.
"""

HOOKS = False
BITSET = False
HYBRID = False
KPIVOT = False
COLOR_BOUND = False
IMPROVED = False
BASIC = False
WIDESCAN = False


def _search_template(sv, nlq, p_e, acc):
    if BITSET:
        score = nlq + p_e  # log-domain nlq meets linear p_e
        acc.append(score)
    else:
        acc.append(p_e)
    return acc
