"""Seeded mutant: hash-order taint surviving three assignments.

The old document-order REP001 tracked set-typedness through direct
assignment chains too, but only the flow rewrite pins *where* the
order-dependence entered — the trace must name the last assignment
that made the iterable unordered.
"""


def ordered_output(values):
    pool = set(values)
    staged = pool
    chosen = staged
    out = []
    for v in chosen:
        out.append(v)  # REP001: hash order leaks into ordered output
    return out


def sorted_output(values):
    pool = set(values)
    staged = pool
    chosen = sorted(staged)
    out = []
    for v in chosen:
        out.append(v)
    return out
