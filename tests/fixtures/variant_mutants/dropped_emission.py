"""Seeded miscompile: the folded variant lost its emission site.

``_variant_bitset`` is the correct bitset fold of the template except
that the ``sink_call(...)`` line is gone — the classic dropped-splice
bug where a fold removes one statement too many.  REP013 must report
both the targeted ``emission`` parity violation and the structural
``missing`` difference, with the trace naming the template's emission
line as the source.
"""

HOOKS = False
BITSET = False
KPIVOT = False

VARIANT_ENVS = {
    "_variant_bitset": {"HOOKS": False, "BITSET": True, "KPIVOT": False},
}


def _search_template(ops, k, sink, san=None, obs=None):
    if BITSET:
        fast = ops.fast_ops()
        bit_at = fast.bit_at
        nbr_bits = fast.nbr_bits
        label_of = fast.label_of
    else:
        hot = ops.search_ops()
        expand = hot.expand
        retract = hot.retract
    sink_call = sink

    def search(r, c, depth):
        if BITSET:
            if not c:
                if len(r) >= k:
                    sink_call(frozenset(map(label_of, r)))
                return
            c_bits = c
            live = c_bits
            while live:
                w = live.bit_length() - 1
                live ^= bit_at[w]
                search(r + [w], c_bits & nbr_bits[w], depth + 1)
        else:
            if not c:
                if len(r) >= k:
                    sink_call(frozenset(r))
                return
            for v in list(c):
                child = expand(c, v)
                search(r + [v], child, depth + 1)
                retract(c, v)

    return search


def _variant_bitset(ops, k, sink, san=None, obs=None):
    fast = ops.fast_ops()
    bit_at = fast.bit_at
    nbr_bits = fast.nbr_bits
    label_of = fast.label_of
    sink_call = sink

    def search(r, c, depth):
        if not c:
            if len(r) >= k:
                pass  # the emission vanished with the fold
            return
        c_bits = c
        live = c_bits
        while live:
            w = live.bit_length() - 1
            live ^= bit_at[w]
            search(r + [w], c_bits & nbr_bits[w], depth + 1)

    return search
