"""Seeded miscompile: the K-pivot stop slid past a neighbouring fold.

The template checks the K-pivot size stop *before* it snapshots the
candidate bitset; ``_variant_bitset_kpivot`` runs the snapshot first
and the stop second — the one-position slip a bad splice produces.
REP013 must report a ``reordered`` difference anchored on the two
swapped statements.
"""

HOOKS = False
BITSET = False
KPIVOT = False

VARIANT_ENVS = {
    "_variant_bitset_kpivot": {
        "HOOKS": False, "BITSET": True, "KPIVOT": True,
    },
}


def _search_template(ops, k, sink, san=None, obs=None):
    if BITSET:
        fast = ops.fast_ops()
        bit_at = fast.bit_at
        nbr_bits = fast.nbr_bits
        popcount = fast.popcount
        label_of = fast.label_of
    else:
        hot = ops.search_ops()
        expand = hot.expand
        retract = hot.retract
    sink_call = sink

    def search(r, c, depth):
        if BITSET:
            if not c:
                if len(r) >= k:
                    sink_call(frozenset(map(label_of, r)))
                return
            if KPIVOT:
                if depth + popcount(c) < k:
                    return
            c_bits = c
            live = c_bits
            while live:
                w = live.bit_length() - 1
                live ^= bit_at[w]
                search(r + [w], c_bits & nbr_bits[w], depth + 1)
        else:
            if not c:
                if len(r) >= k:
                    sink_call(frozenset(r))
                return
            if KPIVOT:
                if depth + len(c) < k:
                    return
            for v in list(c):
                child = expand(c, v)
                search(r + [v], child, depth + 1)
                retract(c, v)

    return search


def _variant_bitset_kpivot(ops, k, sink, san=None, obs=None):
    fast = ops.fast_ops()
    bit_at = fast.bit_at
    nbr_bits = fast.nbr_bits
    popcount = fast.popcount
    label_of = fast.label_of
    sink_call = sink

    def search(r, c, depth):
        if not c:
            if len(r) >= k:
                sink_call(frozenset(map(label_of, r)))
            return
        c_bits = c
        if depth + popcount(c) < k:
            return
        live = c_bits
        while live:
            w = live.bit_length() - 1
            live ^= bit_at[w]
            search(r + [w], c_bits & nbr_bits[w], depth + 1)

    return search
