"""Seeded miscompile: the bitset hot path materializes its bitset.

Template *and* variant both snapshot the candidate set through
``set(c_bits)`` — structurally the fold is perfect, so the skeleton
diff is clean.  Only the bitset-escape obligation (the REP011 taint
pass re-run over the folded body) can catch it: the bitset variant's
hot path left the int/popcount domain.  REP013 must report a
``domain`` difference whose trace names the bit-domain source.
"""

HOOKS = False
BITSET = False
KPIVOT = False

VARIANT_ENVS = {
    "_variant_bitset": {"HOOKS": False, "BITSET": True, "KPIVOT": False},
}


def _search_template(ops, k, sink, san=None, obs=None):
    if BITSET:
        fast = ops.fast_ops()
        bit_at = fast.bit_at
        nbr_bits = fast.nbr_bits
        label_of = fast.label_of
    else:
        hot = ops.search_ops()
        expand = hot.expand
        retract = hot.retract
    sink_call = sink

    def search(r, c, depth):
        if BITSET:
            if not c:
                if len(r) >= k:
                    sink_call(frozenset(map(label_of, r)))
                return
            c_bits = c
            probe = set(c_bits)
            live = c_bits
            while live:
                w = live.bit_length() - 1
                live ^= bit_at[w]
                search(r + [w], c_bits & nbr_bits[w], depth + 1)
        else:
            if not c:
                if len(r) >= k:
                    sink_call(frozenset(r))
                return
            for v in list(c):
                child = expand(c, v)
                search(r + [v], child, depth + 1)
                retract(c, v)

    return search


def _variant_bitset(ops, k, sink, san=None, obs=None):
    fast = ops.fast_ops()
    bit_at = fast.bit_at
    nbr_bits = fast.nbr_bits
    label_of = fast.label_of
    sink_call = sink

    def search(r, c, depth):
        if not c:
            if len(r) >= k:
                sink_call(frozenset(map(label_of, r)))
            return
        c_bits = c
        probe = set(c_bits)
        live = c_bits
        while live:
            w = live.bit_length() - 1
            live ^= bit_at[w]
            search(r + [w], c_bits & nbr_bits[w], depth + 1)

    return search
