"""Clean corpus entry: two correctly hand-folded variants.

The template mirrors the engine driver's shape in miniature — a
flag-guarded prelude binding one backend surface, a nested ``search``
closure with hook sites under ``HOOKS``, a K-pivot stop under
``KPIVOT`` and one emission per shape.  Both declared variants fold it
faithfully, so REP013 must stay silent on this file.
"""

HOOKS = False
BITSET = False
KPIVOT = False

VARIANT_ENVS = {
    "_variant_bitset_plain": {
        "HOOKS": False, "BITSET": True, "KPIVOT": False,
    },
    "_variant_generic_hooked": {
        "HOOKS": True, "BITSET": False, "KPIVOT": True,
    },
}


def _search_template(ops, k, sink, san=None, obs=None):
    if BITSET:
        fast = ops.fast_ops()
        bit_at = fast.bit_at
        nbr_bits = fast.nbr_bits
        popcount = fast.popcount
        label_of = fast.label_of
    else:
        hot = ops.search_ops()
        expand = hot.expand
        retract = hot.retract
    sink_call = sink

    def search(r, c, depth):
        if HOOKS:
            if obs is not None:
                obs.on_node(depth, r)
        if BITSET:
            if not c:
                if len(r) >= k:
                    if HOOKS:
                        if san is not None:
                            san.on_emit(r)
                    sink_call(frozenset(map(label_of, r)))
                return
            if KPIVOT:
                if depth + popcount(c) < k:
                    return
            c_bits = c
            live = c_bits
            while live:
                w = live.bit_length() - 1
                live ^= bit_at[w]
                search(r + [w], c_bits & nbr_bits[w], depth + 1)
        else:
            if not c:
                if len(r) >= k:
                    if HOOKS:
                        if san is not None:
                            san.on_emit(r)
                    sink_call(frozenset(r))
                return
            if KPIVOT:
                if depth + len(c) < k:
                    return
            for v in list(c):
                child = expand(c, v)
                search(r + [v], child, depth + 1)
                retract(c, v)

    return search


def _variant_bitset_plain(ops, k, sink, san=None, obs=None):
    fast = ops.fast_ops()
    bit_at = fast.bit_at
    nbr_bits = fast.nbr_bits
    popcount = fast.popcount
    label_of = fast.label_of
    sink_call = sink

    def search(r, c, depth):
        if not c:
            if len(r) >= k:
                sink_call(frozenset(map(label_of, r)))
            return
        c_bits = c
        live = c_bits
        while live:
            w = live.bit_length() - 1
            live ^= bit_at[w]
            search(r + [w], c_bits & nbr_bits[w], depth + 1)

    return search


def _variant_generic_hooked(ops, k, sink, san=None, obs=None):
    hot = ops.search_ops()
    expand = hot.expand
    retract = hot.retract
    sink_call = sink

    def search(r, c, depth):
        if obs is not None:
            obs.on_node(depth, r)
        if not c:
            if len(r) >= k:
                if san is not None:
                    san.on_emit(r)
                sink_call(frozenset(r))
            return
        if depth + len(c) < k:
            return
        for v in list(c):
            child = expand(c, v)
            search(r + [v], child, depth + 1)
            retract(c, v)

    return search
