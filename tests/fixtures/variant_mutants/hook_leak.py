"""Seeded miscompile: a hook site survived in the hookless variant.

``_variant_bitset_nohooks`` is declared with ``HOOKS`` off but still
carries the ``obs.on_node`` observer site (and therefore still loads
the ``obs`` binding).  REP013 must report ``hook-leak`` — production
variants must be hook-free, not just hook-quiet.
"""

HOOKS = False
BITSET = False
KPIVOT = False

VARIANT_ENVS = {
    "_variant_bitset_nohooks": {
        "HOOKS": False, "BITSET": True, "KPIVOT": False,
    },
}


def _search_template(ops, k, sink, san=None, obs=None):
    if BITSET:
        fast = ops.fast_ops()
        bit_at = fast.bit_at
        nbr_bits = fast.nbr_bits
        label_of = fast.label_of
    else:
        hot = ops.search_ops()
        expand = hot.expand
        retract = hot.retract
    sink_call = sink

    def search(r, c, depth):
        if HOOKS:
            if obs is not None:
                obs.on_node(depth, r)
        if BITSET:
            if not c:
                if len(r) >= k:
                    sink_call(frozenset(map(label_of, r)))
                return
            c_bits = c
            live = c_bits
            while live:
                w = live.bit_length() - 1
                live ^= bit_at[w]
                search(r + [w], c_bits & nbr_bits[w], depth + 1)
        else:
            if not c:
                if len(r) >= k:
                    sink_call(frozenset(r))
                return
            for v in list(c):
                child = expand(c, v)
                search(r + [v], child, depth + 1)
                retract(c, v)

    return search


def _variant_bitset_nohooks(ops, k, sink, san=None, obs=None):
    fast = ops.fast_ops()
    bit_at = fast.bit_at
    nbr_bits = fast.nbr_bits
    label_of = fast.label_of
    sink_call = sink

    def search(r, c, depth):
        if obs is not None:
            obs.on_node(depth, r)
        if not c:
            if len(r) >= k:
                sink_call(frozenset(map(label_of, r)))
            return
        c_bits = c
        live = c_bits
        while live:
            w = live.bit_length() - 1
            live ^= bit_at[w]
            search(r + [w], c_bits & nbr_bits[w], depth + 1)

    return search
