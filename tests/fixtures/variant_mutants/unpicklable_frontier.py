"""Seeded escape bugs: frontier state that cannot cross a process.

Three REP014 sinks in one module:

* ``spawn_logger`` ships an ``open(...)`` handle in ``Process`` args;
* ``enumerate_shards`` dispatches ``_run_shard``, whose summary
  mutates the ``stats`` object it received from the parent (REP006
  reports the write itself; REP014 reports it at the boundary);
* ``FrontierOps.root_state`` returns frontier state with a lambda
  inside — unserializable the moment the work queue ships it.
"""

import multiprocessing


def _run_shard(job):
    graph, stats = job
    stats.calls += 1
    return graph


def enumerate_shards(shards):
    with multiprocessing.Pool() as pool:
        return pool.map(_run_shard, shards)


def spawn_logger(path):
    handle = open(path)
    worker = multiprocessing.Process(target=_run_shard, args=(handle,))
    worker.start()
    return worker


class FrontierOps:
    def root_state(self, graph):
        seed = lambda v: (v, graph)
        return {"graph": graph, "seed": seed}

    def search_ops(self):
        return self
