"""Seeded mutants: every REP015 failure family, with clean twins.

Each ``*_mutant`` function is a realistic way a RunKey builder rots —
stamping the current time into a salt, hashing the absolute store
path, folding a dict in insertion order, serializing without
``sort_keys`` — paired with the canonical clean form.  The REP015
tests assert the rule flags every mutant and stays silent on every
twin (and on ``open_for_salt``, the abspath-feeds-open shape the
analysis cache uses legitimately).
"""

import hashlib
import json
import os
import time


def stamped_salt_mutant():
    digest = hashlib.sha256()
    digest.update(repr(time.time()).encode())  # REP015: clock in a key
    return digest.hexdigest()


def session_fingerprint_mutant(graph):
    digest = hashlib.sha256()
    digest.update(repr(os.getpid()).encode())  # REP015: pid in a key
    digest.update(repr(id(graph)).encode())  # REP015: object identity
    return digest.hexdigest()


def path_salt_mutant(path):
    digest = hashlib.sha256()
    digest.update(os.path.abspath(path).encode())  # REP015: machine-local
    return digest.hexdigest()


def staged_path_salt_mutant(path):
    resolved = os.path.realpath(path)
    digest = hashlib.sha256()
    digest.update(resolved.encode())  # REP015: machine-local via a name
    return digest.hexdigest()


def config_fingerprint_mutant(config):
    digest = hashlib.sha256()
    for name, value in config.items():  # REP015: insertion order
        digest.update(("%s=%r" % (name, value)).encode())
    return digest.hexdigest()


def json_key_for_mutant(fields):
    payload = json.dumps(fields)  # REP015: no sort_keys
    return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# clean twins: the canonical forms of each mutant above
# ----------------------------------------------------------------------
def versioned_salt(version):
    digest = hashlib.sha256()
    digest.update(version.encode())
    return digest.hexdigest()


def config_fingerprint(config):
    digest = hashlib.sha256()
    for name, value in sorted(config.items()):
        digest.update(("%s=%r" % (name, value)).encode())
    return digest.hexdigest()


def json_key_for(fields):
    payload = json.dumps(fields, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def open_for_salt(path):
    # abspath feeding open() is fine: the *contents* are hashed, the
    # resolved path never enters the digest (salted_sources idiom).
    digest = hashlib.sha256()
    with open(os.path.abspath(path), "rb") as handle:
        digest.update(handle.read())
    return digest.hexdigest()


def helper_inside_key_for(fields):
    # A nested non-key helper may resolve paths for I/O; its body is
    # scoped by its own name, not the enclosing key function's.
    def locate(name):
        return os.path.join(os.getcwd(), name)

    payload = json.dumps(fields, sort_keys=True)
    assert locate("x")
    return hashlib.sha256(payload.encode()).hexdigest()
