"""REP008 — observer hook parity between the enumeration backends.

The REP007 test suite, recreated for the observability seam: the
committed backend pair must carry identical, non-empty obs-hook
fingerprints for both the recursions *and* the drivers, and
neutralizing a single ``obs.on_*`` call in either backend must make the
rule fire and name the drifting hook.
"""

import os
from pathlib import Path

from repro.analysis.fingerprint import (
    driver_obs_fingerprint_function,
    labels,
    obs_fingerprint_function,
)
from repro.analysis.registry import get_rule
from repro.analysis.rules.mirror import find_mirror_anchors
from repro.analysis.rules.obs import find_driver_anchors
from repro.analysis.runner import parse_files, run_rules
from repro.analysis.source import SourceFile

REPO = Path(__file__).resolve().parents[1]
DICT_BACKEND = REPO / "src" / "repro" / "core" / "pmuc.py"
KERNEL_BACKEND = REPO / "src" / "repro" / "kernel" / "enumerate.py"


def _rep008_findings(dict_text, kernel_text):
    files = [
        SourceFile(str(DICT_BACKEND), dict_text),
        SourceFile(str(KERNEL_BACKEND), kernel_text),
    ]
    kept, _suppressed = run_rules(files, [get_rule("REP008")])
    return kept


def _neutralize(text, fragment):
    """Replace the single line containing ``fragment`` with ``pass``.

    Keeping the indentation (and a ``pass`` statement) preserves the
    surrounding ``if obs is not None:`` guard's syntax, so the mutant
    still parses — the hook call alone disappears.
    """
    lines = text.splitlines(keepends=True)
    hits = [i for i, ln in enumerate(lines) if fragment in ln]
    assert len(hits) == 1, f"expected exactly one line with {fragment!r}"
    i = hits[0]
    indent = lines[i][: len(lines[i]) - len(lines[i].lstrip())]
    lines[i] = f"{indent}pass\n"
    return "".join(lines)


# ----------------------------------------------------------------------
# the committed pair
# ----------------------------------------------------------------------
def test_committed_recursion_fingerprints_match_and_are_nontrivial():
    files = parse_files([str(DICT_BACKEND), str(KERNEL_BACKEND)])
    (_, dict_func), (_, kernel_func) = find_mirror_anchors(files)
    dict_seq = labels(obs_fingerprint_function(dict_func))
    kernel_seq = labels(obs_fingerprint_function(kernel_func))
    assert dict_seq == kernel_seq
    # "No hooks anywhere" must not be able to pass silently: the
    # committed recursions call every recursion hook, and the detail
    # suffix keeps the three prune kinds distinguishable.
    for expected in (
        "hook:on_node",
        "hook:on_emit",
        "hook:on_expand",
        "hook:on_prune:kpivot",
        "hook:on_prune:mpivot",
        "hook:on_prune:size",
    ):
        assert expected in dict_seq, dict_seq


def test_committed_driver_streams_match_and_are_nontrivial():
    files = parse_files([str(DICT_BACKEND), str(KERNEL_BACKEND)])
    (_, dict_run), (_, kernel_run) = find_driver_anchors(files)
    dict_seq = labels(driver_obs_fingerprint_function(dict_run))
    kernel_seq = labels(driver_obs_fingerprint_function(kernel_run))
    assert dict_seq == kernel_seq
    # The fixed phase sequence plus gauges and finish must all appear.
    for expected in (
        "hook:on_gauge:vertices_input",
        "hook:on_gauge:vertices_search",
        "hook:on_phase:reduction",
        "hook:on_phase:ordering",
        "hook:on_phase:recursion",
        "hook:on_phase:sanitize",
        "hook:on_finish",
    ):
        assert expected in dict_seq, dict_seq


def test_rep008_silent_on_the_committed_pair():
    assert (
        _rep008_findings(
            DICT_BACKEND.read_text(), KERNEL_BACKEND.read_text()
        )
        == []
    )


# ----------------------------------------------------------------------
# recursion hook drift fires, in either direction
# ----------------------------------------------------------------------
def test_rep008_fires_when_the_dict_side_drops_the_node_hook():
    mutant = _neutralize(
        DICT_BACKEND.read_text(), "obs.on_node(depth, r)"
    )
    found = _rep008_findings(mutant, KERNEL_BACKEND.read_text())
    assert len(found) == 1
    assert found[0].rule == "REP008"
    assert "observer hook drift" in found[0].message
    assert "on_node" in found[0].message
    assert found[0].path == str(KERNEL_BACKEND)


def test_rep008_fires_when_the_kernel_drops_the_expand_hook():
    mutant = _neutralize(
        KERNEL_BACKEND.read_text(), "obs.on_expand(depth)"
    )
    found = _rep008_findings(DICT_BACKEND.read_text(), mutant)
    assert len(found) == 1
    assert "on_expand" in found[0].message


def test_rep008_fires_when_the_kernel_drops_the_mpivot_prune_hook():
    # The kernel has four kpivot prune sites that dedupe pairwise; the
    # detail suffix keeps the *kind* visible, so losing the single
    # mpivot site cannot hide behind an adjacent kpivot hook.
    mutant = _neutralize(
        KERNEL_BACKEND.read_text(),
        'obs.on_prune("mpivot", depth, len(unexpanded))',
    )
    found = _rep008_findings(DICT_BACKEND.read_text(), mutant)
    assert len(found) == 1
    assert "mpivot" in found[0].message


def test_rep008_fires_when_the_dict_side_drops_the_size_prune_hook():
    mutant = _neutralize(
        DICT_BACKEND.read_text(), 'obs.on_prune("size", depth)'
    )
    found = _rep008_findings(mutant, KERNEL_BACKEND.read_text())
    assert len(found) == 1
    assert "size" in found[0].message


# ----------------------------------------------------------------------
# driver hook drift fires (the mutation-test satellite: an on_phase
# deletion in one backend must fail the rule)
# ----------------------------------------------------------------------
def test_rep008_fires_when_the_kernel_driver_drops_a_phase_hook():
    mutant = _neutralize(
        KERNEL_BACKEND.read_text(),
        'obs.on_phase("ordering", self._ordering_s)',
    )
    found = _rep008_findings(DICT_BACKEND.read_text(), mutant)
    assert len(found) == 1
    assert "driver-hook drift" in found[0].message
    assert "on_phase" in found[0].message


def test_rep008_fires_when_the_dict_driver_drops_the_finish_hook():
    mutant = _neutralize(
        DICT_BACKEND.read_text(), "obs.on_finish(self._result.stats)"
    )
    found = _rep008_findings(mutant, KERNEL_BACKEND.read_text())
    assert len(found) == 1
    assert "on_finish" in found[0].message


# ----------------------------------------------------------------------
# missing anchors keep the rule silent (scan-set safety, as REP007)
# ----------------------------------------------------------------------
def test_rep008_silent_when_an_anchor_is_missing():
    files = [SourceFile(str(DICT_BACKEND), DICT_BACKEND.read_text())]
    kept, _ = run_rules(files, [get_rule("REP008")])
    assert kept == []


def test_rep008_names_both_anchor_paths_in_its_message():
    mutant = _neutralize(
        DICT_BACKEND.read_text(), "obs.on_node(depth, r)"
    )
    found = _rep008_findings(mutant, KERNEL_BACKEND.read_text())
    message = found[0].message
    assert os.path.join("core", "pmuc.py") in message
    assert os.path.join("kernel", "enumerate.py") in message
