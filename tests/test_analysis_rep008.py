"""REP008 — engine observer-hook coverage.

The REP007 test suite, recreated for the observability seam: the
committed engine must call every observer hook — each prune kind, each
gauge, each phase span — and neutralizing an ``obs.on_*`` call in
``repro.engine.driver`` must make the rule fire and name the missing
hook.
"""

from pathlib import Path

from repro.analysis.fingerprint import hook_labels
from repro.analysis.registry import get_rule
from repro.analysis.rules.conformance import find_engine_anchors
from repro.analysis.rules.obs import DRIVER_HOOKS, RECURSION_HOOKS
from repro.analysis.runner import run_rules
from repro.analysis.source import SourceFile

REPO = Path(__file__).resolve().parents[1]
ENGINE_DRIVER = REPO / "src" / "repro" / "engine" / "driver.py"
KERNEL_BACKEND = REPO / "src" / "repro" / "kernel" / "enumerate.py"


def _rep008_findings(driver_text):
    src = SourceFile(str(ENGINE_DRIVER), driver_text)
    kept, _suppressed = run_rules([src], [get_rule("REP008")])
    return kept


def _neutralize(text, fragment, count=1):
    """Replace every line containing ``fragment`` with ``pass``.

    Keeping the indentation (and a ``pass`` statement) preserves the
    surrounding ``if obs is not None:`` guard's syntax, so the mutant
    still parses — the hook call alone disappears.
    """
    lines = text.splitlines(keepends=True)
    hits = [i for i, ln in enumerate(lines) if fragment in ln]
    assert len(hits) == count, f"expected {count} line(s) with {fragment!r}"
    for i in hits:
        indent = lines[i][: len(lines[i]) - len(lines[i].lstrip())]
        lines[i] = f"{indent}pass\n"
    return "".join(lines)


# ----------------------------------------------------------------------
# the committed engine
# ----------------------------------------------------------------------
def test_committed_engine_covers_every_required_hook():
    src = SourceFile.read(str(ENGINE_DRIVER))
    recursion, driver = find_engine_anchors(src)
    assert recursion is not None, "engine recursion anchor missing"
    assert driver is not None, "engine run-lifecycle anchor missing"
    rec_labels = set(hook_labels(recursion, hook_root="obs", detail=True))
    drv_labels = set(hook_labels(driver, hook_root="obs", detail=True))
    # The detail suffix keeps the three prune kinds, the two gauges and
    # the four phase spans individually visible.
    assert rec_labels >= set(RECURSION_HOOKS), rec_labels
    assert drv_labels >= set(DRIVER_HOOKS), drv_labels


def test_rep008_silent_on_the_committed_engine():
    assert _rep008_findings(ENGINE_DRIVER.read_text()) == []


# ----------------------------------------------------------------------
# recursion hook deletions fire
# ----------------------------------------------------------------------
def test_rep008_fires_when_the_expand_hook_is_dropped():
    mutant = _neutralize(
        ENGINE_DRIVER.read_text(), "obs.on_expand(depth)"
    )
    found = _rep008_findings(mutant)
    assert len(found) == 1
    assert found[0].rule == "REP008"
    assert "on_expand" in found[0].message
    assert found[0].path == str(ENGINE_DRIVER)


def test_rep008_fires_when_the_mpivot_prune_hook_is_dropped():
    # The kpivot prune has two sites but mpivot has one; the detail
    # suffix keeps the kinds separate, so losing the single mpivot
    # site cannot hide behind a surviving kpivot hook.
    mutant = _neutralize(
        ENGINE_DRIVER.read_text(),
        'obs.on_prune("mpivot", depth, len(unexpanded))',
    )
    found = _rep008_findings(mutant)
    assert len(found) == 1
    assert "mpivot" in found[0].message


def test_rep008_fires_when_the_size_prune_hook_is_dropped():
    mutant = _neutralize(
        ENGINE_DRIVER.read_text(), 'obs.on_prune("size", depth)'
    )
    found = _rep008_findings(mutant)
    assert len(found) == 1
    assert "size" in found[0].message


def test_rep008_fires_when_both_kpivot_prune_sites_are_dropped():
    mutant = _neutralize(
        ENGINE_DRIVER.read_text(),
        'obs.on_prune("kpivot", depth)',
        count=2,
    )
    found = _rep008_findings(mutant)
    assert len(found) == 1
    assert "kpivot" in found[0].message


# ----------------------------------------------------------------------
# run-lifecycle hook deletions fire (the mutation-test satellite: an
# on_phase/on_gauge deletion in the engine must fail the rule)
# ----------------------------------------------------------------------
def test_rep008_fires_when_a_phase_hook_is_dropped():
    mutant = _neutralize(
        ENGINE_DRIVER.read_text(),
        'obs.on_phase("sanitize", sanitize_s)',
    )
    found = _rep008_findings(mutant)
    assert len(found) == 1
    assert "run lifecycle" in found[0].message
    assert "on_phase:sanitize" in found[0].message


def test_rep008_fires_when_the_search_gauge_is_dropped():
    mutant = _neutralize(
        ENGINE_DRIVER.read_text(),
        'obs.on_gauge("vertices_search", ops.search_size())',
    )
    found = _rep008_findings(mutant)
    assert len(found) == 1
    assert "vertices_search" in found[0].message


def test_rep008_fires_when_the_finish_hook_is_dropped():
    mutant = _neutralize(
        ENGINE_DRIVER.read_text(),
        "obs.on_finish(self.result.stats)",
    )
    found = _rep008_findings(mutant)
    assert len(found) == 1
    assert "on_finish" in found[0].message


def test_rep008_fires_when_the_root_progress_hook_is_dropped():
    # The progress/flight seam: losing the per-seed on_root call would
    # silently blind the ETA estimator and the worker heartbeats.
    mutant = _neutralize(
        ENGINE_DRIVER.read_text(),
        "obs.on_root(root_index, len(roots), c)",
    )
    found = _rep008_findings(mutant)
    assert len(found) == 1
    assert "on_root" in found[0].message
    assert "run lifecycle" in found[0].message


# ----------------------------------------------------------------------
# files without the engine anchors keep the rule silent
# ----------------------------------------------------------------------
def test_rep008_silent_on_files_without_engine_anchors():
    src = SourceFile.read(str(KERNEL_BACKEND))
    kept, _ = run_rules([src], [get_rule("REP008")])
    assert kept == []
