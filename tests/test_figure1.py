"""The paper's running example (Figure 1) and its worked examples."""

import pytest

from repro.core import enumerate_maximal_cliques, maximum_eta_clique, muc, pmuc
from repro.datasets import FIGURE1_EDGES, figure1_core_subgraph, figure1_graph
from repro.uncertain import clique_probability


class TestReconstruction:
    def test_shape(self):
        g = figure1_graph()
        assert g.num_vertices == 8
        assert g.num_edges == len(FIGURE1_EDGES)

    def test_core_subgraph_is_5_clique(self):
        g = figure1_core_subgraph()
        assert g.num_vertices == 5
        assert g.num_edges == 10

    def test_example1_candidate_set(self):
        """After expanding v4 with η = 0.65, the candidate set is
        {(v3, .9), (v5, .9), (v6, 1), (v7, 1), (v8, .9)}."""
        g = figure1_graph()
        expected = {3: 0.9, 5: 0.9, 6: 1.0, 7: 1.0, 8: 0.9}
        assert g.neighbors(4) == expected


class TestSection1Claim:
    def test_muc_explores_31_subsets(self):
        """Section 1: set enumeration explores all 31 subsets of the
        single maximal (1, 0.5)-clique {v4..v8}."""
        result = muc(figure1_core_subgraph(), 1, 0.5, use_reduction=False)
        assert result.cliques == [frozenset({4, 5, 6, 7, 8})]
        assert result.stats.calls - 1 == 31  # minus the root call

    def test_pivot_explores_far_fewer(self):
        result = pmuc(figure1_core_subgraph(), 1, 0.5)
        assert result.cliques == [frozenset({4, 5, 6, 7, 8})]
        assert result.stats.calls < 16


class TestSection3Example:
    def test_4567_is_maximal_eta_clique_but_not_maximal_clique(self):
        g = figure1_graph()
        eta = 0.65
        assert clique_probability(g, [4, 5, 6, 7]) >= eta
        assert clique_probability(g, [4, 5, 6, 7, 8]) < eta
        backbone = g.to_deterministic()
        assert backbone.is_clique([4, 5, 6, 7, 8])  # so {4,5,6,7} is not
        # maximal in the deterministic sense, yet is a maximal η-clique:
        cliques = set(enumerate_maximal_cliques(g, 1, eta, "pmuc+").cliques)
        assert frozenset({4, 5, 6, 7}) in cliques


class TestExample2:
    ETA = 0.53

    def test_eta_below_09_to_the_6(self):
        assert self.ETA < 0.9**6

    def test_maximum_clique_containing_v1(self):
        g = figure1_graph()
        best = None
        for clique in enumerate_maximal_cliques(g, 1, self.ETA, "pmuc+").cliques:
            if 1 in clique and (best is None or len(clique) > len(best)):
                best = clique
        assert best == frozenset({1, 2, 3, 8})

    def test_maximum_clique_containing_v4(self):
        g = figure1_graph()
        best = max(
            (
                c
                for c in enumerate_maximal_cliques(g, 1, self.ETA, "pmuc+").cliques
                if 4 in c
            ),
            key=len,
        )
        assert best == frozenset({4, 5, 6, 7, 8})

    def test_maximum_eta_clique_helper(self):
        g = figure1_graph()
        assert maximum_eta_clique(g, self.ETA) == frozenset({4, 5, 6, 7, 8})
