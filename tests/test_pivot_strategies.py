"""Unit tests for the pivot-selection strategies (Section 4.6)."""

import pytest

from repro.exceptions import ParameterError
from repro.core.pivot import (
    PivotContext,
    get_strategy,
    select_first,
    select_hybrid,
    select_max_color,
    select_max_degree,
    STRATEGIES,
)
from repro.deterministic import Graph


def make_context(**overrides) -> PivotContext:
    base = dict(
        degree={"a": 5, "b": 3, "c": 5},
        color={"a": 0, "b": 1, "c": 2},
        color_number={"a": 2, "b": 4, "c": 3},
        lower_bound={"a": 1, "b": 1, "c": 1},
        k=3,
    )
    base.update(overrides)
    return PivotContext(**base)


class TestStrategies:
    def test_first(self):
        assert select_first(["b", "a"], make_context()) == "b"

    def test_max_degree_breaks_by_value(self):
        ctx = make_context()
        picked = select_max_degree(["a", "b", "c"], ctx)
        assert picked in {"a", "c"}  # both have degree 5

    def test_max_color(self):
        assert select_max_color(["a", "b", "c"], make_context()) == "b"

    def test_hybrid_prefers_lower_bound_when_above_k(self):
        ctx = make_context(lower_bound={"a": 1, "b": 9, "c": 1})
        # b has the max color number AND LB(b) = 9 > k = 3 -> pick b.
        assert select_hybrid(["a", "b", "c"], ctx) == "b"

    def test_hybrid_falls_back_to_degree_color(self):
        ctx = make_context()  # all LB = 1 <= k
        # among max-degree {a, c}, c has the larger color number.
        assert select_hybrid(["a", "b", "c"], ctx) == "c"

    def test_registry_lookup(self):
        assert set(STRATEGIES) == {"first", "degree", "color", "hybrid"}
        assert get_strategy("degree") is select_max_degree
        with pytest.raises(ParameterError):
            get_strategy("nope")


class TestPivotContext:
    def test_from_backbone(self):
        g = Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
        ctx = PivotContext.from_backbone(g, k=2)
        assert ctx.degree[2] == 3
        # vertex 2's neighbors span all three other colors or fewer.
        assert 1 <= ctx.color_number[2] <= 3
        assert all(lb == 1 for lb in ctx.lower_bound.values())

    def test_raise_lower_bound(self):
        ctx = make_context()
        ctx.raise_lower_bound(["a", "b"], 7)
        assert ctx.lower_bound["a"] == 7
        ctx.raise_lower_bound(["a"], 4)  # never lowers
        assert ctx.lower_bound["a"] == 7

    def test_raise_lower_bound_unknown_vertex(self):
        ctx = make_context()
        ctx.raise_lower_bound(["zz"], 3)
        assert ctx.lower_bound["zz"] == 3
