"""Algorithm 1 (MUC baseline): correctness, stats, and reductions."""

import pytest

from repro.exceptions import ParameterError
from repro.core import muc
from repro.datasets import figure1_core_subgraph, figure1_graph
from repro.uncertain import (
    UncertainGraph,
    exact_maximal_eta_cliques_by_worlds,
)
from tests.conftest import (
    as_sorted_sets,
    brute_force_maximal_k_eta_cliques,
    random_uncertain_graph,
)


class TestCorrectness:
    def test_triangle(self, triangle_graph):
        result = muc(triangle_graph, 3, 0.5)
        assert result.cliques == [frozenset({0, 1, 2})]

    def test_matches_world_oracle_once(self):
        """One (slow) spot check against the possible-world oracle; the
        broad sweeps below use the cheap Eq.-2 brute force, which the
        world oracle itself validates in test_possible_worlds.py."""
        g = random_uncertain_graph(0, 6, 0.5)
        assert g.num_edges <= 12
        oracle = set(exact_maximal_eta_cliques_by_worlds(g, 2, 0.4))
        assert set(muc(g, 2, 0.4).cliques) == oracle

    def test_matches_brute_force_on_random_graphs(self):
        for seed in range(12):
            g = random_uncertain_graph(seed, 8, 0.55)
            for k, eta in ((1, 0.4), (2, 0.2), (3, 0.6)):
                oracle = set(brute_force_maximal_k_eta_cliques(g, k, eta))
                for reduction in (False, True):
                    got = set(muc(g, k, eta, use_reduction=reduction).cliques)
                    assert got == oracle, (seed, k, eta, reduction)

    def test_k1_reports_isolated_vertices(self):
        g = UncertainGraph([(0, 1, 0.9)])
        g.add_vertex(7)
        got = as_sorted_sets(muc(g, 1, 0.5).cliques)
        assert got == [frozenset({7}), frozenset({0, 1})]

    def test_high_eta_splits_into_edges(self, triangle_graph):
        got = as_sorted_sets(muc(triangle_graph, 2, 0.85).cliques)
        assert got == [frozenset({0, 1}), frozenset({0, 2}), frozenset({1, 2})]

    def test_empty_graph(self):
        assert muc(UncertainGraph(), 1, 0.5).cliques == []

    def test_no_results_when_k_too_large(self, triangle_graph):
        assert muc(triangle_graph, 4, 0.5).cliques == []


class TestParameters:
    @pytest.mark.parametrize("k", [0, -1, 1.5])
    def test_bad_k(self, triangle_graph, k):
        with pytest.raises(ParameterError):
            muc(triangle_graph, k, 0.5)

    @pytest.mark.parametrize("eta", [0, -0.5, 1.1])
    def test_bad_eta(self, triangle_graph, eta):
        with pytest.raises(ParameterError):
            muc(triangle_graph, 3, eta)


class TestSearchBehaviour:
    def test_explores_all_subsets_of_a_maximal_clique(self):
        """The paper's Section-1 example: on the {v4..v8} subgraph with
        k=1, η=0.5, set enumeration visits all 31 non-empty subsets."""
        g = figure1_core_subgraph()
        result = muc(g, 1, 0.5, use_reduction=False)
        assert result.cliques == [frozenset({4, 5, 6, 7, 8})]
        # 31 subset nodes + the root call.
        assert result.stats.calls == 32

    def test_outputs_counted(self, two_communities):
        result = muc(two_communities, 3, 0.5)
        assert result.stats.outputs == len(result.cliques)

    def test_callback_streams_without_storing(self, two_communities):
        seen = []
        result = muc(two_communities, 3, 0.5, on_clique=seen.append)
        assert result.cliques == []
        assert len(seen) == result.stats.outputs > 0

    def test_reduction_shrinks_search(self):
        g = figure1_graph()
        # k=4: the reduction peels nothing essential but prunes the
        # sparse periphery, so the reduced search visits fewer nodes.
        full = muc(g, 4, 0.5, use_reduction=False)
        reduced = muc(g, 4, 0.5, use_reduction=True)
        assert as_sorted_sets(full.cliques) == as_sorted_sets(reduced.cliques)
        assert reduced.stats.calls <= full.stats.calls

    def test_connected_components_processed_independently(self):
        g = UncertainGraph([(0, 1, 0.9), (2, 3, 0.9)])
        got = as_sorted_sets(muc(g, 2, 0.5).cliques)
        assert got == [frozenset({0, 1}), frozenset({2, 3})]
