"""Shared fixtures and graph builders for the test suite."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.deterministic.graph import Graph
from repro.uncertain.graph import UncertainGraph

#: A grid of exact probabilities used by property-based tests: products
#: of Fractions are exact, so η-clique decisions cannot depend on the
#: multiplication order (which differs between algorithms).
EXACT_PROBABILITIES = tuple(Fraction(i, 10) for i in (3, 5, 7, 9, 10))


def random_uncertain_graph(
    seed: int,
    n: int,
    density: float = 0.5,
    probabilities=(0.3, 0.5, 0.7, 0.9, 1.0),
) -> UncertainGraph:
    """Deterministic random uncertain graph on vertices 0..n-1."""
    rng = random.Random(seed)
    graph = UncertainGraph()
    for v in range(n):
        graph.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                graph.add_edge(u, v, rng.choice(probabilities))
    return graph


def random_deterministic_graph(seed: int, n: int, density: float = 0.5) -> Graph:
    """Deterministic random graph on vertices 0..n-1."""
    rng = random.Random(seed)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                graph.add_edge(u, v)
    return graph


def brute_force_maximal_k_eta_cliques(graph: UncertainGraph, k: int, eta) -> list:
    """Brute-force oracle via Eq. 2 (exact with Fraction probabilities).

    Enumerates all vertex subsets, keeps η-cliques, filters the maximal
    ones of size >= k.  O(2^n) in vertices only — much cheaper than the
    possible-world oracle, which independently validates Eq. 2 itself
    in ``test_possible_worlds.py``.
    """
    from itertools import combinations

    from repro.uncertain import clique_probability

    vertices = graph.vertices()
    eta_cliques = {frozenset((v,)) for v in vertices}
    frontier = list(eta_cliques)
    for size in range(2, len(vertices) + 1):
        nxt = []
        for subset in combinations(vertices, size):
            if clique_probability(graph, subset) >= eta:
                s = frozenset(subset)
                eta_cliques.add(s)
                nxt.append(s)
        if not nxt:
            break
        frontier = nxt
    del frontier
    return as_sorted_sets(
        s
        for s in eta_cliques
        if len(s) >= k
        and not any(
            frozenset(s | {v}) in eta_cliques for v in vertices if v not in s
        )
    )


def as_sorted_sets(cliques) -> list:
    """Canonical order-independent view of a clique collection."""
    return sorted(
        (frozenset(c) for c in cliques),
        key=lambda s: (len(s), sorted(map(repr, s))),
    )


@pytest.fixture
def triangle_graph() -> UncertainGraph:
    """A 3-clique with probability 0.9 on every edge."""
    return UncertainGraph([(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9)])


@pytest.fixture
def two_communities() -> UncertainGraph:
    """Two 4-cliques sharing vertex 3, strong inside, weak across."""
    graph = UncertainGraph()
    for group in ([0, 1, 2, 3], [3, 4, 5, 6]):
        for i, u in enumerate(group):
            for v in group[i + 1 :]:
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v, 0.9)
    graph.add_edge(0, 6, 0.2)
    return graph
