"""``repro-store`` — the query front end over the run store.

The byte-identity contract is the headline: ``query show`` renders
only stored bytes, so its output for a digest is identical whether the
entry was written seconds or months before, across any number of
invocations — the CI ``store`` job asserts the same property end to
end.  Exit codes mirror ``repro.obs diff``: 0 clean, 1 content
difference, 2 unusable input.
"""

import csv
import io
import json

import pytest

from repro.core.config import PMUC_PLUS_CONFIG
from repro.core.pmuc import PivotEnumerator
from repro.datasets.figure1 import figure1_graph
from repro.store.cli import main
from repro.store.key import run_key_for
from repro.store.records import stamped_record
from repro.store.store import RunStore


@pytest.fixture
def populated(tmp_path):
    """A store holding two figure-1 runs at etas with different clique sets."""
    root = str(tmp_path / "store")
    store = RunStore(root)
    digests = {}
    for eta in (0.1, 0.6):
        result = PivotEnumerator(
            figure1_graph(), 3, eta, PMUC_PLUS_CONFIG
        ).run()
        key = run_key_for(figure1_graph(), 3, eta, PMUC_PLUS_CONFIG)
        record = stamped_record(
            "test:figure1", 0.5, len(result.cliques),
            result.stats.as_dict(), extra={"k": 3, "eta": repr(eta)},
        )
        digests[eta] = store.put_run(key, record, cliques=result.cliques)
    return root, digests


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_query_list_table_and_json(populated, capsys):
    root, digests = populated
    code, out = run_cli(capsys, "--store", root, "query", "list")
    assert code == 0
    assert "stored runs" in out
    for digest in digests.values():
        assert digest[:12] in out
    code, out = run_cli(
        capsys, "--store", root, "query", "list", "--format=json"
    )
    assert code == 0
    rows = json.loads(out)
    assert len(rows) == 2
    assert {row["digest"] for row in rows} == {
        digest[:12] for digest in digests.values()
    }


def test_query_list_csv_parses(populated, capsys):
    root, _ = populated
    code, out = run_cli(
        capsys, "--store", root, "query", "list", "--format=csv"
    )
    assert code == 0
    rows = list(csv.DictReader(io.StringIO(out)))
    assert len(rows) == 2
    assert all(row["violation"] == "-" for row in rows)


def test_query_show_is_byte_identical_across_invocations(populated, capsys):
    root, digests = populated
    renders = [
        run_cli(
            capsys, "--store", root, "query", "show", digests[0.1],
            "--format", fmt, "--cliques",
        )
        for fmt in ("table", "json", "table")
    ]
    assert all(code == 0 for code, _ in renders)
    assert renders[0][1] == renders[2][1]
    document = json.loads(renders[1][1])
    assert document["digest"] == digests[0.1]
    assert document["key"]["eta"] == "float:0.1"
    assert document["record"]["num_cliques"] == len(document["cliques"])


def test_query_show_accepts_unique_prefixes_only(populated, capsys):
    root, digests = populated
    code, out = run_cli(
        capsys, "--store", root, "query", "show", digests[0.1][:12]
    )
    assert code == 0
    code, _ = run_cli(capsys, "--store", root, "query", "show", "f" * 12)
    assert code == 2


def test_query_diff_flags_eta_and_stats_differences(populated, capsys):
    root, digests = populated
    code, out = run_cli(
        capsys, "--store", root, "query", "diff",
        digests[0.1], digests[0.6],
    )
    # Different eta -> different clique sets here: exit 1, and the key
    # row that differs says NO while shared axes say yes.
    assert code == 1
    rows = {
        line.split("|")[0].strip(): line
        for line in out.splitlines()
        if line.count("|") >= 3
    }
    assert rows["eta"].rstrip().endswith("NO")
    assert rows["k"].rstrip().endswith("yes")


def test_query_diff_identical_runs_exit_zero(populated, capsys):
    root, digests = populated
    code, out = run_cli(
        capsys, "--store", root, "query", "diff",
        digests[0.1], digests[0.1],
    )
    assert code == 0
    assert "NO" not in out


def test_query_export_jsonl_json_csv_agree(populated, capsys, tmp_path):
    root, digests = populated
    code, jsonl_out = run_cli(
        capsys, "--store", root, "query", "export", digests[0.1]
    )
    assert code == 0
    jsonl_rows = [
        json.loads(line) for line in jsonl_out.splitlines() if line
    ]
    code, json_out = run_cli(
        capsys, "--store", root, "query", "export", digests[0.1],
        "--format=json",
    )
    assert json.loads(json_out) == jsonl_rows
    code, csv_out = run_cli(
        capsys, "--store", root, "query", "export", digests[0.1],
        "--format=csv",
    )
    csv_rows = list(csv.DictReader(io.StringIO(csv_out)))
    assert [row["members"].split(";") for row in csv_rows] == jsonl_rows
    # --out writes the same body to a file.
    target = tmp_path / "cliques.jsonl"
    code, out = run_cli(
        capsys, "--store", root, "query", "export", digests[0.1],
        "--out", str(target),
    )
    assert code == 0
    assert target.read_text().strip() == jsonl_out.strip()


def test_run_command_stores_then_replays(tmp_path, capsys, monkeypatch):
    """`repro-store run` twice: miss then hit, identical rendered entry."""
    import repro.store.cli as cli_module

    monkeypatch.setattr(
        "repro.datasets.load_dataset",
        lambda name, seed=0, probability_model="exponential":
            figure1_graph(),
    )
    root = str(tmp_path / "store")
    argv = [
        "--store", root, "run", "--dataset", "figure1",
        "--k", "3", "--eta", "0.1",
    ]
    code, first = run_cli(capsys, *argv)
    assert code == 0
    assert first.startswith("miss ")
    code, second = run_cli(capsys, *argv)
    assert code == 0
    assert second.startswith("hit ")
    # Below the status line the rendered stored entry is byte-identical.
    assert first.splitlines()[1:] == second.splitlines()[1:]
    assert cli_module is not None


def test_run_command_rejects_bad_eta(tmp_path, capsys):
    code = main([
        "--store", str(tmp_path / "s"), "run", "--dataset", "figure1",
        "--k", "3", "--eta", "not-a-number",
    ])
    assert code == 2
