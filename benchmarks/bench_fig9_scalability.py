"""Exp-6 / Fig. 9 — scalability on vertex/edge samples of the largest
stand-in (Soflow).

Paper shape: all algorithms grow smoothly with |V| and |E|; the pivot
algorithms stay well below MUC at every fraction.
"""

import pytest

from repro.core import enumerate_maximal_cliques
from repro.datasets import (
    load_weighted_edges,
    sample_edges,
    sample_vertices,
    uncertain_from_weights,
)

from benchmarks.conftest import BENCH_ETA, BENCH_K

FRACTIONS = (0.2, 0.6, 1.0)


@pytest.fixture(scope="module")
def soflow_edges():
    return load_weighted_edges("soflow")


@pytest.mark.parametrize("fraction", FRACTIONS)
@pytest.mark.parametrize("mode", ("vertices", "edges"))
@pytest.mark.parametrize("algorithm", ("muc", "pmuc+"))
def test_fig9_sample(benchmark, soflow_edges, fraction, mode, algorithm):
    sampler = sample_vertices if mode == "vertices" else sample_edges
    graph = uncertain_from_weights(sampler(soflow_edges, fraction, seed=0))
    result = benchmark.pedantic(
        enumerate_maximal_cliques,
        args=(graph, BENCH_K, BENCH_ETA, algorithm),
        kwargs={"on_clique": lambda c: None},
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info.update(
        mode=mode, fraction=fraction, algorithm=algorithm,
        vertices=graph.num_vertices, edges=graph.num_edges,
        cliques=result.stats.outputs,
    )
