"""Extension benchmarks (beyond the paper's figures).

* maximum-clique branch-and-bound vs full enumeration;
* dynamic index repair vs from-scratch re-enumeration;
* the general hereditary framework vs its no-pivot baseline;
* exact-Fraction arithmetic overhead vs floats.
"""

import pytest

from repro.core import (
    DynamicCliqueIndex,
    SearchStats,
    enumerate_maximal_cliques,
    maximum_k_eta_clique,
)
from repro.hereditary import CliqueProperty, enumerate_maximal_sets

from benchmarks.conftest import BENCH_ETA, BENCH_K


def test_maximum_clique_vs_enumeration(benchmark, soflow):
    stats_holder = {}

    def run():
        stats = SearchStats()
        best = maximum_k_eta_clique(soflow, BENCH_K, BENCH_ETA, stats)
        stats_holder["calls"] = stats.calls
        return best

    best = benchmark.pedantic(run, rounds=3, iterations=1)
    full = enumerate_maximal_cliques(
        soflow, BENCH_K, BENCH_ETA, "pmuc+", on_clique=lambda c: None
    )
    benchmark.extra_info.update(
        best_size=len(best),
        bnb_calls=stats_holder["calls"],
        enumeration_calls=full.stats.calls,
    )
    assert stats_holder["calls"] < full.stats.calls


def test_dynamic_repair_vs_recompute(benchmark, enron):
    index = DynamicCliqueIndex(enron, BENCH_K, BENCH_ETA)
    edges = [(u, v, p) for u, v, p in enron.edges()][:20]
    state = {"i": 0}

    def one_cycle():
        u, v, p = edges[state["i"] % len(edges)]
        state["i"] += 1
        index.remove_edge(u, v)
        index.add_edge(u, v, p)

    benchmark(one_cycle)
    benchmark.extra_info.update(cliques=len(index), repairs=index.repairs)
    assert index.check()


def test_hereditary_pivot_vs_plain(benchmark, enron):
    backbone = enron.subgraph(list(enron.vertices())[:120]).to_deterministic()
    prop = CliqueProperty(backbone)

    result = benchmark.pedantic(
        enumerate_maximal_sets, args=(prop,), rounds=2, iterations=1
    )
    plain = enumerate_maximal_sets(prop, use_pivot=False)
    benchmark.extra_info.update(
        pivot_calls=result.stats.calls, plain_calls=plain.stats.calls
    )
    assert set(result.cliques) == set(plain.cliques)


@pytest.mark.parametrize("mode", ("float", "fraction"))
def test_exact_arithmetic_overhead(benchmark, enron, mode):
    graph = enron if mode == "float" else enron.with_exact_probabilities()
    result = benchmark.pedantic(
        enumerate_maximal_cliques,
        args=(graph, BENCH_K, BENCH_ETA, "pmuc+"),
        kwargs={"on_clique": lambda c: None},
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info.update(mode=mode, cliques=result.stats.outputs)
