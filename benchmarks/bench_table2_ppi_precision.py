"""Exp-8 / Table 2 — clustering quality on the PPI stand-in.

Benchmarks each method's end-to-end clustering (prediction + scoring)
and asserts the paper's headline: PMUCE has the best precision, the
density-based baselines over-merge the planted complexes.
"""

import pytest

from repro.applications import (
    ppi_cluster_with_cliques,
    ppi_cluster_with_core,
    ppi_cluster_with_truss,
    score_clusters,
    table2_reports,
)
from repro.baselines import pkwik_cluster, uscan
from repro.datasets import generate_ppi_network


@pytest.fixture(scope="module")
def ppi():
    return generate_ppi_network(seed=0)


METHODS = {
    "USCAN": lambda g: uscan(g, 0.5, 3),
    "PCluster": lambda g: [c for c in pkwik_cluster(g, seed=0) if len(c) >= 2],
    "UKCore": lambda g: ppi_cluster_with_core(g, 4, 0.1),
    "UKTruss": lambda g: ppi_cluster_with_truss(g, 5, 0.1),
    "PMUCE": lambda g: ppi_cluster_with_cliques(g, 5, 0.1),
}


@pytest.mark.parametrize("method", sorted(METHODS))
def test_table2_method(benchmark, ppi, method):
    cluster = METHODS[method]

    def run():
        return score_clusters(method, cluster(ppi.graph), ppi)

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info.update(report.as_row())


def test_table2_pmuce_wins(ppi):
    reports = {r.algorithm: r for r in table2_reports(ppi)}
    best = max(reports.values(), key=lambda r: r.precision)
    assert best.algorithm == "PMUCE"
    assert reports["PMUCE"].precision > 2 * reports["UKCore"].precision
