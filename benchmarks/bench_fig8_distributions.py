"""Exp-5 / Fig. 8 — effect of the edge-probability distribution.

MUC vs PMUC+ on the same topology under uniform / geometric / normal
probability models.  Paper shape: PMUC+ beats MUC under every model
(the pivot advantage is insensitive to the distribution).
"""

import pytest

from repro.core import enumerate_maximal_cliques
from repro.datasets import load_weighted_edges, uncertain_from_weights

from benchmarks.conftest import BENCH_ETA, BENCH_K

MODELS = ("uniform", "geometric", "normal")


@pytest.fixture(scope="module")
def graphs_by_model():
    edges = load_weighted_edges("soflow")
    return {
        model: uncertain_from_weights(edges, model) for model in MODELS
    }


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("algorithm", ("muc", "pmuc+"))
def test_fig8_distribution(benchmark, graphs_by_model, model, algorithm):
    graph = graphs_by_model[model]
    result = benchmark.pedantic(
        enumerate_maximal_cliques,
        args=(graph, BENCH_K, BENCH_ETA, algorithm),
        kwargs={"on_clique": lambda c: None},
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info.update(
        model=model, algorithm=algorithm, k=BENCH_K, eta=BENCH_ETA,
        cliques=result.stats.outputs, calls=result.stats.calls,
    )


def test_fig8_pivot_never_explores_more(graphs_by_model):
    for model, graph in graphs_by_model.items():
        baseline = enumerate_maximal_cliques(
            graph, BENCH_K, BENCH_ETA, "muc", on_clique=lambda c: None
        )
        pivoted = enumerate_maximal_cliques(
            graph, BENCH_K, BENCH_ETA, "pmuc+", on_clique=lambda c: None
        )
        assert pivoted.stats.outputs == baseline.stats.outputs, model
        assert pivoted.stats.calls <= baseline.stats.calls, model
