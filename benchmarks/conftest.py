"""Shared fixtures for the per-figure/table benchmark suite.

Every benchmark regenerates one paper artifact on the seeded stand-in
datasets.  Graphs are session-scoped so dataset construction is not
measured, and the default parameters are the scaled grids documented in
DESIGN.md (k ∈ [4, 12] instead of the paper's [6, 20]; η ∈ [0.01, 0.1]
unchanged).
"""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset

#: Benchmark-time defaults (one representative point per figure; the
#: full sweeps live in ``repro.bench.experiments`` / the CLI).
BENCH_K = 6
BENCH_ETA = 0.1


@pytest.fixture(scope="session")
def enron():
    return load_dataset("enron")


@pytest.fixture(scope="session")
def cahepph():
    return load_dataset("cahepph")


@pytest.fixture(scope="session")
def soflow():
    return load_dataset("soflow")


@pytest.fixture(scope="session")
def dataset_by_name(enron, cahepph, soflow):
    return {"enron": enron, "cahepph": cahepph, "soflow": soflow}
