"""Shared fixtures for the per-figure/table benchmark suite.

Every benchmark regenerates one paper artifact on the seeded stand-in
datasets.  Graphs are session-scoped so dataset construction is not
measured, and the default parameters are the scaled grids documented in
DESIGN.md (k ∈ [4, 12] instead of the paper's [6, 20]; η ∈ [0.01, 0.1]
unchanged).
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.datasets import load_dataset

#: Benchmark-time defaults (one representative point per figure; the
#: full sweeps live in ``repro.bench.experiments`` / the CLI).
BENCH_K = 6
BENCH_ETA = 0.1

#: Sections recorded via the ``table_json`` fixture, keyed by id —
#: the same ``{id: {"title": ..., "rows": [...]}}`` layout the CLI's
#: ``--json`` dump and :func:`repro.bench.report.to_json` use.
_TABLE_SECTIONS: Dict[str, Dict[str, object]] = {}


def pytest_addoption(parser):
    parser.addoption(
        "--table-json",
        action="store",
        default=None,
        metavar="PATH",
        help=(
            "write every row recorded via the table_json fixture to "
            "PATH as deterministic JSON (repro.bench.report.to_json), "
            "so figure scripts can consume benchmark tables directly"
        ),
    )


@pytest.fixture(scope="session")
def table_json():
    """Recorder: ``table_json(section_id, rows, title=...)``.

    Rows accumulate across the whole session and are written once at
    exit when ``--table-json PATH`` was given; without the option the
    recorder is a cheap no-op sink, so benchmarks always record.
    """

    def record(section: str, rows, title: str = None) -> None:
        entry = _TABLE_SECTIONS.setdefault(
            section, {"title": title or section, "rows": []}
        )
        if title:
            entry["title"] = title
        entry["rows"].extend(rows)

    return record


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--table-json", default=None)
    if path and _TABLE_SECTIONS:
        from repro.bench.report import to_json

        with open(path, "w", encoding="utf-8") as fh:
            fh.write(to_json(_TABLE_SECTIONS))


@pytest.fixture(scope="session")
def enron():
    return load_dataset("enron")


@pytest.fixture(scope="session")
def cahepph():
    return load_dataset("cahepph")


@pytest.fixture(scope="session")
def soflow():
    return load_dataset("soflow")


@pytest.fixture(scope="session")
def dataset_by_name(enron, cahepph, soflow):
    return {"enron": enron, "cahepph": cahepph, "soflow": soflow}
