"""Exp-3 / Fig. 5 — effect of the pivot-selection strategy.

PMUC-D (max degree) vs PMUC-CD (max color number) vs PMUC+ (hybrid).
Paper shape: PMUC+ fastest, PMUC-D worst.
"""

import pytest

from repro.bench import PIVOT_VARIANTS
from repro.core import PivotEnumerator

from benchmarks.conftest import BENCH_ETA, BENCH_K


@pytest.mark.parametrize("name", ("cahepph", "soflow"))
@pytest.mark.parametrize("variant", sorted(PIVOT_VARIANTS))
def test_fig5_pivot_strategy(benchmark, dataset_by_name, name, variant):
    graph = dataset_by_name[name]
    config = PIVOT_VARIANTS[variant]

    def run():
        return PivotEnumerator(
            graph, BENCH_K, BENCH_ETA, config, on_clique=lambda c: None
        ).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info.update(
        dataset=name, variant=variant, k=BENCH_K, eta=BENCH_ETA,
        cliques=result.stats.outputs, calls=result.stats.calls,
    )
    assert result.stats.outputs > 0


def test_fig5_strategies_agree(dataset_by_name):
    graph = dataset_by_name["soflow"]
    outputs = {
        variant: set(PivotEnumerator(graph, BENCH_K, BENCH_ETA, config).run().cliques)
        for variant, config in PIVOT_VARIANTS.items()
    }
    assert outputs["PMUC-D"] == outputs["PMUC-CD"] == outputs["PMUC+"]
