"""Exp-4 / Fig. 7 — pruning power of the graph reduction techniques.

Reports (via extra_info) the number of vertices surviving TopCore vs
TopTriangle over the k-sweep, and asserts the paper's claim (Lemma 10):
TopTriangle never keeps more vertices than TopCore.
"""

import pytest

from repro.bench import experiment_fig6_fig7

from benchmarks.conftest import BENCH_ETA


@pytest.mark.parametrize("name", ("cahepph", "soflow"))
def test_fig7_remaining_vertices(benchmark, name):
    rows = benchmark.pedantic(
        experiment_fig6_fig7,
        kwargs=dict(datasets=(name,), ks=(4, 6, 8, 10), etas=(BENCH_ETA,)),
        rounds=1,
        iterations=1,
    )
    series = {}
    for row in rows:
        series.setdefault((row["sweep"], row["k"], row["eta"]), {})[
            row["technique"]
        ] = row["remaining_vertices"]
    benchmark.extra_info["series"] = {
        f"k={k},eta={eta}": techniques
        for (_sweep, k, eta), techniques in series.items()
    }
    for techniques in series.values():
        assert techniques["TopTriangle"] <= techniques["TopCore"]
