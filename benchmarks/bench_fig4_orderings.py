"""Exp-2 / Fig. 4 — effect of the outer-loop vertex ordering.

PMUC-R (as-is) vs PMUC-C (degeneracy) vs PMUC+ ((Top_k, η)-core); all
other techniques identical.  Paper shape: PMUC+ <= PMUC-C <= PMUC-R.
"""

import pytest

from repro.bench import ORDERING_VARIANTS
from repro.core import PivotEnumerator

from benchmarks.conftest import BENCH_ETA, BENCH_K


@pytest.mark.parametrize("name", ("cahepph", "soflow"))
@pytest.mark.parametrize("variant", sorted(ORDERING_VARIANTS))
def test_fig4_ordering(benchmark, dataset_by_name, name, variant):
    graph = dataset_by_name[name]
    config = ORDERING_VARIANTS[variant]

    def run():
        return PivotEnumerator(
            graph, BENCH_K, BENCH_ETA, config, on_clique=lambda c: None
        ).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info.update(
        dataset=name, variant=variant, k=BENCH_K, eta=BENCH_ETA,
        cliques=result.stats.outputs, calls=result.stats.calls,
    )
    assert result.stats.outputs > 0


def test_fig4_orderings_agree(dataset_by_name):
    """All three orderings enumerate the identical clique set."""
    graph = dataset_by_name["cahepph"]
    outputs = {}
    for variant, config in ORDERING_VARIANTS.items():
        result = PivotEnumerator(graph, BENCH_K, BENCH_ETA, config).run()
        outputs[variant] = set(result.cliques)
    assert outputs["PMUC-R"] == outputs["PMUC-C"] == outputs["PMUC+"]
