"""Exp-10 / Table 3 — task-driven team formation on the DBLP stand-in.

Benchmarks team formation for the anchor author under two topics and
asserts Table 3's qualitative outcome: the clique team is compact and
topic-specific while the UKCore team is enormous.
"""

import pytest

from repro.applications import form_teams
from repro.datasets import generate_collaboration_network

TOPICS = ("databases", "information networks")


@pytest.fixture(scope="module")
def collaboration():
    return generate_collaboration_network(seed=0)


@pytest.mark.parametrize("topic", TOPICS)
def test_table3_topic(benchmark, collaboration, topic):
    results = benchmark.pedantic(
        form_teams,
        args=(collaboration, topic, "anchor-0"),
        rounds=2,
        iterations=1,
    )
    by_method = {r.method: r for r in results}
    benchmark.extra_info.update(
        {m: r.size for m, r in by_method.items()}
    )
    assert "anchor-0" in by_method["PMUCE"].members
    assert by_method["PMUCE"].size < by_method["UKCore"].size


def test_table3_teams_depend_on_topic(collaboration):
    teams = {
        topic: {r.method: r for r in form_teams(collaboration, topic, "anchor-0")}[
            "PMUCE"
        ].members
        for topic in TOPICS
    }
    assert teams["databases"] != teams["information networks"]
