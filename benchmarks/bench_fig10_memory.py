"""Exp-7 / Fig. 10 — memory overhead of the enumeration algorithms.

Measures peak tracemalloc bytes per algorithm; the paper's claim is
that all three stay within a small multiple of the graph footprint
(the search is depth-first, so the state is O(n + m)).
"""

import pytest

from repro.bench import peak_memory_bytes
from repro.core import enumerate_maximal_cliques
from repro.datasets import load_dataset

from benchmarks.conftest import BENCH_ETA, BENCH_K


@pytest.mark.parametrize("name", ("enron", "cahepph", "soflow"))
@pytest.mark.parametrize("algorithm", ("muc", "pmuc", "pmuc+"))
def test_fig10_memory(benchmark, dataset_by_name, name, algorithm):
    graph = dataset_by_name[name]
    graph_bytes = peak_memory_bytes(lambda: load_dataset(name))

    def measure():
        return peak_memory_bytes(
            lambda: enumerate_maximal_cliques(
                graph, BENCH_K, BENCH_ETA, algorithm, on_clique=lambda c: None
            )
        )

    peak = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info.update(
        dataset=name, algorithm=algorithm,
        graph_mb=round(graph_bytes / 1e6, 3), peak_mb=round(peak / 1e6, 3),
    )
    # DFS state stays within a small multiple of the graph footprint.
    assert peak < 40 * max(graph_bytes, 1)
