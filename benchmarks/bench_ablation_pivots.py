"""Ablation (beyond the paper's figures) — each pruning layer of PMUC+.

Quantifies what DESIGN.md's design choices buy: the M-pivot variants
(Sections 4.2-4.3), the K-pivot variants (Section 5.1) and the graph
reductions (Section 5.2), each toggled independently.
"""

import pytest

from repro.bench import ABLATION_VARIANTS
from repro.core import PivotEnumerator

from benchmarks.conftest import BENCH_ETA, BENCH_K


@pytest.mark.parametrize("variant", sorted(ABLATION_VARIANTS))
def test_ablation_variant(benchmark, cahepph, variant):
    config = ABLATION_VARIANTS[variant]

    def run():
        return PivotEnumerator(
            cahepph, BENCH_K, BENCH_ETA, config, on_clique=lambda c: None
        ).run()

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info.update(
        variant=variant, calls=result.stats.calls,
        cliques=result.stats.outputs,
    )


def test_ablation_layers_only_help(cahepph):
    """Each added pruning layer reduces (or preserves) search calls and
    never changes the output set."""
    results = {
        variant: PivotEnumerator(cahepph, BENCH_K, BENCH_ETA, config).run()
        for variant, config in ABLATION_VARIANTS.items()
    }
    reference = set(results["no-pivot"].cliques)
    for variant, result in results.items():
        assert set(result.cliques) == reference, variant
    assert (
        results["improved-mpivot"].stats.calls
        <= results["no-pivot"].stats.calls
    )
    assert (
        results["full-pmuc+"].stats.calls
        <= results["no-pivot"].stats.calls
    )
