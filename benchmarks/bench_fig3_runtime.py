"""Exp-1 / Fig. 3 — runtime of MUC vs PMUC vs PMUC+.

One benchmark per (dataset, algorithm) at the representative default
point (k = 6, η = 0.1); the k- and η-sweeps that regenerate the full
figure are exercised at a coarse grid in ``test_fig3_series`` and are
available in full via ``repro-bench fig3``.

Paper shape to reproduce: PMUC+ <= PMUC < MUC, with the gap growing on
denser graphs and larger k.
"""

import pytest

from repro.bench import experiment_fig3
from repro.core import enumerate_maximal_cliques

from benchmarks.conftest import BENCH_ETA, BENCH_K

ALGORITHMS = ("muc", "pmuc", "pmuc+")


@pytest.mark.parametrize("name", ("enron", "cahepph", "soflow"))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig3_runtime(benchmark, dataset_by_name, name, algorithm):
    graph = dataset_by_name[name]
    result = benchmark.pedantic(
        enumerate_maximal_cliques,
        args=(graph, BENCH_K, BENCH_ETA, algorithm),
        kwargs={"on_clique": lambda c: None},
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info.update(
        dataset=name, k=BENCH_K, eta=BENCH_ETA,
        cliques=result.stats.outputs, calls=result.stats.calls,
    )
    assert result.stats.calls > 0


def test_fig3_series(benchmark, table_json):
    """Coarse version of the full Fig. 3 sweep; the series (per
    dataset × sweep × algorithm) lands in extra_info."""
    rows = benchmark.pedantic(
        experiment_fig3,
        kwargs=dict(datasets=("enron",), ks=(4, 6, 8), etas=(0.05, 0.1)),
        rounds=1,
        iterations=1,
    )
    table_json(
        "fig3", rows, title="Fig. 3: runtime of MUC / PMUC / PMUC+"
    )
    benchmark.extra_info["series"] = [
        f"{r['sweep']}={r['k'] if r['sweep'] == 'k' else r['eta']}"
        f" {r['algorithm']}={r['seconds']}s/{r['cliques']}c"
        for r in rows
    ]
    # The paper's claim at the aggregate level: the pivot algorithm
    # never explores more tree nodes than set enumeration.
    by_key = {}
    for r in rows:
        by_key.setdefault((r["sweep"], r["k"], r["eta"]), {})[r["algorithm"]] = r
    for group in by_key.values():
        assert group["pmuc"]["calls"] <= group["muc"]["calls"]
        assert group["pmuc"]["cliques"] == group["muc"]["cliques"]
        assert group["pmuc+"]["cliques"] == group["muc"]["cliques"]
