"""Sampling-substrate benchmarks (estimators, stratification, α-scores).

Not a paper figure — supporting evidence that the estimation substrate
is usable at the stand-in scale and that stratification buys accuracy
per sample, as Li et al. (TKDE'16) report.
"""

import pytest

from repro.sampling import (
    estimate,
    reliability,
    sample_edge_matrix,
    stratified_estimate,
)
from repro.uncertain import (
    alpha_maximal_cliques,
    clique_probability,
    maximal_clique_probability,
)

from benchmarks.conftest import BENCH_ETA, BENCH_K


def test_naive_estimator(benchmark, enron):
    result = benchmark.pedantic(
        estimate,
        args=(enron, lambda w: 1.0 if w.num_edges > 1000 else 0.0),
        kwargs={"samples": 200, "seed": 0},
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["value"] = result.value


def test_vectorized_sampling(benchmark, enron):
    matrix, edges = benchmark(sample_edge_matrix, enron, 500, 0)
    benchmark.extra_info["worlds"] = matrix.shape[0]
    assert matrix.shape == (500, len(edges))


def test_stratified_estimator(benchmark, enron):
    u, v, _p = next(iter(enron.edges()))
    result = benchmark.pedantic(
        stratified_estimate,
        args=(enron, lambda w: 1.0 if w.has_edge(u, v) else 0.0),
        kwargs={"samples": 200, "pivots": [(u, v)], "seed": 0},
        rounds=2,
        iterations=1,
    )
    assert result.value == pytest.approx(float(enron.probability(u, v)))


def test_reliability_estimate(benchmark, enron):
    vertices = enron.vertices()
    s, t = vertices[0], vertices[-1]
    result = benchmark.pedantic(
        reliability,
        args=(enron, s, t),
        kwargs={"samples": 100, "seed": 0},
        rounds=2,
        iterations=1,
    )
    assert 0.0 <= result.value <= 1.0


def test_alpha_maximal_scoring(benchmark, enron):
    scored = benchmark.pedantic(
        alpha_maximal_cliques,
        args=(enron, BENCH_K, BENCH_ETA, 0.0),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["cliques"] = len(scored)
    for clique, alpha in scored[:5]:
        assert alpha <= clique_probability(enron, clique)
        assert alpha == maximal_clique_probability(enron, clique)
