"""Exp-9 / Fig. 11 — community search on uncertain knowledge graphs.

Benchmarks the three community-search methods around the paper's two
queries ("plant" on the CN15K stand-in, "mlb" on the NL27K stand-in)
and asserts the qualitative outcome: the clique community is compact
and topically pure, UKCore/UKTruss are large and mixed.
"""

import pytest

from repro.applications import search_communities
from repro.datasets import generate_knowledge_graph

QUERIES = {
    "cn15k": ("conceptnet", "plant", 0.001),
    "nl27k": ("nell", "mlb", 0.1),
}


@pytest.fixture(scope="module")
def knowledge_graphs():
    return {
        name: generate_knowledge_graph(flavor=flavor, seed=0)
        for name, (flavor, _q, _eta) in QUERIES.items()
    }


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_fig11_query(benchmark, knowledge_graphs, name):
    flavor, query, eta = QUERIES[name]
    knowledge = knowledge_graphs[name]

    def run():
        return search_communities(
            knowledge.graph, query, 4, eta, knowledge, query
        )

    results = benchmark.pedantic(run, rounds=2, iterations=1)
    by_method = {r.method: r for r in results}
    benchmark.extra_info.update(
        {m: f"{r.size}v/{r.num_edges}e/purity={r.purity}" for m, r in by_method.items()}
    )
    pmuce = by_method["PMUCE"]
    assert pmuce.purity == 1.0
    assert pmuce.size <= by_method["UKCore"].size
    assert by_method["UKCore"].purity < 1.0
