"""Exp-4 / Fig. 6 — runtime of the graph reduction techniques.

TopCore ((Top_k, η)-core, Li et al.) vs TopTriangle (core followed by
the (Top_k, η)-triangle of Section 5.2, as PMUC+ applies it).  Paper
shape: TopCore is cheap and flat; TopTriangle costs more, increasingly
so for small k / η.
"""

import pytest

from repro.reduction import topk_core, topk_triangle

from benchmarks.conftest import BENCH_ETA, BENCH_K


@pytest.mark.parametrize("name", ("cahepph", "soflow"))
def test_fig6_topcore(benchmark, dataset_by_name, name):
    graph = dataset_by_name[name]
    core = benchmark(topk_core, graph, BENCH_K - 1, BENCH_ETA)
    benchmark.extra_info.update(
        dataset=name, technique="TopCore",
        remaining_vertices=core.num_vertices,
    )
    assert core.num_vertices <= graph.num_vertices


@pytest.mark.parametrize("name", ("cahepph", "soflow"))
def test_fig6_toptriangle(benchmark, dataset_by_name, name):
    graph = dataset_by_name[name]

    def reduce():
        core = topk_core(graph, BENCH_K - 1, BENCH_ETA)
        return topk_triangle(core, BENCH_K - 2, BENCH_ETA)

    reduced = benchmark(reduce)
    benchmark.extra_info.update(
        dataset=name, technique="TopTriangle",
        remaining_vertices=reduced.num_vertices,
    )
    assert reduced.num_vertices <= graph.num_vertices
