"""Table 1 — dataset statistics of the nine stand-ins.

Benchmarks the statistics pipeline (load + degeneracy) per dataset and
attaches the Table-1 row to the benchmark's ``extra_info``.
"""

import pytest

from repro.datasets import DATASET_NAMES, dataset_statistics


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_table1_row(benchmark, name):
    row = benchmark(dataset_statistics, name)
    benchmark.extra_info.update(row)
    assert row["|V|"] > 0 and row["|E|"] > 0
    assert row["delta"] <= row["d_max"]
