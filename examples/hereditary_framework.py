"""The general pivot principle beyond cliques (Section 4.1).

Algorithm 2 enumerates the maximal subgraphs of *any* hereditary
property.  This example runs the same framework over four properties —
deterministic cliques, η-cliques, independent sets and bounded-degree
subgraphs — and shows the pivot's pruning effect on each.

Run:  python examples/hereditary_framework.py
"""

from repro.datasets import figure1_graph
from repro.hereditary import (
    BoundedDegreeProperty,
    CliqueProperty,
    EtaCliqueProperty,
    IndependentSetProperty,
    enumerate_maximal_sets,
)


def main() -> None:
    uncertain = figure1_graph()
    backbone = uncertain.to_deterministic()
    properties = {
        "cliques (deterministic)": CliqueProperty(backbone),
        "eta-cliques (eta=0.65)": EtaCliqueProperty(uncertain, 0.65),
        "independent sets": IndependentSetProperty(backbone),
        "max-degree-1 subgraphs": BoundedDegreeProperty(backbone, 1),
    }
    print("maximal P-subgraphs of the Figure-1 graph\n")
    header = f"{'property':26s} {'maximal':>8s} {'calls':>7s} {'no-pivot':>9s}"
    print(header)
    print("-" * len(header))
    for name, prop in properties.items():
        with_pivot = enumerate_maximal_sets(prop, use_pivot=True)
        without = enumerate_maximal_sets(prop, use_pivot=False)
        assert set(with_pivot.cliques) == set(without.cliques)
        print(
            f"{name:26s} {len(with_pivot):>8d} "
            f"{with_pivot.stats.calls:>7d} {without.stats.calls:>9d}"
        )
    print("\nlargest maximal independent set:",
          sorted(max(
              enumerate_maximal_sets(IndependentSetProperty(backbone)).cliques,
              key=len,
          )))


if __name__ == "__main__":
    main()
