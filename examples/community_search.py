"""Community search on uncertain knowledge graphs (Exp-9 / Fig. 11).

Given a query entity, compares the community returned by the maximal
(k, η)-clique method against UKCore and UKTruss on planted-topic
knowledge graphs mimicking CN15K ("plant") and NL27K ("mlb").

Run:  python examples/community_search.py
"""

from repro.applications import search_communities
from repro.bench import print_table
from repro.datasets import generate_knowledge_graph


def main() -> None:
    for flavor, dataset, query, eta in (
        ("conceptnet", "CN15K stand-in", "plant", 0.001),
        ("nell", "NL27K stand-in", "mlb", 0.1),
    ):
        knowledge = generate_knowledge_graph(flavor=flavor, seed=0)
        print(f"{dataset}: {knowledge.graph}  query={query!r}  eta={eta}")
        results = search_communities(
            knowledge.graph, query, k=4, eta=eta,
            knowledge=knowledge, topic=query,
        )
        print_table([r.as_row() for r in results])
        pmuce = next(r for r in results if r.method == "PMUCE")
        sample = sorted(pmuce.vertices)[:6]
        print(f"  PMUCE community sample: {sample} ...\n")


if __name__ == "__main__":
    main()
