"""Task-driven team formation (Exp-10 / Table 3).

Finds the most reliable compact team containing a query author for two
different research topics on a DBLP-style collaboration network, and
contrasts it with the (much larger) UKCore/UKTruss answers.

Run:  python examples/team_formation.py
"""

from repro.applications import form_teams
from repro.bench import print_table
from repro.datasets import generate_collaboration_network


def main() -> None:
    network = generate_collaboration_network(seed=0)
    query = "anchor-0"  # plays the role of "Jiawei Han" in Table 3
    for topic in ("databases", "information networks"):
        print(f'query <T="{topic}", Q="{query}">, eta = 1e-10')
        results = form_teams(network, topic, query)
        print_table([r.as_row() for r in results])
        pmuce = next(r for r in results if r.method == "PMUCE")
        print(f"  team: {sorted(pmuce.members)}\n")


if __name__ == "__main__":
    main()
