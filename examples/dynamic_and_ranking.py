"""Beyond one-shot enumeration: dynamic updates and clique ranking.

This example exercises the extension APIs built on top of the paper's
enumerator:

* :class:`repro.core.DynamicCliqueIndex` — keep the maximal-clique set
  current while edges arrive and expire (a streaming PPI pipeline);
* :func:`repro.core.maximum_k_eta_clique` — branch-and-bound maximum
  clique without full enumeration;
* :func:`repro.uncertain.alpha_maximal_cliques` — re-score threshold
  cliques by the exact probability they are maximal *in a realization*
  (the α-maximality of Mukherjee et al.);
* graph statistics and JSON persistence.

Run:  python examples/dynamic_and_ranking.py
"""

from repro.core import DynamicCliqueIndex, maximum_k_eta_clique, top_r_maximal_cliques
from repro.datasets import generate_ppi_network
from repro.uncertain import alpha_maximal_cliques, summarize, to_json

K, ETA = 5, 0.1


def main() -> None:
    network = generate_ppi_network(seed=1, num_proteins=150, num_complexes=15,
                                   noise_edges=400)
    graph = network.graph
    print("graph summary:", summarize(graph).as_row())

    # --- dynamic maintenance ----------------------------------------
    index = DynamicCliqueIndex(graph, K, ETA)
    print(f"\ninitial maximal ({K}, {ETA})-cliques: {len(index)}")
    anchor = sorted(network.complexes[0])[:2]
    index.remove_edge(*anchor)
    print(f"after deleting {tuple(anchor)}: {len(index)} "
          f"(repairs so far: {index.repairs})")
    index.add_edge(anchor[0], anchor[1], 0.95)
    print(f"after re-inserting it stronger: {len(index)}")
    assert index.check()  # matches a from-scratch enumeration

    # --- maximum clique without enumeration --------------------------
    best = maximum_k_eta_clique(index.graph, K, ETA)
    print(f"\nmaximum clique size: {len(best)}")

    # --- ranking ------------------------------------------------------
    print("\ntop 3 maximal cliques by (size, probability):")
    for clique, prob in top_r_maximal_cliques(index.graph, K, ETA, r=3):
        print(f"  size={len(clique)}  Pr={float(prob):.4f}")

    print("\nmost world-maximal cliques (alpha-maximality):")
    for clique, prob in alpha_maximal_cliques(index.graph, K, ETA, 0.0)[:3]:
        print(f"  size={len(clique)}  Pr[maximal in a world]={float(prob):.4f}")

    # --- persistence ----------------------------------------------------
    document = to_json(index.graph, metadata={"k": K, "eta": ETA,
                                              "cliques": len(index)})
    print(f"\nserialized graph document: {len(document)} bytes of JSON")


if __name__ == "__main__":
    main()
