"""A full parameter study with the session and partition APIs.

Sweeps k on one dataset three ways and reports the cost of each:

1. naive — a fresh ``PMUC+`` run (reduction included) per k;
2. session — one :class:`CliqueQuerySession` whose core/triangle
   decompositions are computed once and sliced per k;
3. partitioned — the k = default query split into 4 independent seed
   chunks (what a parallel deployment would fan out).

Also exports the largest community of the final query as GraphViz DOT.

Run:  python examples/parameter_study.py
"""

import time

from repro.applications import community_to_dot
from repro.core import (
    CliqueQuerySession,
    enumerate_maximal_cliques,
    enumerate_partitioned,
)
from repro.datasets import load_dataset

ETA = 0.1
KS = (4, 5, 6, 7, 8, 9, 10)


def main() -> None:
    graph = load_dataset("soflow")
    print(f"dataset: {graph}\n")

    start = time.perf_counter()
    naive_counts = {}
    for k in KS:
        naive_counts[k] = len(enumerate_maximal_cliques(graph, k, ETA).cliques)
    naive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    session = CliqueQuerySession(graph, ETA)
    session_counts = session.size_profile(KS)
    session_seconds = time.perf_counter() - start

    assert session_counts == naive_counts
    print("k-sweep (maximal cliques per k):")
    for k in KS:
        print(f"  k={k:2d}: {naive_counts[k]}")
    print(f"\nnaive sweep:   {naive_seconds:.2f}s "
          f"(re-reduces the graph {len(KS)} times)")
    print(f"session sweep: {session_seconds:.2f}s "
          f"(one decomposition, sliced per k)")

    start = time.perf_counter()
    merged = enumerate_partitioned(graph, 6, ETA, parts=4)
    print(f"\npartitioned k=6 run: {len(merged)} cliques in "
          f"{time.perf_counter() - start:.2f}s across 4 independent chunks")

    biggest = max(merged.cliques, key=len)
    dot = community_to_dot(graph, biggest, query=sorted(biggest)[0],
                           name="largest_clique")
    print(f"\nlargest clique has {len(biggest)} members; "
          f"DOT drawing is {len(dot)} bytes (pipe to `dot -Tpng`)")


if __name__ == "__main__":
    main()
