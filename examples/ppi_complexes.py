"""Detecting protein complexes in an uncertain PPI network (Exp-8).

Generates a PPI-style uncertain graph with planted complexes, predicts
complexes with five methods (maximal (k, η)-cliques plus the paper's
four baselines) and scores them by pair-level precision against the
ground truth — a faithful re-run of Table 2 on the stand-in network.

Run:  python examples/ppi_complexes.py
"""

from repro.applications import table2_reports
from repro.bench import print_table
from repro.core import enumerate_maximal_cliques
from repro.datasets import generate_ppi_network


def main() -> None:
    network = generate_ppi_network(seed=0)
    graph = network.graph
    print(f"PPI stand-in: {graph} with {len(network.complexes)} planted "
          f"complexes")

    # What do the maximal (5, 0.1)-cliques look like?
    result = enumerate_maximal_cliques(graph, k=5, eta=0.1)
    sizes = sorted(len(c) for c in result.cliques)
    print(f"maximal (5, 0.1)-cliques: {len(result)} "
          f"(sizes {sizes[0]}..{sizes[-1]})")

    # Table 2: precision of each method against the planted complexes.
    rows = [report.as_row() for report in table2_reports(network)]
    print()
    print_table(rows, title="Table 2 (stand-in): clustering precision")

    best = max(rows, key=lambda r: r["PR"])
    print(f"\nbest precision: {best['Algorithm']} at {best['PR']}")


if __name__ == "__main__":
    main()
