"""Quickstart: maximal (k, η)-clique enumeration in a few lines.

Builds the paper's running example (Figure 1), enumerates its maximal
(k, η)-cliques with the state-of-the-art baseline and with the pivot
algorithms, and shows the search-effort statistics that motivate the
whole paper.

Run:  python examples/quickstart.py
"""

from repro import UncertainGraph, enumerate_maximal_cliques
from repro.datasets import figure1_graph
from repro.uncertain import clique_probability


def main() -> None:
    # --- 1. build an uncertain graph -------------------------------
    graph = UncertainGraph()
    graph.add_edge("alice", "bob", 0.9)
    graph.add_edge("bob", "carol", 0.8)
    graph.add_edge("alice", "carol", 0.85)
    graph.add_edge("carol", "dan", 0.3)

    result = enumerate_maximal_cliques(graph, k=2, eta=0.5)
    print("maximal (2, 0.5)-cliques of the toy graph:")
    for clique in result.cliques:
        print(f"  {sorted(clique)}  Pr = {clique_probability(graph, clique):.3f}")

    # --- 2. the paper's Figure-1 example ----------------------------
    fig1 = figure1_graph()
    print("\nFigure 1 graph:", fig1)
    for eta in (0.65, 0.53):
        cliques = enumerate_maximal_cliques(fig1, k=1, eta=eta)
        print(f"  eta={eta}: {len(cliques)} maximal cliques, "
              f"largest = {sorted(max(cliques, key=len))}")

    # --- 3. why pivoting matters ------------------------------------
    core = fig1.subgraph([4, 5, 6, 7, 8])  # a single 5-clique
    print("\nsearch effort on the 5-clique subgraph (k=1, eta=0.5):")
    for algorithm in ("muc-basic", "muc", "pmuc", "pmuc+"):
        run = enumerate_maximal_cliques(core, 1, 0.5, algorithm)
        print(f"  {algorithm:9s} recursive calls = {run.stats.calls:3d}  "
              f"cliques = {len(run)}")


if __name__ == "__main__":
    main()
