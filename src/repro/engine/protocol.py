"""The ``StateOps`` backend protocol of the search engine.

The engine (:mod:`repro.engine.driver`) owns everything the paper
specifies once: the recursion control flow of Algorithm 3, the M-pivot
stop (Theorem 4.2), the K-pivot size pruning (Lemmas 5–6), emission,
the sanitizer/observer hook sites, and counter flushing.  A backend
owns everything representation-specific: how ``C``/``X`` are stored,
how ``GenerateSet`` projects them, how ``Pr(R)`` accumulates (plain
products, ``-log`` sums, exact :class:`~fractions.Fraction`), how
pivots are scored, and how a recursion path decodes to vertex labels.

A backend is a :class:`StateOps` subclass.  The driver calls its
*prelude* methods once per run (reduction, ordering, hook wiring, seed
states) and then asks for a :class:`SearchOps` bundle — plain closures
the compiled recursion calls millions of times.  ``PROTOCOL_METHODS``
and ``PROTOCOL_ATTRS`` below are the single source of truth for the
protocol surface; the REP005 lint rule checks every registered backend
against them statically, and :func:`validate_state_ops` repeats the
check at runtime before a search starts.

Backend value conventions the engine relies on:

* ``C`` and ``X`` handles must be **falsy when empty** (the engine's
  leaf tests are ``if not c`` / ``if not x``).  The dict backend uses
  plain dicts; the kernel uses ``None`` / ``0``-bit handles.
* ``unit`` is the accumulated probability of a single-vertex clique
  (``1`` for products, ``0.0`` for ``-log`` sums) and ``log_domain``
  tells the sanitizer how to read emitted values.
* ``expand`` may mutate backend-shared state (the kernel's ``sv``
  array); the engine guarantees a matching ``retract`` for every
  ``expand``, including size-pruned branches.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

#: Class-level attributes every backend must define.
PROTOCOL_ATTRS = ("name", "log_domain", "unit")

#: Methods every backend must implement (see :class:`StateOps` for the
#: per-method contracts).
PROTOCOL_METHODS = (
    "prepare_reduction",
    "prepare_ordering",
    "search_size",
    "context",
    "bind_observer",
    "bind_sanitizer",
    "roots",
    "root_state",
    "search_ops",
)

#: Hot-path operations of the compiled recursion (see
#: :class:`SearchOps`).
SEARCH_OPS = (
    "open_node",
    "lb_refresh",
    "color_reaches",
    "expand",
    "retract",
    "decode",
)


class SearchOps:
    """The closure bundle the compiled recursion calls per node.

    Each field is a plain callable (typically a closure over the
    backend's precomputed arrays) — the engine loads them into closure
    cells once per run, so a call costs no attribute dispatch.

    ``open_node(c, size)``
        Return ``(keys, pivot)``: the rank-ordered candidate work list
        of handle ``c`` and the pivot chosen by the configured
        strategy.  Must also fold the lower-bound refresh for ``size``
        (= ``len(R) + 1``) over the candidates — every candidate ``v``
        participates in the η-clique ``R ∪ {v}``.
    ``lb_refresh(vertices, size)``
        Record that an η-clique of ``size`` contains ``vertices``
        (leaf-node refresh; may be a no-op when no strategy reads it).
    ``color_reaches(vertices, need)``
        True when ``vertices`` span at least ``need`` distinct colors
        (the Lemma-6 color bound; only called under ``kpivot=color``).
    ``expand(u, c, x, q, r, need1)``
        Expand candidate ``u`` (already appended to ``r``): return
        ``(q_new, c_child, x_child, x_token, viable)``.  ``c_child``
        is the projected candidate handle, ``viable`` the K-pivot
        size-bound verdict ``bound(c_child) >= need1``; ``x_child`` is
        only required when ``viable`` (a pruned branch never reads
        ``X``).  ``x_token`` is backend-private restore state handed
        back to ``retract``.
    ``retract(u, c, x, c_child, x_token)``
        Undo ``expand``: return the parent's ``(c, x)`` handles with
        ``u`` moved from the candidate set to the exclusion set.
        Called exactly once per ``expand``, viable or not.
    ``decode(r)``
        The emitted ``frozenset`` of vertex labels for path ``r``.
    """

    __slots__ = SEARCH_OPS

    def __init__(
        self,
        *,
        open_node: Callable,
        lb_refresh: Callable,
        color_reaches: Callable,
        expand: Callable,
        retract: Callable,
        decode: Callable,
    ) -> None:
        self.open_node = open_node
        self.lb_refresh = lb_refresh
        self.color_reaches = color_reaches
        self.expand = expand
        self.retract = retract
        self.decode = decode


class StateOps:
    """Abstract base of the backend protocol.

    Subclasses must define the :data:`PROTOCOL_ATTRS` class attributes
    and implement every :data:`PROTOCOL_METHODS` method.  Instances
    additionally carry ``graph`` — the original (unreduced) uncertain
    graph, which the driver hands to the sanitizer.
    """

    #: Backend name, as accepted by ``PivotConfig(backend=...)`` and
    #: stamped into observation artifacts.
    name = ""
    #: True when accumulated probabilities are ``-log`` sums.
    log_domain = False
    #: Accumulated probability of a single-vertex clique.
    unit: object = 1

    def prepare_reduction(self, reduced_graph) -> None:
        """Apply (or adopt) the pre-enumeration graph reduction.

        ``reduced_graph`` is an optional already-reduced uncertain
        graph (the partitioned/parallel drivers reduce once and ship
        the result to workers); ``None`` means reduce here.
        """
        raise NotImplementedError

    def prepare_ordering(self, order) -> None:
        """Compute (or adopt) the vertex ordering and pivot context.

        ``order`` is an optional precomputed label sequence over the
        reduced graph.  Runs after :meth:`prepare_reduction`.
        """
        raise NotImplementedError

    def search_size(self) -> int:
        """Number of vertices in the (reduced) search graph."""
        raise NotImplementedError

    def context(self) -> Tuple[List, Dict, List]:
        """``(vertices, color, edges)`` for the sanitizer's context
        hooks — the surviving vertex labels, the pivot coloring, and
        the backbone edge list (each in the backend's native id
        space; see :meth:`bind_sanitizer`)."""
        raise NotImplementedError

    def bind_observer(self, obs) -> None:
        """Give the observer backend-specific decoding state (or no-op).

        ``obs`` may be None when observation is off.
        """
        raise NotImplementedError

    def bind_sanitizer(self, san):
        """Return the sanitizer adapter the recursion should call.

        Backends whose recursion works on translated ids wrap ``san``
        in an id→label adapter here; others return it unchanged.
        """
        raise NotImplementedError

    def roots(self, seeds):
        """The outer-loop seed vertices, in enumeration order.

        ``seeds`` is an optional collection of vertex labels
        restricting the roots (see ``PivotEnumerator.run``).
        """
        raise NotImplementedError

    def root_state(self, v) -> Tuple[object, object]:
        """Initial ``(C, X)`` handles for seed ``v`` (Algorithm 3,
        lines 3–4): neighbors ordered after/before ``v`` whose edge
        survives the η threshold."""
        raise NotImplementedError

    def search_ops(self) -> SearchOps:
        """The hot-path :class:`SearchOps` bundle for this run.

        Called once per run, after both ``prepare_*`` methods.
        """
        raise NotImplementedError

    def fast_ops(self):
        """Optional fast-path capability surface (default: absent).

        A backend whose state is bitset-shaped may return a namespace
        of raw hot-state arrays (bitset adjacency, ``-log`` rows, the
        shared ``sv`` array, per-color bit masks, popcount, ...) that
        the engine's specializer inlines into its bitset recursion
        variant.  Returning ``None`` — the default — keeps the backend
        on the generic :class:`SearchOps` variant.  This is a
        capability, not part of :data:`PROTOCOL_METHODS`: backends
        are complete without it.

        Called after both ``prepare_*`` methods, like
        :meth:`search_ops`.
        """
        return None


#: Registered backend factories: ``name -> callable(graph, k, eta,
#: config) -> StateOps``.  Registration happens at backend-module
#: import time; the registry is the discovery surface for the
#: differential tests and the docs recipe — the enumerator facades
#: keep their explicit dispatch (the kernel needs a support check
#: before it can be chosen).
_BACKENDS: Dict[str, Callable] = {}


def register_backend(name: str, factory: Callable) -> None:
    """Register a backend factory under ``name`` (last wins)."""
    _BACKENDS[name] = factory


def backend_factory(name: str) -> Callable:
    """Look up a registered backend factory by name."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"no backend registered under {name!r}; "
            f"known: {sorted(_BACKENDS)}"
        ) from None


def registered_backends() -> List[str]:
    """Names of all currently registered backends, sorted."""
    return sorted(_BACKENDS)


def validate_state_ops(ops) -> None:
    """Runtime conformance check mirrored statically by REP005.

    Raises :class:`TypeError` when ``ops`` is missing a protocol
    method/attribute or its :class:`SearchOps` bundle is incomplete.
    """
    missing = [
        attr
        for attr in PROTOCOL_ATTRS + PROTOCOL_METHODS
        if not hasattr(ops, attr)
    ]
    if missing:
        raise TypeError(
            f"{type(ops).__name__} does not implement the StateOps "
            f"protocol: missing {missing}"
        )
    if not hasattr(ops, "graph"):
        raise TypeError(
            f"{type(ops).__name__} instances must carry the original "
            "graph as .graph (the sanitizer checks against it)"
        )
