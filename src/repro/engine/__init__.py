"""The backend-agnostic search engine.

One recursion, many state representations: :mod:`repro.engine.driver`
holds the single copy of the paper's pivot search (Algorithm 3 with
the M-/K-pivot stopping rules), and :mod:`repro.engine.protocol`
defines the narrow ``StateOps`` surface a backend implements to plug
in.  See ``docs/architecture.md`` for the layering diagram and the
"adding a backend" recipe.
"""

from repro.engine.driver import SearchEngine, build_search
from repro.engine.protocol import (
    PROTOCOL_ATTRS,
    PROTOCOL_METHODS,
    SEARCH_OPS,
    SearchOps,
    StateOps,
    backend_factory,
    register_backend,
    registered_backends,
    validate_state_ops,
)

__all__ = [
    "PROTOCOL_ATTRS",
    "PROTOCOL_METHODS",
    "SEARCH_OPS",
    "SearchEngine",
    "SearchOps",
    "StateOps",
    "backend_factory",
    "build_search",
    "register_backend",
    "registered_backends",
    "validate_state_ops",
]
