"""The one search-tree driver behind every enumeration backend.

This module holds the paper's recursion exactly once.  The control
flow of ``PMUCE`` (Algorithm 3, lines 6–21) — the M-pivot do-while with
periphery re-evaluation (Theorem 4.2, Lemmas 3–4), the K-pivot size
stop (Lemmas 5–6), the threaded maximum η-clique ``P``, emission, and
every sanitizer/observer hook site — lives in :func:`build_search`;
the run lifecycle (reduction/ordering phases, hook wiring, the seed
loop, counter flushing) lives in :class:`SearchEngine`.  Backends
supply only state algebra through the
:class:`~repro.engine.protocol.StateOps` protocol, so a new backend
cannot diverge from the search semantics: there is no second copy to
drift.

Performance notes.  The recursion is compiled once per run into a
closure whose free variables hold the backend's hot-path ops, the
config flags, and the search counters — a cell load costs the same as
a local, where repeated attribute lookups across ~10⁶ calls are a
measurable slice of the runtime.  Counters are folded into the shared
:class:`~repro.core.stats.SearchStats` once, by ``flush``.  A viable
child with no candidates is inlined (it only counts itself, possibly
emits, and returns its ``p`` argument), so the dominant leaf case
skips both the recursive call and the ``list(r)`` copy that would
have threaded through it.
"""

from __future__ import annotations

import sys
from time import perf_counter

from repro.engine.protocol import validate_state_ops


class _StopSearch(Exception):
    """Internal signal: the configured output limit was reached."""


def build_search(ops, config, k, stats, sink, limit, san=None, obs=None):
    """Compile the recursion into a closure; return ``(search, flush)``.

    ``san`` is the backend's sanitizer adapter (or None) and ``obs``
    the :class:`~repro.obs.observer.Observer` (or None); every hook
    fires from exactly one site here, which the REP007/REP008 lint
    rules pin down statically.

    ``search(r, q, c, x, p, depth)`` returns the maximum η-clique
    containing ``r`` found in its subtree (the threaded ``P``
    argument, possibly enlarged); ``flush()`` folds the closure-cell
    counters into ``stats`` and must run exactly once, after the seed
    loop (even on an aborted run).
    """
    hot = ops.search_ops()
    open_node = hot.open_node
    lb_refresh = hot.lb_refresh
    color_reaches = hot.color_reaches
    expand = hot.expand
    retract = hot.retract
    decode = hot.decode
    log_domain = ops.log_domain
    kpivot = config.kpivot != "off"
    color_bound = config.kpivot == "color"
    improved = config.mpivot == "improved"
    basic = config.mpivot == "basic"
    sink_call = sink
    limit = -1 if limit is None else limit
    calls = expansions = outputs = 0
    mpivot_skips = kpivot_stops = size_prunes = max_depth = 0

    def flush() -> None:
        stats.calls += calls
        stats.expansions += expansions
        stats.outputs += outputs
        stats.mpivot_skips += mpivot_skips
        stats.kpivot_stops += kpivot_stops
        stats.size_prunes += size_prunes
        if max_depth > stats.max_depth:
            stats.max_depth = max_depth

    def search(r, q, c, x, p, depth):
        nonlocal calls, expansions, outputs, mpivot_skips
        nonlocal kpivot_stops, size_prunes, max_depth
        calls += 1
        if depth > max_depth:
            max_depth = depth
        if san is not None:
            san.on_node(depth)
        if obs is not None:
            obs.on_node(depth, r)
        if not c:
            if not x:
                rlen = len(r)
                if rlen >= k:
                    if san is not None:
                        san.on_emit(r, q, log_domain)
                    if obs is not None:
                        obs.on_emit(depth, rlen)
                    outputs += 1
                    sink_call(decode(r))
                    if outputs == limit:
                        raise _StopSearch
                lb_refresh(r, rlen)
            return p
        rlen = len(r)
        # ``open_node`` folds the global lower-bound refresh (every
        # candidate v participates in the η-clique R ∪ {v}) into the
        # work-list/pivot computation — one backend call per node.
        keys, pivot = open_node(c, rlen + 1)
        need = k - rlen
        kpivot_pos = kpivot and need > 0
        if kpivot_pos and (
            len(keys) < need
            or (color_bound and not color_reaches(keys, need))
        ):
            # The whole candidate set is a K-pivot periphery (Lemma
            # 5/6): counted plainly it cannot lift R to k, and the
            # color-class count is the tighter Lemma-6 bound.
            kpivot_stops += 1
            if obs is not None:
                obs.on_prune("kpivot", depth)
            return p
        # Rank-ordered work list, pivot first.  The do-while of
        # Algorithm 3 runs while some candidate lies outside the
        # *current* periphery Q: a candidate deferred under an
        # earlier, smaller Q becomes eligible again if Q is later
        # replaced by a clique that does not contain it, so
        # eligibility is re-evaluated on every pick.
        if keys[0] == pivot:
            unexpanded = keys[:]
        else:
            unexpanded = [pivot] + [v for v in keys if v != pivot]
        periphery = ()
        expanded_any = False
        need1 = need - 1
        depth1 = depth + 1
        while True:
            if expanded_any and kpivot_pos and (
                len(unexpanded) < need
                or (color_bound and not color_reaches(unexpanded, need))
            ):
                # The remaining candidate set is a K-pivot periphery
                # on its own (Lemma 5/6) — no reliance on Q.  The two
                # stopping rules are applied independently, never as a
                # merged periphery set (whose joint soundness the
                # paper does not establish).
                kpivot_stops += 1
                if obs is not None:
                    obs.on_prune("kpivot", depth)
                break
            if not unexpanded:
                break
            if not periphery:
                u = unexpanded[0]
                u_idx = 0
            else:
                u_idx = -1
                for idx, w in enumerate(unexpanded):
                    if w not in periphery:
                        u = w
                        u_idx = idx
                        break
                if u_idx < 0:
                    # Every remaining candidate sits inside the
                    # single, final periphery Q (Lemma 3/4) — safe to
                    # stop.
                    if san is not None:
                        san.on_cover(depth, r, unexpanded, periphery)
                    mpivot_skips += len(unexpanded)
                    if obs is not None:
                        obs.on_prune("mpivot", depth, len(unexpanded))
                    break
            expanded_any = True
            r.append(u)
            q_new, c_new, x_new, x_token, viable = expand(
                u, c, x, q, r, need1
            )
            if viable:
                expansions += 1
                if obs is not None:
                    obs.on_expand(depth)
                if c_new:
                    branch_best = search(
                        r, q_new, c_new, x_new, list(r), depth1
                    )
                    blen = len(branch_best)
                else:
                    # Inlined leaf: a child with no candidates only
                    # counts itself, possibly emits, and returns its
                    # ``p`` argument unchanged — so the copy of ``r``
                    # is never materialized here.
                    calls += 1
                    if depth1 > max_depth:
                        max_depth = depth1
                    if san is not None:
                        san.on_node(depth1)
                    if obs is not None:
                        obs.on_node(depth1, r)
                    if not x_new:
                        if rlen >= k - 1:
                            if san is not None:
                                san.on_emit(r, q_new, log_domain)
                            if obs is not None:
                                obs.on_emit(depth1, rlen + 1)
                            outputs += 1
                            sink_call(decode(r))
                            if outputs == limit:
                                raise _StopSearch
                        lb_refresh(r, rlen + 1)
                    branch_best = None
                    blen = rlen + 1
            else:
                size_prunes += 1
                if obs is not None:
                    obs.on_prune("size", depth)
                branch_best = None
                blen = rlen + 1
            r.pop()
            # Every expand gets its retract — including size-pruned
            # branches, whose projection may have touched shared
            # backend state.
            c, x = retract(u, c, x, c_new, x_token)
            # ``branch_best is None`` stands for the un-materialized
            # copy of ``r + [u]`` (length ``blen``); build it only
            # when it actually replaces the periphery or ``p``.
            if improved or (basic and not periphery):
                if len(periphery) < blen:
                    if branch_best is None:
                        periphery = set(r)
                        periphery.add(u)
                    else:
                        periphery = set(branch_best)
            if len(p) < blen:
                p = branch_best if branch_best is not None else r + [u]
            del unexpanded[u_idx]
        return p

    return search, flush


class SearchEngine:
    """One enumeration run: drives a ``StateOps`` backend to completion.

    The engine owns the run lifecycle — phase timing, hook wiring, the
    outer seed loop, recursion-limit management, and the final counter
    flush.  It is constructed fresh per run by the enumerator facades
    (:class:`~repro.core.pmuc.PivotEnumerator`,
    :class:`~repro.kernel.enumerate.KernelEnumerator`), which own
    argument validation and backend selection.
    """

    __slots__ = ("ops", "k", "eta", "config", "result", "sink",
                 "limit", "san", "obs")

    def __init__(self, ops, k, eta, config, result, sink, limit=None):
        validate_state_ops(ops)
        self.ops = ops
        self.k = k
        self.eta = eta
        self.config = config
        self.result = result
        self.sink = sink
        self.limit = limit
        #: The run's sanitizer / observer (or None); populated by
        #: :meth:`run`, left in place so facades can surface them.
        self.san = None
        self.obs = None

    def run(self, seeds=None, *, reduced_graph=None, order=None):
        """Execute the enumeration; returns the backend's result.

        Same contract as ``PivotEnumerator.run``: optional ``seeds``
        restrict the outer loop, and ``reduced_graph``/``order`` skip
        the in-run reduction/ordering (the partitioned and parallel
        drivers prepare them once for all workers).
        """
        ops = self.ops
        config = self.config
        # Imported lazily: repro.sanitize / repro.obs pull in
        # repro.core.config (and the sanitizer repro.core.pivot), so a
        # module-level import here would close an import cycle through
        # the repro.core package __init__.
        from repro.obs.observer import build_observer
        from repro.sanitize.sanitizer import build_sanitizer

        san = self.san = build_sanitizer(
            ops.graph, self.k, self.eta, config, ops.name
        )
        obs = self.obs = build_observer(config, ops.name)
        if obs is not None:
            obs.on_gauge("vertices_input", ops.graph.num_vertices)
        start = perf_counter()
        ops.prepare_reduction(reduced_graph)
        reduction_s = perf_counter() - start
        start = perf_counter()
        ops.prepare_ordering(order)
        ordering_s = perf_counter() - start
        ops.bind_observer(obs)
        if obs is not None:
            obs.on_gauge("vertices_search", ops.search_size())
        adapter = None
        if san is not None:
            vertices, color, edges = ops.context()
            san.on_reduced(vertices)
            san.on_context(color, edges)
            adapter = ops.bind_sanitizer(san)
        # The recursion is at most one level per clique member; make
        # sure graphs with very large cliques cannot hit the default
        # interpreter limit mid-search.
        previous_limit = sys.getrecursionlimit()
        needed = ops.search_size() + 100
        if needed > previous_limit:
            sys.setrecursionlimit(needed)
        # Module-global lookup on purpose: tests swap in a tampered
        # recursion by monkeypatching ``repro.engine.driver
        # .build_search`` to exercise the sanitizer end to end.
        search, flush = build_search(
            ops, config, self.k, self.result.stats, self.sink,
            self.limit, adapter, obs
        )
        complete = seeds is None
        unit = ops.unit
        start = perf_counter()
        try:
            for v in ops.roots(seeds):
                c, x = ops.root_state(v)
                search([v], unit, c, x, [v], 1)
        except _StopSearch:
            complete = False
        finally:
            flush()
            if needed > previous_limit:
                sys.setrecursionlimit(previous_limit)
        recursion_s = perf_counter() - start
        start = perf_counter()
        if san is not None:
            san.on_finish(complete)
        sanitize_s = perf_counter() - start
        if obs is not None:
            obs.on_phase("reduction", reduction_s)
            obs.on_phase("ordering", ordering_s)
            obs.on_phase("recursion", recursion_s)
            obs.on_phase("sanitize", sanitize_s)
            obs.on_finish(self.result.stats)
        return self.result
