"""The one search-tree driver behind every enumeration backend.

This module holds the paper's recursion exactly once — as a
**template**.  The control flow of ``PMUCE`` (Algorithm 3, lines 6–21)
— the M-pivot do-while with periphery re-evaluation (Theorem 4.2,
Lemmas 3–4), the K-pivot size stop (Lemmas 5–6), emission, and every
sanitizer/observer hook site — lives in :func:`_search_template`.  The
template is never executed as written: :func:`build_search` is a
dispatcher that folds the module-level specialization flags (``HOOKS``,
``BITSET``, ``KPIVOT``, ...) into the template's AST and compiles one
recursion **variant** per configuration shape (see
:func:`variant_key`).  Because every variant is a partial evaluation of
the same function, the hooked variant provably contains every
REP007/REP008 hook site, and the hookless variants provably contain
none — the REP009 lint rule re-renders the variants and checks exactly
that.

Three shapes exist:

``generic``
    Devirtualized :class:`~repro.engine.protocol.SearchOps` calls bound
    as closure cells, zero hook branches.  The production shape of the
    dict backend.
``generic+hooks``
    The same, plus the sanitizer/observer hook sites.  Chosen whenever
    a sanitizer or observer is attached, for either backend.
``bitset``
    The hot loop stays in bitset domain end to end: big-int candidate
    sets with per-survivor threshold tests, per-color bit masks with a
    popcount for the Lemma-6 bound, a bitset periphery ``Q``, and a
    **lazy exclusion set** — ``X`` is maintained as a pure bitset (one
    AND per expand) and the maximality verdict is deferred to the
    leaves, where a per-witness ``-log`` sum with the same certainty
    band as the eager path (plus a full per-level exact replay inside
    the band) reproduces the dict backend's decisions bit for bit.
    Chosen when hooks are off and the backend publishes the
    ``fast_ops`` capability (:meth:`~repro.engine.protocol.StateOps
    .fast_ops`).

The run lifecycle (reduction/ordering phases, hook wiring, the seed
loop, recursion-limit management, counter flushing) lives in
:class:`SearchEngine`.  Backends supply only state algebra through the
:class:`~repro.engine.protocol.StateOps` protocol, so a new backend
cannot diverge from the search semantics: there is no second copy to
drift.

Performance notes.  Each variant is compiled once per process and
instantiated once per run into a closure whose free variables hold the
backend's hot-path state, the remaining dynamic flags, and the search
counters — a cell load costs the same as a local, where repeated
attribute lookups across ~10⁶ calls are a measurable slice of the
runtime.  Counters are folded into the shared
:class:`~repro.core.stats.SearchStats` once, by ``flush``.  A viable
child with no candidates is inlined (it only counts itself and
possibly emits), so the dominant leaf case skips the recursive call.
The maximum η-clique ``P`` is no longer threaded through the call
arguments: ``search`` returns ``None`` to mean "no clique longer than
my own ``r`` was found", and parents materialize ``r + [u]`` only when
it actually improves their best — which removes a ``list(r)`` copy per
expansion.
"""

from __future__ import annotations

import ast
import copy
import inspect
import sys
import textwrap
from time import perf_counter

from repro.engine.protocol import validate_state_ops


class _StopSearch(Exception):
    """Internal signal: the configured output limit was reached."""


# ----------------------------------------------------------------------
# specialization flags
# ----------------------------------------------------------------------
#: The specialization axes.  Inside :func:`_search_template` these
#: module-level names are compile-time constants: the specializer folds
#: every ``if`` whose truth they decide and removes the dead branch.
#: The module-level values are never consulted at runtime — only the
#: folded variants execute.
_SPEC_FLAGS = (
    "HOOKS",        # sanitizer/observer hook sites present
    "BITSET",       # bitset fast path (fast_ops capability)
    "HYBRID",       # hybrid pivot rule, inlined (bitset shape only)
    "KPIVOT",       # K-pivot stops enabled (size or color)
    "COLOR_BOUND",  # Lemma-6 color bound on top of the size stop
    "IMPROVED",     # M-pivot periphery: improved re-evaluation
    "BASIC",        # M-pivot periphery: basic (first cover wins)
    "WIDESCAN",     # GenerateSet scans set bits, not the parent list
)

HOOKS = False
BITSET = False
HYBRID = False
KPIVOT = False
COLOR_BOUND = False
IMPROVED = False
BASIC = False
WIDESCAN = False


def _search_template(ops, config, k, stats, sink, limit, san=None, obs=None):
    """The shared recursion template; every variant is folded from it.

    Never call this directly — it would run with every specialization
    flag stuck at ``False``.  :func:`build_search` compiles and caches
    the folded variants and is the only legitimate entry point.

    ``san`` is the backend's sanitizer adapter (or None) and ``obs``
    the :class:`~repro.obs.observer.Observer` (or None); every hook
    fires from exactly one site here, which the REP007/REP008 lint
    rules pin down statically (and REP009 re-checks per variant).

    ``search(r, q, c, x, depth)`` explores the subtree rooted at path
    ``r`` and returns the maximum η-clique strictly longer than ``r``
    found there, or ``None`` when ``r`` itself (length ``len(r)``) is
    the subtree's best — parents then account for the un-materialized
    ``r + [u]`` by length alone.  ``flush()`` folds the closure-cell
    counters into ``stats`` and must run exactly once, after the seed
    loop (even on an aborted run).
    """
    if BITSET:
        fast = ops.fast_ops()
        sv = fast.sv
        nbr_bits = fast.nbr_bits
        nlogr = fast.nlogr
        lb = fast.lb
        cn_lb = fast.cn_lb
        cn_base = fast.cn_base
        deg_cn = fast.deg_cn
        color_bit = fast.color_bit
        bit_at = fast.bit_at
        hi_base = fast.hi_base
        guard2 = fast.guard2
        exact_accept = fast.exact_accept
        exact_x_member = fast.exact_x_member
        popcount = fast.popcount
        select_pivot = fast.select_pivot
        label_of = fast.label_of
        bl = int.bit_length
    else:
        hot = ops.search_ops()
        open_node = hot.open_node
        lb_refresh = hot.lb_refresh
        color_reaches = hot.color_reaches
        expand = hot.expand
        retract = hot.retract
        decode = hot.decode
    log_domain = ops.log_domain
    sink_call = sink
    limit = -1 if limit is None else limit
    calls = expansions = outputs = 0
    mpivot_skips = kpivot_stops = size_prunes = max_depth = 0
    # Bitset image of the recursion path ``r``, maintained
    # incrementally by the bitset shape (two bit-ops per expansion)
    # so a periphery rebuild from ``r`` is one OR instead of a loop.
    # The generic shape declares but never touches it.
    r_bits = 0

    def flush() -> None:
        stats.calls += calls
        stats.expansions += expansions
        stats.outputs += outputs
        stats.mpivot_skips += mpivot_skips
        stats.kpivot_stops += kpivot_stops
        stats.size_prunes += size_prunes
        if max_depth > stats.max_depth:
            stats.max_depth = max_depth

    def search(r, q, c, x, depth):
        nonlocal calls, expansions, outputs, mpivot_skips
        nonlocal kpivot_stops, size_prunes, max_depth, r_bits
        calls += 1
        if depth > max_depth:
            max_depth = depth
        if BITSET:
            if depth == 1:
                r_bits = bit_at[r[0]]
        if HOOKS:
            if san is not None:
                san.on_node(depth)
            if obs is not None:
                obs.on_node(depth, r)
        if not c:
            if BITSET:
                # Deferred maximality, inlined (a closure call per leaf
                # is measurable at ~10^5 leaves): R is maximal iff no
                # exclusion witness in bitset ``x`` still clears the η
                # threshold against the full path ``r``.  The ``-log``
                # partial sums are monotone nondecreasing (every term
                # is >= 0), so a partial sum past ``hi`` is a certain
                # reject at this level *and* was one at every earlier
                # level; a full sum under ``lo`` is a certain accept at
                # every level (exact values are monotone and the band
                # covers the float error of any prefix).  Inside the
                # band, ``exact_x_member`` replays the dict backend's
                # per-level float verdicts — so the deferred test is
                # decision-identical to eager filtering.  Witnesses are
                # independent, so the scan order cannot change the
                # verdict; high-to-low extraction (O(1) ``bit_length``
                # plus a singleton XOR) is cheaper than low-bit
                # isolation's three full-width ops.
                maximal = True
                if x:
                    hi = hi_base - q
                    lo = hi - guard2
                    xb = x
                    while xb:
                        w = bl(xb) - 1
                        xb ^= bit_at[w]
                        row = nlogr[w]
                        s = 0.0
                        for t in r:
                            s += row[t]
                            if s > hi:
                                break
                        else:
                            if s < lo or exact_x_member(w, r):
                                maximal = False
                                break
            else:
                maximal = not x
            if maximal:
                # ``len(r) == depth`` by construction: seeds start at
                # depth 1 with a one-vertex path and every recursion
                # appends exactly one vertex.
                rlen = depth
                if rlen >= k:
                    if HOOKS:
                        if san is not None:
                            san.on_emit(r, q, log_domain)
                        if obs is not None:
                            obs.on_emit(depth, rlen)
                    outputs += 1
                    if BITSET:
                        # ``decode`` devirtualized: one map over the
                        # label table instead of a closure hop per
                        # emitted clique.
                        sink_call(frozenset(map(label_of, r)))
                    else:
                        sink_call(decode(r))
                    if outputs == limit:
                        raise _StopSearch
                if BITSET:
                    if HYBRID:
                        for w in r:
                            if lb[w] < rlen:
                                lb[w] = rlen
                                cn_lb[w] = cn_base[w] + rlen
                else:
                    lb_refresh(r, rlen)
            return None
        rlen = depth
        if BITSET:
            # Ids are rank-ordered and survivors are emitted in
            # ascending id order, so the survivor list is already the
            # sorted work list; the global lower-bound refresh (every
            # candidate v participates in the η-clique R ∪ {v}) is
            # inlined here.
            c_bits, c_list = c
            n_keys = len(c_list)
            if n_keys == 1 and depth != 1:
                # Singleton candidate — a large share of recursive
                # calls on real workloads — runs exactly one
                # expansion: the child intersection C ∩ N(u) is empty
                # by irreflexivity, the second do-while iteration can
                # only stop, and the replacement periphery dies with
                # the frame.  The work-list/do-while machinery (and
                # the net-zero ``r_bits``/``c_bits``/``x`` updates an
                # expand/retract pair would make) folds away; every
                # observable effect of the general path is replicated:
                # the fused refresh of ``u``, one expansion or size
                # prune, the inlined-leaf call, the K-pivot stop the
                # empty work list fires when R ∪ {u} cannot reach k
                # (``need > 0`` on re-entry), and the returned best
                # clique ``r + [u]``.  Depth-1 frames keep the general
                # path: they carry the K-pivot entry check.
                u = c_list[0]
                if HYBRID:
                    size = rlen + 1
                    if lb[u] < size:
                        lb[u] = size
                        cn_lb[u] = cn_base[u] + size
                r.append(u)
                if k - rlen <= 1:
                    # Viable (``need1 <= 0``): open the inlined leaf.
                    expansions += 1
                    calls += 1
                    depth1 = depth + 1
                    if depth1 > max_depth:
                        max_depth = depth1
                    maximal = True
                    x_child = x & nbr_bits[u]
                    if x_child:
                        hi = hi_base - (q + sv[u])
                        lo = hi - guard2
                        xb = x_child
                        while xb:
                            w = bl(xb) - 1
                            xb ^= bit_at[w]
                            row = nlogr[w]
                            s = 0.0
                            for t in r:
                                s += row[t]
                                if s > hi:
                                    break
                            else:
                                if s < lo or exact_x_member(w, r):
                                    maximal = False
                                    break
                    if maximal:
                        # ``rlen >= k - 1`` holds here, so a maximal
                        # leaf always emits.
                        outputs += 1
                        sink_call(frozenset(map(label_of, r)))
                        if outputs == limit:
                            raise _StopSearch
                        if HYBRID:
                            for w in r:
                                if lb[w] < size:
                                    lb[w] = size
                                    cn_lb[w] = cn_base[w] + size
                    if KPIVOT:
                        if k - rlen == 1:
                            kpivot_stops += 1
                else:
                    size_prunes += 1
                    if KPIVOT:
                        kpivot_stops += 1
                r.pop()
                return r + [u]
            if HYBRID:
                # The lower-bound refresh and the first pivot pass are
                # fused into one traversal: each element is refreshed
                # before its ``cn_lb`` is compared, so the first-max
                # argmax reads exactly the refreshed table the
                # two-pass form would, at half the loop overhead.
                size = rlen + 1
                best = -1
                for w in c_list:
                    if lb[w] < size:
                        lb[w] = size
                        wk = cn_base[w] + size
                        cn_lb[w] = wk
                    else:
                        wk = cn_lb[w]
                    if wk > best:
                        best = wk
                        pivot = w
            keys = c_list
        else:
            # ``open_node`` folds the lower-bound refresh into the
            # work-list/pivot computation — one backend call per node.
            keys, pivot = open_node(c, rlen + 1)
        need = k - rlen
        if KPIVOT:
            kpivot_pos = need > 0
            if kpivot_pos and depth == 1:
                # The whole candidate set is a K-pivot periphery
                # (Lemma 5/6): counted plainly it cannot lift R to k,
                # and the color-class count is the tighter Lemma-6
                # bound.  Only seed states need this entry check: a
                # recursive call's ``C`` already passed the parent's
                # ``expand`` viability test, which is the same bound
                # (``need1`` there equals ``need`` here) over the same
                # set — so at ``depth > 1`` the check can never fire
                # and is hoisted away.  The survivor list is
                # materialized, so its ``len`` is the Lemma-5 count
                # (cheaper than a popcount on the bitset); the color
                # bound ORs per-color bit masks and popcounts once.
                stop = len(keys) < need
                if COLOR_BOUND:
                    if not stop:
                        if BITSET:
                            seen = 0
                            for w in keys:
                                seen |= color_bit[w]
                            stop = popcount(seen) < need
                        else:
                            stop = not color_reaches(keys, need)
                if stop:
                    kpivot_stops += 1
                    if HOOKS:
                        if obs is not None:
                            obs.on_prune("kpivot", depth)
                    return None
        if BITSET:
            if HYBRID:
                # Second (degree) pass of the hybrid rule, first-max
                # wins — same vertex as the dict strategy's
                # ``max``-of-filtered passes.  With one candidate the
                # fused pass above already picked it.
                if n_keys > 1 and lb[pivot] <= k:
                    best = -1
                    for w in keys:
                        wk = deg_cn[w]
                        if wk > best:
                            best = wk
                            pivot = w
            elif n_keys == 1:
                pivot = keys[0]
            else:
                pivot = select_pivot(keys)
        # Rank-ordered work list, pivot first.  The do-while of
        # Algorithm 3 runs while some candidate lies outside the
        # *current* periphery Q: a candidate deferred under an
        # earlier, smaller Q becomes eligible again if Q is later
        # replaced by a clique that does not contain it, so
        # eligibility is re-evaluated on every pick.
        if BITSET:
            # One C-speed slice copy; moving the pivot to the front is
            # two C-level list ops on the rare non-front case.
            unexpanded = keys[:]
            if unexpanded[0] != pivot:
                del unexpanded[unexpanded.index(pivot)]
                unexpanded.insert(0, pivot)
            periphery = 0
            qlen = 0
            # Color-margin for the Lemma-6 recheck: after a full count
            # ``margin = popcount(colors) - need``; each removal from
            # the work list kills at most one color class, so while the
            # decremented margin stays >= 0 the true count is still
            # >= need and the OR-loop recount is provably a no-op.
            color_margin = -1
            # Work-list length, maintained arithmetically: the list
            # only ever shrinks through the single ``del`` below, so
            # the per-pick ``len`` calls fold into one decrement.
            n_un = n_keys
            # Eligibility-scan resume point.  Work-list entries before
            # ``scan_from`` were already found inside the *current* Q;
            # Q only ever changes in the post-branch replacement below
            # (which resets this to 0), so re-scanning them on every
            # pick is provably a no-op.  Deferral counts and picks are
            # byte-identical to the full re-scan — this only drops the
            # quadratic walk over the deferred prefix.
            scan_from = 0
        else:
            if keys[0] == pivot:
                unexpanded = keys[:]
            else:
                unexpanded = [pivot] + [v for v in keys if v != pivot]
            periphery = ()
        p = None
        plen = rlen
        if KPIVOT:
            # One flag instead of ``expanded_any and kpivot_pos``:
            # it stays false until the first expansion and carries
            # the positivity check with it, so the per-iteration
            # stop costs a single truth test.
            kcheck = False
        need1 = need - 1
        depth1 = depth + 1
        while True:
            if KPIVOT:
                if kcheck:
                    # The remaining candidate set is a K-pivot
                    # periphery on its own (Lemma 5/6) — no reliance
                    # on Q.  The two stopping rules are applied
                    # independently, never as a merged periphery set
                    # (whose joint soundness the paper does not
                    # establish).
                    if BITSET:
                        stop = n_un < need
                    else:
                        stop = len(unexpanded) < need
                    if COLOR_BOUND:
                        if not stop:
                            if BITSET:
                                color_margin -= 1
                                if color_margin < 0:
                                    seen = 0
                                    for w in unexpanded:
                                        seen |= color_bit[w]
                                    cnt = popcount(seen)
                                    stop = cnt < need
                                    color_margin = cnt - need
                            else:
                                stop = not color_reaches(
                                    unexpanded, need
                                )
                    if stop:
                        kpivot_stops += 1
                        if HOOKS:
                            if obs is not None:
                                obs.on_prune("kpivot", depth)
                        break
            if BITSET:
                if not n_un:
                    break
            else:
                if not unexpanded:
                    break
            if not periphery:
                u = unexpanded[0]
                u_idx = 0
            else:
                u_idx = -1
                if BITSET:
                    idx = scan_from
                    while idx < n_un:
                        w = unexpanded[idx]
                        if not periphery & bit_at[w]:
                            u = w
                            u_idx = idx
                            break
                        idx += 1
                else:
                    for idx, w in enumerate(unexpanded):
                        if w not in periphery:
                            u = w
                            u_idx = idx
                            break
                if u_idx < 0:
                    # Every remaining candidate sits inside the
                    # single, final periphery Q (Lemma 3/4) — safe to
                    # stop.
                    if HOOKS:
                        if san is not None:
                            san.on_cover(depth, r, unexpanded, periphery)
                    if BITSET:
                        mpivot_skips += n_un
                    else:
                        mpivot_skips += len(unexpanded)
                    if HOOKS:
                        if obs is not None:
                            obs.on_prune("mpivot", depth, len(unexpanded))
                    break
            if KPIVOT:
                kcheck = kpivot_pos
            r.append(u)
            if BITSET:
                # GenerateSet (Algorithm 1) in bitset domain: one AND
                # for the whole candidate set, then an additive
                # threshold test per survivor, enumerated through the
                # parent's survivor list (candidate sets are tiny on
                # real workloads, so list traffic beats a byte scan).
                # ``s_new`` below ``lo`` is a certain accept, above
                # ``hi`` a certain reject; the narrow band in between
                # replays the dict backend's exact float decision.
                ubit = bit_at[u]
                r_bits |= ubit
                q_new = q + sv[u]
                nbr = nbr_bits[u]
                nlog_u = nlogr[u]
                hi = hi_base - q_new
                lo = hi - guard2
                c_new = c_bits & nbr
                if c_new:
                    c_next = []
                    keep = c_next.append
                    if WIDESCAN:
                        # Wide graphs: walking the parent list costs
                        # one full-width singleton test per candidate,
                        # so enumerate the set bits of the projected
                        # mask directly.  Extraction runs high-to-low
                        # — ``bit_length`` finds the top bit in O(1)
                        # and the singleton XOR touches only ``w/30``
                        # words, where low-bit extraction needs three
                        # full-width ops — and one C-speed ``reverse``
                        # restores the ascending survivor order
                        # (threshold verdicts are per-vertex, so scan
                        # order cannot change them).
                        m = c_new
                        while m:
                            w = bl(m) - 1
                            low = bit_at[w]
                            m ^= low
                            s_new = sv[w] + nlog_u[w]
                            if s_new < lo or (
                                s_new <= hi and exact_accept(w, r)
                            ):
                                sv[w] = s_new
                                keep(w)
                            else:
                                c_new ^= low
                        c_next.reverse()
                    else:
                        # Narrow graphs: candidate sets are tiny (a
                        # few survivors on real workloads), so walking
                        # the parent's survivor list with one
                        # singleton-mask test each beats big-int bit
                        # extraction.
                        for w in c_list:
                            if c_new & bit_at[w]:
                                s_new = sv[w] + nlog_u[w]
                                if s_new < lo or (
                                    s_new <= hi and exact_accept(w, r)
                                ):
                                    sv[w] = s_new
                                    keep(w)
                                else:
                                    c_new ^= bit_at[w]
                else:
                    # Leaf child: no survivors to score — the shared
                    # empty tuple keeps every downstream consumer
                    # (viability length test, retract loop, child
                    # handle truthiness) on its fast path without
                    # allocating a list or binding its ``append``.
                    c_next = ()
                viable = need1 <= 0
                if not viable and len(c_next) >= need1:
                    if COLOR_BOUND:
                        seen = 0
                        cnt = 0
                        for w in c_next:
                            b = color_bit[w]
                            if not seen & b:
                                seen |= b
                                cnt += 1
                                if cnt == need1:
                                    break
                        viable = cnt >= need1
                    else:
                        viable = True
            else:
                q_new, c_child, x_child, x_token, viable = expand(
                    u, c, x, q, r, need1
                )
            if viable:
                if BITSET:
                    # Lazy X: the child's exclusion set is one AND —
                    # no threshold scan, no ``sv`` writes.  Witnesses
                    # that would have been filtered here are rejected
                    # at the leaves by the inlined witness scan.
                    x_child = x & nbr
                    # A tuple handle: never mutated below this
                    # frame, and a tuple display allocates faster than
                    # a list at ~10^5 children.
                    c_child = (c_new, c_next) if c_next else None
                expansions += 1
                if HOOKS:
                    if obs is not None:
                        obs.on_expand(depth)
                if c_child:
                    branch_best = search(r, q_new, c_child, x_child, depth1)
                    blen = (
                        rlen + 1 if branch_best is None
                        else len(branch_best)
                    )
                else:
                    # Inlined leaf: a child with no candidates only
                    # counts itself and possibly emits — so the
                    # recursive call is skipped entirely.
                    calls += 1
                    if depth1 > max_depth:
                        max_depth = depth1
                    if HOOKS:
                        if san is not None:
                            san.on_node(depth1)
                        if obs is not None:
                            obs.on_node(depth1, r)
                    if BITSET:
                        # The same deferred-maximality scan as the
                        # top-of-call leaf, with ``hi``/``lo`` already
                        # positioned for q_new by the GenerateSet scan.
                        maximal = True
                        if x_child:
                            xb = x_child
                            while xb:
                                w = bl(xb) - 1
                                xb ^= bit_at[w]
                                row = nlogr[w]
                                s = 0.0
                                for t in r:
                                    s += row[t]
                                    if s > hi:
                                        break
                                else:
                                    if s < lo or exact_x_member(w, r):
                                        maximal = False
                                        break
                    else:
                        maximal = not x_child
                    if maximal:
                        if rlen >= k - 1:
                            if HOOKS:
                                if san is not None:
                                    san.on_emit(r, q_new, log_domain)
                                if obs is not None:
                                    obs.on_emit(depth1, rlen + 1)
                            outputs += 1
                            if BITSET:
                                sink_call(frozenset(map(label_of, r)))
                            else:
                                sink_call(decode(r))
                            if outputs == limit:
                                raise _StopSearch
                        if BITSET:
                            if HYBRID:
                                for w in r:
                                    if lb[w] < size:
                                        lb[w] = size
                                        cn_lb[w] = cn_base[w] + size
                        else:
                            lb_refresh(r, rlen + 1)
                    branch_best = None
                    blen = rlen + 1
            else:
                size_prunes += 1
                if HOOKS:
                    if obs is not None:
                        obs.on_prune("size", depth)
                branch_best = None
                blen = rlen + 1
            r.pop()
            if BITSET:
                # Retract: restore ``sv`` for the candidate survivors
                # (the lazy X never touched it) and move ``u`` from C
                # to X in bit domain.
                for w in c_next:
                    sv[w] -= nlog_u[w]
                r_bits ^= ubit
                c_bits ^= ubit
                x |= ubit
            else:
                # Every expand gets its retract — including
                # size-pruned branches, whose projection may have
                # touched shared backend state.
                c, x = retract(u, c, x, c_child, x_token)
            del unexpanded[u_idx]
            if BITSET:
                n_un -= 1
                # Entries below ``u_idx`` are still the verified-inside
                # prefix; the replacement below resets this when Q
                # changes and the verification no longer applies.
                scan_from = u_idx
            # ``branch_best is None`` stands for the un-materialized
            # ``r + [u]`` (length ``blen``); build it only when it
            # actually replaces the periphery or the best ``p``.
            if IMPROVED or (BASIC and not periphery):
                if BITSET:
                    if qlen < blen:
                        if branch_best is None:
                            # ``r_bits`` already excludes ``u`` here
                            # (the retract above cleared it), so the
                            # un-materialized ``r + [u]`` is one OR.
                            periphery = r_bits | ubit
                        else:
                            bits = 0
                            for w in branch_best:
                                bits |= bit_at[w]
                            periphery = bits
                        qlen = blen
                        scan_from = 0
                else:
                    if len(periphery) < blen:
                        if branch_best is None:
                            periphery = set(r)
                            periphery.add(u)
                        else:
                            periphery = set(branch_best)
            if plen < blen:
                p = branch_best if branch_best is not None else r + [u]
                plen = blen
        return p

    return search, flush


# ----------------------------------------------------------------------
# the specializer
# ----------------------------------------------------------------------
def _fold_test(node, env):
    """Partially evaluate an ``if`` test over the spec-flag names.

    Returns ``True``/``False`` when the flags decide the test, else an
    AST with the decided operands removed.  Folding is by *truthiness*
    over pure operands — exactly the contract of an ``if`` test — so
    dropping a decided operand from a ``BoolOp`` is sound regardless of
    its position.
    """
    if isinstance(node, ast.Name) and node.id in env:
        return bool(env[node.id])
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        inner = _fold_test(node.operand, env)
        if inner is True:
            return False
        if inner is False:
            return True
        if inner is node.operand:
            return node
        return ast.UnaryOp(op=ast.Not(), operand=inner)
    if isinstance(node, ast.BoolOp):
        is_or = isinstance(node.op, ast.Or)
        residue = []
        for operand in node.values:
            value = _fold_test(operand, env)
            if value is True:
                if is_or:
                    return True
            elif value is False:
                if not is_or:
                    return False
            else:
                residue.append(value)
        if not residue:
            # All operands folded to the neutral element.
            return not is_or
        if len(residue) == 1:
            return residue[0]
        if len(residue) == len(node.values) and all(
            a is b for a, b in zip(residue, node.values)
        ):
            # Nothing folded — hand back the original node so callers
            # (and the fold-decision record) can tell this test was
            # never touched.
            return node
        return ast.BoolOp(op=node.op, values=residue)
    return node


class _Specializer(ast.NodeTransformer):
    """Fold spec-flag ``if`` statements; leave everything else alone.

    Every decision the fold makes is recorded in :attr:`decisions` as a
    ``(lineno, test_source, outcome)`` triple — ``outcome`` is ``True``
    (then-branch spliced), ``False`` (else-branch spliced), or
    ``"residual"`` (the test was only partially decided).  The record is
    what :func:`fold_record` hands to the translation validator: it is
    the specializer's own account of *why* each variant looks the way it
    does, which the validator re-derives independently and cross-checks.
    """

    def __init__(self, env):
        self.env = env
        self.decisions = []

    def _decide(self, node, outcome):
        self.decisions.append(
            (
                getattr(node, "lineno", 0),
                ast.unparse(node.test),
                outcome,
            )
        )

    def visit_If(self, node):
        self.generic_visit(node)
        test = _fold_test(node.test, self.env)
        if test is True:
            self._decide(node, True)
            return node.body
        if test is False:
            self._decide(node, False)
            return node.orelse or ast.Pass()
        if test is not node.test:
            self._decide(node, "residual")
        node.test = test
        return node


#: Modules whose sources define what an enumeration run *means*: the
#: recursion driver and its protocol, both StateOps backends with the
#: projection kernels they drive, and the reductions/ordering that
#: shape the search space.  The run store's engine salt hashes exactly
#: these (the verified-manifest pattern of :mod:`repro.analysis.cache`):
#: a module that fails to import must fail the salt loudly, never
#: silently narrow it so that stale results survive an engine change.
_SEMANTIC_MODULES = (
    "repro.engine.driver",
    "repro.engine.protocol",
    "repro.core.pmuc",
    "repro.core.candidates",
    "repro.core.pivot",
    "repro.kernel.enumerate",
    "repro.kernel.compact",
    "repro.kernel.reduction",
    "repro.reduction.ordering",
    "repro.reduction.topk_core",
    "repro.reduction.topk_triangle",
)


def engine_source_manifest():
    """``(module name, source bytes)`` per semantics-bearing module.

    The manifest is what the run store folds into its engine version
    salt (see :func:`repro.store.key.engine_salt`): any byte change in
    these files invalidates every stored run, because stored counters
    and clique sets are only replayable while the search semantics
    that produced them are unchanged.  Raises ``RuntimeError`` when a
    module cannot be imported or read — a partial manifest must never
    hash to a valid salt.
    """
    import importlib

    entries = []
    for name in _SEMANTIC_MODULES:
        try:
            module = importlib.import_module(name)
            with open(module.__file__, "rb") as handle:
                entries.append((name, handle.read()))
        except Exception as error:
            raise RuntimeError(
                "engine salt would not cover module %s: %s" % (name, error)
            ) from error
    return entries


def variant_key(ops, config, san=None, obs=None):
    """The specialization key for one run's configuration.

    ``(shape, hooks, kpivot, mpivot, hybrid, widescan)`` — ``shape``
    is ``"bitset"`` when hooks are off and the backend publishes the
    ``fast_ops`` capability, else ``"generic"``; ``hybrid`` and
    ``widescan`` are normalized to ``False`` for the generic shape
    (pivot selection and GenerateSet are the backend's there).
    ``widescan`` is the backend's own call — the kernel asks for the
    set-bit GenerateSet scan once singleton-mask tests get wide.
    """
    hooks = san is not None or obs is not None
    if not hooks:
        fast_cap = getattr(ops, "fast_ops", None)
        if fast_cap is not None:
            fast = fast_cap()
            if fast is not None:
                return (
                    "bitset",
                    False,
                    config.kpivot,
                    config.mpivot,
                    config.pivot == "hybrid",
                    bool(getattr(fast, "wide_scan", False)),
                )
    return ("generic", hooks, config.kpivot, config.mpivot, False, False)


def variant_id(key):
    """Short human-readable variant name stamped into run records."""
    shape, hooks = key[0], key[1]
    wide = len(key) > 5 and key[5]
    return shape + ("+hooks" if hooks else "") + ("+wide" if wide else "")


def legal_variant_keys():
    """Every key the dispatcher can produce (the REP009 check space).

    The pivot axes enumerate the :class:`~repro.core.config.PivotConfig`
    value spaces (``KPIVOT_CHOICES`` / ``MPIVOT_CHOICES``) verbatim —
    the dispatcher passes the config values through unchanged.
    """
    keys = []
    for kpivot in ("off", "plain", "color"):
        for mpivot in ("off", "basic", "improved"):
            for hybrid in (False, True):
                for wide in (False, True):
                    keys.append(
                        ("bitset", False, kpivot, mpivot, hybrid, wide)
                    )
            keys.append(("generic", False, kpivot, mpivot, False, False))
            keys.append(("generic", True, kpivot, mpivot, False, False))
    return keys


def _flag_env(key):
    """Spec-flag assignment for ``key`` (one value per ``_SPEC_FLAGS``)."""
    shape, hooks, kpivot, mpivot, hybrid, widescan = key
    return {
        "HOOKS": hooks,
        "BITSET": shape == "bitset",
        "HYBRID": hybrid,
        "KPIVOT": kpivot != "off",
        "COLOR_BOUND": kpivot == "color",
        "IMPROVED": mpivot == "improved",
        "BASIC": mpivot == "basic",
        "WIDESCAN": shape == "bitset" and widescan,
    }


_TEMPLATE_MODULE = None
_VARIANTS = {}


def _template_module():
    global _TEMPLATE_MODULE
    if _TEMPLATE_MODULE is None:
        source = textwrap.dedent(inspect.getsource(_search_template))
        _TEMPLATE_MODULE = ast.parse(source)
    return _TEMPLATE_MODULE


class FoldRecord:
    """One specialization, with the specializer's own audit trail.

    ``module`` is the folded one-function module AST (same object
    :func:`render_variant` returns), ``env`` the full spec-flag
    assignment that produced it, and ``decisions`` the ordered
    ``(lineno, test_source, outcome)`` triples recorded by
    :class:`_Specializer` — one per ``if`` the fold decided or
    simplified.  The translation validator
    (:mod:`repro.analysis.semantics`) consumes fold records instead of
    re-implementing the fold: the variant side of every comparison is
    exactly what the production specializer emitted.
    """

    __slots__ = ("key", "env", "module", "decisions")

    def __init__(self, key, env, module, decisions):
        self.key = key
        self.env = env
        self.module = module
        self.decisions = decisions


def fold_record(key, template=None):
    """Fold the template for ``key``; returns a :class:`FoldRecord`.

    Pure (no compilation, no caching).  ``template`` optionally supplies
    the module AST to fold **in place** — the translation validator
    passes a fresh copy of the template as parsed from the file under
    analysis, so line numbers in the record refer to real source lines;
    by default a deep copy of this module's own template is folded.
    """
    env = _flag_env(key)
    module = template if template is not None else copy.deepcopy(
        _template_module()
    )
    spec = _Specializer(env)
    spec.visit(module)
    ast.fix_missing_locations(module)
    return FoldRecord(key, env, module, tuple(spec.decisions))


def render_variant(key):
    """Fold the template for ``key``; returns a one-function module AST.

    Pure (no compilation, no caching) — this is the surface the REP009
    lint rule and the tests use to inspect what a variant contains.
    The fold itself (with its decision trail) is :func:`fold_record`.
    """
    return fold_record(key).module


def compiled_variant(key):
    """The compiled factory for ``key`` (process-wide cache)."""
    factory = _VARIANTS.get(key)
    if factory is None:
        module = render_variant(key)
        code = compile(
            module, f"<repro.engine.variant {variant_id(key)}>", "exec"
        )
        namespace = {"_StopSearch": _StopSearch}
        namespace.update(_flag_env(key))
        exec(code, namespace)
        factory = namespace["_search_template"]
        _VARIANTS[key] = factory
    return factory


def build_search(ops, config, k, stats, sink, limit, san=None, obs=None):
    """Select the variant for this run and instantiate its closures.

    Same contract as the template factory: returns ``(search, flush)``
    with ``search(r, q, c, x, depth)`` as documented on
    :func:`_search_template`.
    """
    factory = compiled_variant(variant_key(ops, config, san, obs))
    return factory(ops, config, k, stats, sink, limit, san, obs)


class SearchEngine:
    """One enumeration run: drives a ``StateOps`` backend to completion.

    The engine owns the run lifecycle — phase timing, hook wiring, the
    outer seed loop, recursion-limit management, and the final counter
    flush.  It is constructed fresh per run by the enumerator facades
    (:class:`~repro.core.pmuc.PivotEnumerator`,
    :class:`~repro.kernel.enumerate.KernelEnumerator`), which own
    argument validation and backend selection.
    """

    __slots__ = ("ops", "k", "eta", "config", "result", "sink",
                 "limit", "san", "obs", "variant")

    def __init__(self, ops, k, eta, config, result, sink, limit=None):
        validate_state_ops(ops)
        self.ops = ops
        self.k = k
        self.eta = eta
        self.config = config
        self.result = result
        self.sink = sink
        self.limit = limit
        #: The run's sanitizer / observer (or None); populated by
        #: :meth:`run`, left in place so facades can surface them.
        self.san = None
        self.obs = None
        #: The :func:`variant_id` of the recursion variant the run
        #: selected; populated by :meth:`run`.
        self.variant = None

    def run(self, seeds=None, *, reduced_graph=None, order=None):
        """Execute the enumeration; returns the backend's result.

        Same contract as ``PivotEnumerator.run``: optional ``seeds``
        restrict the outer loop, and ``reduced_graph``/``order`` skip
        the in-run reduction/ordering (the partitioned and parallel
        drivers prepare them once for all workers).
        """
        ops = self.ops
        config = self.config
        # Imported lazily: repro.sanitize / repro.obs pull in
        # repro.core.config (and the sanitizer repro.core.pivot), so a
        # module-level import here would close an import cycle through
        # the repro.core package __init__.
        from repro.obs.observer import build_observer
        from repro.sanitize.sanitizer import build_sanitizer

        san = self.san = build_sanitizer(
            ops.graph, self.k, self.eta, config, ops.name
        )
        obs = self.obs = build_observer(config, ops.name)
        if obs is not None:
            obs.on_gauge("vertices_input", ops.graph.num_vertices)
        start = perf_counter()
        ops.prepare_reduction(reduced_graph)
        reduction_s = perf_counter() - start
        start = perf_counter()
        ops.prepare_ordering(order)
        ordering_s = perf_counter() - start
        ops.bind_observer(obs)
        if obs is not None:
            obs.on_gauge("vertices_search", ops.search_size())
        adapter = None
        if san is not None:
            vertices, color, edges = ops.context()
            san.on_reduced(vertices)
            san.on_context(color, edges)
            adapter = ops.bind_sanitizer(san)
        self.variant = variant_id(variant_key(ops, config, adapter, obs))
        if obs is not None:
            obs.variant = self.variant
        # The recursion is at most one level per clique member; make
        # sure graphs with very large cliques cannot hit the default
        # interpreter limit mid-search.  The limit is restored via
        # try/finally so that even a failing specializer cannot leak
        # the raised value.
        previous_limit = sys.getrecursionlimit()
        needed = ops.search_size() + 100
        raised = needed > previous_limit
        # Everything that can raise (attribute lookups, perf_counter)
        # stays *above* the mutation: the ``try`` must begin on the
        # very next statement or an exception in between leaks the
        # raised limit (REP012 checks this structurally).
        complete = seeds is None
        unit = ops.unit
        roots = ops.roots(seeds)
        if obs is not None:
            # Materialized so the progress estimator knows the total
            # outstanding frontier up front (the kernel hands out a
            # lazy range); hooks-off runs keep the backend's iterable.
            roots = list(roots)
        root_index = 0
        start = perf_counter()
        if raised:
            sys.setrecursionlimit(needed)
        try:
            # Module-global lookup on purpose: tests swap in a
            # tampered recursion by monkeypatching
            # ``repro.engine.driver.build_search`` to exercise the
            # sanitizer end to end.
            search, flush = build_search(
                ops, config, self.k, self.result.stats, self.sink,
                self.limit, adapter, obs
            )
            try:
                for v in roots:
                    c, x = ops.root_state(v)
                    if obs is not None:
                        obs.on_root(root_index, len(roots), c)
                        root_index += 1
                    search([v], unit, c, x, 1)
            except _StopSearch:
                complete = False
            finally:
                flush()
        finally:
            if raised:
                sys.setrecursionlimit(previous_limit)
        recursion_s = perf_counter() - start
        start = perf_counter()
        if san is not None:
            san.on_finish(complete)
        sanitize_s = perf_counter() - start
        if obs is not None:
            obs.on_phase("reduction", reduction_s)
            obs.on_phase("ordering", ordering_s)
            obs.on_phase("recursion", recursion_s)
            obs.on_phase("sanitize", sanitize_s)
            obs.on_finish(self.result.stats)
        return self.result
