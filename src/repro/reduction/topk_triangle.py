"""The ``(Top_k, η)``-triangle reduction (Section 5.2, Algorithm 4).

A subgraph ``C`` is a ``(Top_k, η)``-triangle when every edge of ``C``
has top triangle degree (Definition 5) at least ``k`` within ``C``.  By
Lemma 8, every maximal ``(k + 2, η)``-clique of ``G`` lies inside the
maximal ``(Top_k, η)``-triangle, so for enumeration with parameter
``k`` we peel with threshold ``k - 2``.

The implementation follows Algorithm 4: compute the top triangle degree
of every edge, queue sub-threshold edges, and cascade deletions while
updating the triangle lists of surviving edges.  Where the paper keeps
amortized O(1) updates via an index array, we re-evaluate the prefix
product of an edge's (cached, sorted) open-triangle probabilities on
update — asymptotically ``O(m^1.5 log d_max)`` overall like the paper,
with a slightly larger constant that is irrelevant at Python scale.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.exceptions import ParameterError
from repro.uncertain.graph import Edge, UncertainGraph, Vertex, normalize_edge


def topk_triangle(graph: UncertainGraph, k: int, eta) -> UncertainGraph:
    """Return the maximal ``(Top_k, η)``-triangle subgraph of ``graph``.

    Peels edges whose top triangle degree falls below ``k``; the result
    is the subgraph induced by the surviving edges (isolated vertices
    are dropped, as they cannot join any clique of size >= 3).
    """
    survivors = topk_triangle_edges(graph, k, eta)
    return graph.edge_subgraph(survivors)


def topk_triangle_edges(graph: UncertainGraph, k: int, eta) -> List[Edge]:
    """Edges of the maximal ``(Top_k, η)``-triangle, in insertion order."""
    if k < 0:
        raise ParameterError(f"k must be non-negative, got {k}")
    work = graph.copy()
    # Open-triangle probability per edge, keyed by apex vertex.
    tri: Dict[Edge, Dict[Vertex, object]] = {}
    for u, v, _p in work.edges():
        e = normalize_edge(u, v)
        nu, nv = work.neighbors(u), work.neighbors(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        tri[e] = {w: nu[w] * nv[w] for w in nu if w in nv}
    tdeg = {
        e: _top_degree(tri[e], graph.probability(*e), eta) for e in tri
    }
    queue: List[Edge] = [e for e, t in tdeg.items() if t < k]
    removed: Set[Edge] = set()
    while queue:
        e = queue.pop()
        if e in removed:
            continue
        removed.add(e)
        u, v = e
        # Surviving triangles through e disappear: update both side edges.
        for w in list(tri[e]):
            for side in (normalize_edge(u, w), normalize_edge(v, w)):
                if side in removed:
                    continue
                apex = v if side == normalize_edge(u, w) else u
                tri[side].pop(apex, None)
                if tdeg[side] >= k:
                    tdeg[side] = _top_degree(
                        tri[side], graph.probability(*side), eta
                    )
                    if tdeg[side] < k:
                        queue.append(side)
        tri[e] = {}
        work.remove_edge(u, v)
    # Survivors in edge-scan (insertion) order, not set order: the
    # edge_subgraph built from them inherits this order, and downstream
    # orderings/colorings must be deterministic across processes.
    return [e for e in tdeg if e not in removed]


def top_triangle_decomposition(graph: UncertainGraph, eta) -> Dict[Edge, int]:
    """Possible triangle number ``s_η(e)`` of every edge.

    ``s_η(e)`` is the largest ``k`` such that some ``(Top_k, η)``-
    triangle contains ``e`` (Section 5.2) — the analogue of the truss
    number.  Computed by one minimum-first peel (as in truss
    decomposition): repeatedly remove an edge with the minimum current
    top triangle degree; the running maximum of those minima at removal
    time is the removed edge's level.  Correctness follows from the
    monotonicity of the top triangle degree (Lemma 7), exactly as for
    k-cores.
    """
    import heapq

    work = graph.copy()
    tri: Dict[Edge, Dict[Vertex, object]] = {}
    for u, v, _p in work.edges():
        e = normalize_edge(u, v)
        nu, nv = work.neighbors(u), work.neighbors(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        tri[e] = {w: nu[w] * nv[w] for w in nu if w in nv}
    tdeg = {e: _top_degree(tri[e], graph.probability(*e), eta) for e in tri}
    heap = [(t, repr(e), e) for e, t in tdeg.items()]
    heapq.heapify(heap)
    removed: Set[Edge] = set()
    result: Dict[Edge, int] = {}
    level = 0
    while heap:
        t, _tie, e = heapq.heappop(heap)
        if e in removed or t != tdeg[e]:
            continue
        removed.add(e)
        level = max(level, t)
        result[e] = level
        u, v = e
        for w in list(tri[e]):
            for side in (normalize_edge(u, w), normalize_edge(v, w)):
                if side in removed:
                    continue
                apex = v if side == normalize_edge(u, w) else u
                tri[side].pop(apex, None)
                new_t = _top_degree(tri[side], graph.probability(*side), eta)
                if new_t != tdeg[side]:
                    tdeg[side] = new_t
                    heapq.heappush(heap, (new_t, repr(side), side))
        tri[e] = {}
        work.remove_edge(u, v)
    return result


def verify_topk_triangle(graph: UncertainGraph, k: int, eta) -> bool:
    """Check every edge of ``graph`` has top triangle degree >= k in it."""
    from repro.reduction.eta_degree import top_triangle_degree

    return all(
        top_triangle_degree(graph, u, v, eta) >= k for u, v, _p in graph.edges()
    )


def _top_degree(open_probs: Dict[Vertex, object], p_e, eta) -> int:
    product = p_e
    count = 0
    for p in sorted(open_probs.values(), reverse=True):
        product = product * p
        if product >= eta:
            count += 1
        else:
            break
    return count
