"""Vertex orderings for the enumeration outer loop (Section 4.5).

Algorithm 3 processes vertices in a global order; the order controls
the size and the edge-probability profile of the candidate sets, and
therefore how well the pivot pruning performs.  The paper evaluates:

* **as-is** — the input order (baseline ``PMUC-R`` in Exp-2);
* **degeneracy** — minimum-degree peeling on the deterministic
  backbone (``PMUC-C``), bounding candidate sets by the degeneracy δ;
* **(Top_k, η)-core** — minimum η-topdegree peeling (``PMUC+``),
  which additionally pushes high-probability edges into the candidate
  subgraphs and empirically dominates the other two.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

from repro.exceptions import ParameterError
from repro.deterministic.core import degeneracy_ordering as _det_degeneracy
from repro.reduction.topk_core import _prefix_count, _remove_probability
from repro.uncertain.graph import UncertainGraph, Vertex

#: Names accepted by :func:`vertex_ordering`.
ORDERINGS = ("as-is", "degeneracy", "topk-core")


def as_is_ordering(graph: UncertainGraph) -> List[Vertex]:
    """The input (insertion) order."""
    return graph.vertices()


def degeneracy_ordering(graph: UncertainGraph) -> List[Vertex]:
    """Minimum-degree peeling order on the deterministic backbone."""
    return _det_degeneracy(graph.to_deterministic())


def topk_core_ordering(graph: UncertainGraph, eta) -> List[Vertex]:
    """Minimum η-topdegree peeling order.

    Lazy-deletion heap keyed by the current η-topdegree; every removal
    updates the incident-probability multisets of the neighbors, for an
    overall ``O((n + m) log d_max)`` bound matching the paper.
    """
    incident = {
        v: sorted(graph.neighbors(v).values(), reverse=True) for v in graph
    }
    topdeg: Dict[Vertex, int] = {
        v: _prefix_count(incident[v], eta) for v in graph
    }
    heap = [(d, repr(v), v) for v, d in topdeg.items()]
    heapq.heapify(heap)
    alive = set(topdeg)
    order: List[Vertex] = []
    while heap:
        d, _tie, v = heapq.heappop(heap)
        if v not in alive or d != topdeg[v]:
            continue
        alive.discard(v)
        order.append(v)
        for u, p in graph.neighbors(v).items():
            if u in alive:
                _remove_probability(incident[u], p)
                new_deg = _prefix_count(incident[u], eta)
                if new_deg != topdeg[u]:
                    topdeg[u] = new_deg
                    heapq.heappush(heap, (new_deg, repr(u), u))
    return order


def vertex_ordering(graph: UncertainGraph, name: str, eta=None) -> List[Vertex]:
    """Dispatch an ordering by name (one of :data:`ORDERINGS`)."""
    if name == "as-is":
        return as_is_ordering(graph)
    if name == "degeneracy":
        return degeneracy_ordering(graph)
    if name == "topk-core":
        if eta is None:
            raise ParameterError("topk-core ordering requires eta")
        return topk_core_ordering(graph, eta)
    raise ParameterError(
        f"unknown ordering {name!r}; expected one of {ORDERINGS}"
    )
