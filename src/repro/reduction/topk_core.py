"""The ``(Top_k, η)``-core reduction (Li et al., Definition 8).

A subgraph ``C`` is a ``(Top_k, η)``-core when every vertex of ``C`` has
η-topdegree at least ``k`` *within C*.  Every maximal ``(k, η)``-clique
lives inside the maximal ``(Top_{k-1}, η)``-core (each clique member
sees ``k - 1`` other members through edges whose probability product
already reaches ``η``), so peeling to the core is a sound pre-reduction
for enumeration; this is the preprocessing used by the state-of-the-art
``MUC`` comparator and, as a first stage, by ``PMUC+``.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.exceptions import ParameterError
from repro.reduction.eta_degree import eta_topdegree
from repro.uncertain.graph import UncertainGraph, Vertex


def topk_core(graph: UncertainGraph, k: int, eta) -> UncertainGraph:
    """Return the maximal ``(Top_k, η)``-core of ``graph``.

    Iteratively deletes vertices whose η-topdegree within the remaining
    subgraph is below ``k``; the survivors induce the (possibly empty)
    maximal core, which is unique by the monotonicity of η-topdegree.
    """
    survivors = topk_core_vertices(graph, k, eta)
    return graph.subgraph(survivors)


def topk_core_vertices(graph: UncertainGraph, k: int, eta) -> Set[Vertex]:
    """Vertex set of the maximal ``(Top_k, η)``-core."""
    if k < 0:
        raise ParameterError(f"k must be non-negative, got {k}")
    alive: Set[Vertex] = set(graph.vertices())
    # Per-vertex multiset of incident probabilities, sorted descending;
    # the η-topdegree is the longest prefix whose product stays >= η.
    incident: Dict[Vertex, List] = {
        v: sorted(graph.neighbors(v).values(), reverse=True) for v in alive
    }
    topdeg = {v: _prefix_count(incident[v], eta) for v in alive}
    # Canonical queue order: peeling is confluent (the core is unique),
    # but a sorted seed keeps the removal sequence reproducible.
    queue = sorted((v for v in alive if topdeg[v] < k), key=repr)
    while queue:
        v = queue.pop()
        if v not in alive:
            continue
        alive.discard(v)
        for u, p in graph.neighbors(v).items():
            if u not in alive:
                continue
            _remove_probability(incident[u], p)
            if topdeg[u] >= k:
                topdeg[u] = _prefix_count(incident[u], eta)
                if topdeg[u] < k:
                    queue.append(u)
    return alive


def topk_core_decomposition(graph: UncertainGraph, eta) -> Dict[Vertex, int]:
    """Return, for each vertex, the largest ``k`` whose core contains it.

    Analogue of the classic core decomposition: peel vertices in order
    of minimum η-topdegree, assigning each vertex the running maximum of
    the η-topdegree at its removal time.
    """
    alive: Set[Vertex] = set(graph.vertices())
    incident: Dict[Vertex, List] = {
        v: sorted(graph.neighbors(v).values(), reverse=True) for v in alive
    }
    topdeg = {v: _prefix_count(incident[v], eta) for v in alive}
    shell: Dict[Vertex, int] = {}
    current = 0
    while alive:
        v = min(alive, key=lambda w: topdeg[w])
        current = max(current, topdeg[v])
        shell[v] = current
        alive.discard(v)
        for u, p in graph.neighbors(v).items():
            if u in alive:
                _remove_probability(incident[u], p)
                topdeg[u] = min(topdeg[u], _prefix_count(incident[u], eta))
    return shell


def verify_topk_core(graph: UncertainGraph, k: int, eta) -> bool:
    """Check that every vertex of ``graph`` has η-topdegree >= k in it."""
    return all(eta_topdegree(graph, v, eta) >= k for v in graph)


def _prefix_count(sorted_desc: List, eta) -> int:
    product = 1
    count = 0
    for p in sorted_desc:
        product = product * p
        if product >= eta:
            count += 1
        else:
            break
    return count


def _remove_probability(sorted_desc: List, p) -> None:
    """Remove one occurrence of ``p`` from a descending-sorted list."""
    # Linear scan: probabilities are floats subject to equality here
    # because the value came from the same graph object.
    sorted_desc.remove(p)
