"""Graph reduction: η-topdegree, (Top_k, η)-core/-triangle, orderings."""

from repro.reduction.eta_degree import (
    eta_topdegree,
    top_product_count,
    top_triangle_degree,
)
from repro.reduction.topk_core import (
    topk_core,
    topk_core_decomposition,
    topk_core_vertices,
    verify_topk_core,
)
from repro.reduction.topk_triangle import (
    top_triangle_decomposition,
    topk_triangle,
    topk_triangle_edges,
    verify_topk_triangle,
)
from repro.reduction.ordering import (
    ORDERINGS,
    as_is_ordering,
    degeneracy_ordering,
    topk_core_ordering,
    vertex_ordering,
)


def reduction_victims(graph, survivors) -> list:
    """Vertices of ``graph`` pruned by a reduction, sorted for reports.

    ``survivors`` is the vertex set of the reduced graph (or any
    iterable of surviving vertices); the deterministic ``repr`` sort
    matches the ordering used by the runtime sanitizer's S5
    reduction-safety reports.
    """
    kept = set(survivors)
    return sorted(
        (v for v in graph.vertices() if v not in kept), key=repr
    )


__all__ = [
    "eta_topdegree",
    "top_product_count",
    "top_triangle_degree",
    "topk_core",
    "topk_core_decomposition",
    "topk_core_vertices",
    "verify_topk_core",
    "top_triangle_decomposition",
    "topk_triangle",
    "topk_triangle_edges",
    "verify_topk_triangle",
    "reduction_victims",
    "ORDERINGS",
    "as_is_ordering",
    "degeneracy_ordering",
    "topk_core_ordering",
    "vertex_ordering",
]
