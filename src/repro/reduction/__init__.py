"""Graph reduction: η-topdegree, (Top_k, η)-core/-triangle, orderings."""

from repro.reduction.eta_degree import (
    eta_topdegree,
    top_product_count,
    top_triangle_degree,
)
from repro.reduction.topk_core import (
    topk_core,
    topk_core_decomposition,
    topk_core_vertices,
    verify_topk_core,
)
from repro.reduction.topk_triangle import (
    top_triangle_decomposition,
    topk_triangle,
    topk_triangle_edges,
    verify_topk_triangle,
)
from repro.reduction.ordering import (
    ORDERINGS,
    as_is_ordering,
    degeneracy_ordering,
    topk_core_ordering,
    vertex_ordering,
)

__all__ = [
    "eta_topdegree",
    "top_product_count",
    "top_triangle_degree",
    "topk_core",
    "topk_core_decomposition",
    "topk_core_vertices",
    "verify_topk_core",
    "top_triangle_decomposition",
    "topk_triangle",
    "topk_triangle_edges",
    "verify_topk_triangle",
    "ORDERINGS",
    "as_is_ordering",
    "degeneracy_ordering",
    "topk_core_ordering",
    "vertex_ordering",
]
