"""η-topdegree of vertices (Eq. 4) and top triangle degree of edges (Eq. 3).

Both quantities ask the same question at different granularities: how
many of the strongest incident structures (edges, or open triangles)
can be stacked before the probability product drops below ``η``?

* The **η-topdegree** of a vertex ``v`` is the largest ``k`` such that
  the product of the ``k`` largest incident edge probabilities is at
  least ``η`` (Li et al., used by the ``(Top_k, η)``-core).
* The **top triangle degree** of an edge ``e = (u, v)`` is the largest
  ``k`` such that ``p_e`` times the product of the ``k`` largest *open
  triangle probabilities* ``p(u,w) * p(v,w)`` is at least ``η``
  (Definition 5, used by the ``(Top_k, η)``-triangle).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.exceptions import ParameterError
from repro.uncertain.graph import UncertainGraph, Vertex


def top_product_count(probabilities: Iterable, eta, base=1) -> int:
    """Largest ``k`` with ``base * (product of k largest probs) >= eta``.

    This is the shared kernel of Eq. 3 and Eq. 4.  Returns 0 when even
    the empty product (= ``base``) is below ``eta`` only if ``base`` is
    itself below ``eta``; by convention the count is then 0 as well,
    matching the papers' treatment of a hopeless edge/vertex.

    >>> top_product_count([0.9, 0.5, 0.8], 0.5)
    2
    """
    _check_eta(eta)
    ordered: List = sorted(probabilities, reverse=True)
    product = base
    count = 0
    for p in ordered:
        product = product * p
        if product >= eta:
            count += 1
        else:
            break
    return count


def eta_topdegree(graph: UncertainGraph, v: Vertex, eta) -> int:
    """η-topdegree of vertex ``v`` (Eq. 4).

    >>> g = UncertainGraph([(0, 1, 0.9), (0, 2, 0.9), (0, 3, 0.1)])
    >>> eta_topdegree(g, 0, 0.5)
    2
    """
    return top_product_count(graph.neighbors(v).values(), eta)


def top_triangle_degree(graph: UncertainGraph, u: Vertex, v: Vertex, eta) -> int:
    """Top triangle degree ``t_η((u, v), G)`` (Definition 5 / Eq. 3).

    Collects the open triangle probability of every triangle through
    ``(u, v)`` and counts how many of the strongest can be multiplied
    (together with ``p_e`` itself) while staying at or above ``η``.
    """
    p_e = graph.probability(u, v)
    if not p_e:
        raise ParameterError(f"({u!r}, {v!r}) is not an edge")
    nu, nv = graph.neighbors(u), graph.neighbors(v)
    if len(nu) > len(nv):
        nu, nv = nv, nu
    open_probs = [nu[w] * nv[w] for w in nu if w in nv]
    return top_product_count(open_probs, eta, base=p_e)


def _check_eta(eta) -> None:
    if not 0 <= eta <= 1:
        raise ParameterError(f"eta must lie in [0, 1], got {eta!r}")
