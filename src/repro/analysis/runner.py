"""The repro-lint analysis driver.

Collects python files, parses each once, runs every file-scope rule on
every file and every project-scope rule on the whole set, applies
inline suppressions, and returns one :class:`AnalysisReport`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, all_rules
from repro.analysis.source import SourceFile


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    grandfathered: List[Finding] = field(default_factory=list)
    unused_baseline: List[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        """True when no new (unsuppressed, unbaselined) findings exist."""
        return not self.findings

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen = []
    for path in paths:
        if os.path.isfile(path):
            seen.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [
                    d for d in dirnames
                    if d not in ("__pycache__", ".git")
                ]
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        seen.append(os.path.join(dirpath, name))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return seen


def parse_files(paths: Iterable[str]) -> List[SourceFile]:
    """Parse every path eagerly, raising on the first ``SyntaxError``.

    :func:`analyze` parses per-file instead so one unparseable file
    cannot abort a whole run; this strict variant serves callers (and
    tests) that want the failure raised.
    """
    return [SourceFile.read(path) for path in paths]


def run_rules(
    files: List[SourceFile], rules: Optional[List[Rule]] = None
) -> "tuple[List[Finding], List[Finding]]":
    """Raw ``(kept, suppressed)`` findings (baseline not yet applied)."""
    if rules is None:
        rules = all_rules()
    findings: List[Finding] = []
    for rule in rules:
        if rule.scope == "file":
            for src in files:
                findings.extend(rule.run(src))
        else:
            findings.extend(rule.run(files))
    by_path = {src.path: src for src in files}
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        src = by_path.get(finding.path)
        if src is not None and src.is_suppressed(finding.rule, finding.line):
            suppressed.append(finding)
        else:
            kept.append(finding)
    return sorted(kept), suppressed


def analyze(
    paths: Sequence[str],
    baseline: Optional[Baseline] = None,
    rules: Optional[List[Rule]] = None,
) -> AnalysisReport:
    """Run the full analysis over ``paths``.

    Parameters
    ----------
    paths:
        Files and/or directories to scan.
    baseline:
        Optional committed baseline; matching findings are reported as
        grandfathered instead of new.
    rules:
        Optional explicit rule list (defaults to the full registry).
    """
    report = AnalysisReport()
    file_paths = collect_files(paths)
    report.files_scanned = len(file_paths)
    # Parse per file: a syntax error becomes a PARSE finding for that
    # file and the rest of the tree is still analyzed — an eager batch
    # parse would abort the run while claiming every file was scanned.
    files: List[SourceFile] = []
    parse_findings: List[Finding] = []
    for path in file_paths:
        try:
            files.append(SourceFile.read(path))
        except SyntaxError as exc:
            parse_findings.append(
                Finding(
                    path=path,
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    rule="PARSE",
                    severity=Severity.ERROR,
                    message=f"syntax error: {exc.msg}",
                    line_text=(exc.text or "").strip(),
                )
            )
    findings, report.suppressed = run_rules(files, rules)
    findings = sorted(parse_findings + findings)
    if baseline is not None:
        new, grandfathered, unused = baseline.split(findings)
        report.findings = new
        report.grandfathered = grandfathered
        report.unused_baseline = unused
    else:
        report.findings = findings
    return report
