"""The repro-lint analysis driver.

Collects python files, parses each once, runs every file-scope rule on
every file and every project-scope rule on the whole set, applies
inline suppressions, and returns one :class:`AnalysisReport`.

File-scope rule results can be cached per file (content-addressed, see
:mod:`repro.analysis.cache`) and computed in parallel (``jobs``);
suppressions, the baseline, and project-scope rules always run live in
the calling process, so the policy layers can never go stale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.cache import FindingsCache
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, all_rules
from repro.analysis.source import SourceFile


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    grandfathered: List[Finding] = field(default_factory=list)
    unused_baseline: List[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        """True when no new (unsuppressed, unbaselined) findings exist."""
        return not self.findings

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen = []
    for path in paths:
        if os.path.isfile(path):
            seen.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [
                    d for d in dirnames
                    if d not in ("__pycache__", ".git")
                ]
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        seen.append(os.path.join(dirpath, name))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return seen


def parse_files(paths: Iterable[str]) -> List[SourceFile]:
    """Parse every path eagerly, raising on the first ``SyntaxError``.

    :func:`analyze` parses per-file instead so one unparseable file
    cannot abort a whole run; this strict variant serves callers (and
    tests) that want the failure raised.
    """
    return [SourceFile.read(path) for path in paths]


def run_rules(
    files: List[SourceFile], rules: Optional[List[Rule]] = None
) -> "tuple[List[Finding], List[Finding]]":
    """Raw ``(kept, suppressed)`` findings (baseline not yet applied)."""
    if rules is None:
        rules = all_rules()
    findings: List[Finding] = []
    for rule in rules:
        if rule.scope == "file":
            for src in files:
                findings.extend(rule.run(src))
        else:
            findings.extend(rule.run(files))
    return _apply_suppressions(findings, files)


def _apply_suppressions(
    findings: List[Finding], files: List[SourceFile]
) -> "tuple[List[Finding], List[Finding]]":
    by_path = {src.path: src for src in files}
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        src = by_path.get(finding.path)
        if src is not None and src.is_suppressed(finding.rule, finding.line):
            suppressed.append(finding)
        else:
            kept.append(finding)
    return sorted(kept), suppressed


def _file_rule_findings(src: SourceFile, rules: List[Rule]) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.run(src))
    return findings


def _worker(job: "Tuple[str, Tuple[str, ...]]") -> "Tuple[str, List[dict]]":
    """Pool worker: parse one file, run the named file-scope rules.

    Takes and returns only plain JSON-ish values so it works under any
    multiprocessing start method.  Parse failures return no findings —
    the parent already parsed the file and reported them.
    """
    path, rule_ids = job
    wanted = set(rule_ids)
    rules = [r for r in all_rules() if r.id in wanted]
    try:
        src = SourceFile.read(path)
    except (SyntaxError, OSError):
        return path, []
    return path, [f.as_dict() for f in _file_rule_findings(src, rules)]


def _compute_file_findings(
    files: List[SourceFile],
    file_rules: List[Rule],
    jobs: int,
) -> Dict[str, List[Finding]]:
    """``{path: findings}`` for file-scope rules, optionally parallel."""
    if jobs > 1 and len(files) > 1:
        import multiprocessing

        rule_ids = tuple(r.id for r in file_rules)
        payload = [(src.path, rule_ids) for src in files]
        with multiprocessing.Pool(processes=jobs) as pool:
            results = pool.map(_worker, payload)
        return {
            path: [Finding.from_dict(raw) for raw in dicts]
            for path, dicts in results
        }
    return {
        src.path: _file_rule_findings(src, file_rules) for src in files
    }


def analyze(
    paths: Sequence[str],
    baseline: Optional[Baseline] = None,
    rules: Optional[List[Rule]] = None,
    cache: Optional[FindingsCache] = None,
    jobs: int = 1,
) -> AnalysisReport:
    """Run the full analysis over ``paths``.

    Parameters
    ----------
    paths:
        Files and/or directories to scan.
    baseline:
        Optional committed baseline; matching findings are reported as
        grandfathered instead of new.
    rules:
        Optional explicit rule list (defaults to the full registry).
    cache:
        Optional :class:`FindingsCache`; file-scope results are reused
        for files whose content (and rule set) is unchanged.
    jobs:
        Worker processes for file-scope rules on cache misses (1 =
        in-process).
    """
    if rules is None:
        rules = all_rules()
    file_rules = [r for r in rules if r.scope == "file"]
    project_rules = [r for r in rules if r.scope != "file"]
    report = AnalysisReport()
    file_paths = collect_files(paths)
    report.files_scanned = len(file_paths)
    # Parse per file: a syntax error becomes a PARSE finding for that
    # file and the rest of the tree is still analyzed — an eager batch
    # parse would abort the run while claiming every file was scanned.
    files: List[SourceFile] = []
    parse_findings: List[Finding] = []
    for path in file_paths:
        try:
            files.append(SourceFile.read(path))
        except SyntaxError as exc:
            parse_findings.append(
                Finding(
                    path=path,
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    rule="PARSE",
                    severity=Severity.ERROR,
                    message=f"syntax error: {exc.msg}",
                    line_text=(exc.text or "").strip(),
                )
            )
    # File-scope rules: serve what we can from the cache, compute the
    # rest (possibly in parallel), backfill the cache.
    per_file: Dict[str, List[Finding]] = {}
    keys: Dict[str, str] = {}
    pending: List[SourceFile] = []
    rule_ids = [r.id for r in file_rules]
    for src in files:
        if cache is None:
            pending.append(src)
            continue
        key = cache.key(src.path, src.text.encode("utf-8"), rule_ids)
        keys[src.path] = key
        hit = cache.get(key)
        if hit is None:
            pending.append(src)
        else:
            # The key normalizes the path (abspath), so a hit may have
            # been stored under a different spelling of this file
            # (relative vs absolute); suppression matching is exact on
            # path, so rebind findings to the path being scanned.
            per_file[src.path] = [
                replace(f, path=src.path) for f in hit
            ]
    computed = _compute_file_findings(pending, file_rules, jobs)
    per_file.update(computed)
    if cache is not None:
        for path, found in computed.items():
            cache.put(keys[path], found)
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
    findings: List[Finding] = []
    for src in files:
        findings.extend(per_file.get(src.path, []))
    # Project-scope rules relate files to each other; they always run
    # live on the full parsed set.
    for rule in project_rules:
        findings.extend(rule.run(files))
    kept, report.suppressed = _apply_suppressions(findings, files)
    findings = sorted(parse_findings + kept)
    if baseline is not None:
        new, grandfathered, unused = baseline.split(findings)
        report.findings = new
        report.grandfathered = grandfathered
        report.unused_baseline = unused
    else:
        report.findings = findings
    return report
