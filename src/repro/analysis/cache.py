"""Per-file result caching for repro-lint.

File-scope rules (including the flow analyses, which dominate the
runtime) are pure functions of one file's source text plus the rule
implementations.  The cache therefore keys each file on

* a *tool salt* — the python version, the human-readable
  ``RULESET_VERSION``, a hash over every ``repro.analysis`` source
  file, and a hash of :mod:`repro.engine.driver` (the flow rules fold
  variant ASTs with the driver's own specializer, so its semantics are
  part of the rule semantics);
* the ids of the file-scope rules that ran;
* the sha256 of the file's source bytes.

Entries store the *raw* findings (before suppression and baseline are
applied); the runner applies those in-process so the policy layers
never go stale.  Project-scope rules relate files to each other and
are always run live.

Any read error — missing entry, corrupt JSON, wrong schema — degrades
to a cache miss; any write error is ignored.  A lint run must never
fail because of its cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from typing import List, Optional, Sequence

from repro.analysis.findings import Finding

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-lint-cache"

_CACHE_FORMAT = 1

_tool_salt_memo: Optional[str] = None


#: Subpackages whose sources are rule semantics: the checkers
#: themselves (``rules/``), the dataflow core they run on (``flow/``)
#: and the translation validator / escape summaries (``semantics/``).
#: :func:`salted_sources` refuses to hash a view of the package that is
#: missing any of them — a partial walk must fail loudly, not serve
#: stale findings under an unchanged salt.
_REQUIRED_SUBPACKAGES = ("flow", "rules", "semantics")


def _iter_package_sources():
    """(relative name, bytes) for every ``.py`` under repro.analysis."""
    import repro.analysis

    pkg_dir = os.path.dirname(os.path.abspath(repro.analysis.__file__))
    for dirpath, dirnames, filenames in os.walk(pkg_dir):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            full = os.path.join(dirpath, name)
            rel = os.path.relpath(full, pkg_dir)
            with open(full, "rb") as handle:
                yield rel, handle.read()


def salted_sources():
    """The ``(relative name, bytes)`` manifest folded into the salt.

    Covers every ``.py`` under ``repro.analysis`` (the package root and
    all subpackages) plus :mod:`repro.engine.driver`, whose specializer
    the flow/semantics rules fold variants with.  Raises
    ``RuntimeError`` when any of :data:`_REQUIRED_SUBPACKAGES` is
    absent from the walk.
    """
    entries = list(_iter_package_sources())
    present = {rel.split(os.sep, 1)[0] for rel, _ in entries if os.sep in rel}
    missing = [s for s in _REQUIRED_SUBPACKAGES if s not in present]
    if missing:
        raise RuntimeError(
            "tool salt would not cover analysis subpackage(s): "
            + ", ".join(missing)
        )
    try:
        import repro.engine.driver as _driver

        with open(os.path.abspath(_driver.__file__), "rb") as handle:
            entries.append(("<engine>/driver.py", handle.read()))
    except Exception:  # pragma: no cover - driver always importable here
        entries.append(("<engine>/driver.py", b"<no driver>"))
    return entries


def tool_salt() -> str:
    """Hash of everything that could change a rule's output besides
    the scanned file itself (memoized per process)."""
    global _tool_salt_memo
    if _tool_salt_memo is not None:
        return _tool_salt_memo
    from repro.analysis.rules import RULESET_VERSION

    digest = hashlib.sha256()
    digest.update(sys.version.encode())
    digest.update(RULESET_VERSION.encode())
    for rel, blob in salted_sources():
        digest.update(rel.encode())
        digest.update(b"\x00")
        digest.update(blob)
        digest.update(b"\x00")
    _tool_salt_memo = digest.hexdigest()
    return _tool_salt_memo


class FindingsCache:
    """Content-addressed store of per-file, file-scope findings."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR):
        self.root = root
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key(
        self, path: str, source_bytes: bytes, rule_ids: Sequence[str]
    ) -> str:
        digest = hashlib.sha256()
        digest.update(tool_salt().encode())
        digest.update("\x1f".join(sorted(rule_ids)).encode())
        digest.update(b"\x00")
        # Findings embed the scanned path; identical content at a
        # different path must not resurrect the old location.
        digest.update(os.path.abspath(path).encode())
        digest.update(b"\x00")
        digest.update(source_bytes)
        return digest.hexdigest()

    def _entry_path(self, key: str) -> str:
        # Two-level fan-out keeps directory listings short on big trees.
        return os.path.join(self.root, key[:2], key + ".json")

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[List[Finding]]:
        """Cached findings for ``key`` (None on miss or bad entry)."""
        try:
            with open(self._entry_path(key), encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("format") != _CACHE_FORMAT:
                raise ValueError("stale cache format")
            findings = [
                Finding.from_dict(raw) for raw in payload["findings"]
            ]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put(self, key: str, findings: Sequence[Finding]) -> None:
        """Store findings under ``key`` (atomically; errors ignored)."""
        entry = self._entry_path(key)
        payload = {
            "format": _CACHE_FORMAT,
            "findings": [f.as_dict() for f in findings],
        }
        try:
            os.makedirs(os.path.dirname(entry), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(entry), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle)
                os.replace(tmp, entry)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:  # pragma: no cover - disk-full style failures
            pass
