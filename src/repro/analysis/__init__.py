"""repro-lint — AST correctness analysis for the repro codebase.

The package enforces, statically and on every commit, the invariant
classes this reproduction lives by:

* **determinism** — emission order must be a function of the abstract
  graph, never of ``PYTHONHASHSEED`` or construction history (REP001,
  REP002);
* **numeric safety** — probability/threshold floats are never compared
  with ``==`` unguarded, APIs avoid the classic mutable-default /
  bare-except traps (REP003, REP004);
* **engine conformance** — backend ``StateOps`` classes implement the
  full search-engine protocol and the engine recursion is never copied
  outside :mod:`repro.engine`, while the engine keeps every sanitizer
  and observer hook wired (REP005, REP007, REP008);
* **process isolation** — multiprocessing workers never mutate state
  the parent is expected to see (REP006).

Run it with ``python -m repro.analysis [paths…]``; see
``docs/analysis.md`` for the rule catalog, suppression syntax and
baseline workflow.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, all_rules, get_rule, rule
from repro.analysis.runner import AnalysisReport, analyze

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "analyze",
    "get_rule",
    "rule",
]
