"""CI entry point: prove every variant in the matrix, or fail.

``python -m repro.analysis.semantics`` folds the engine's template for
every key in ``legal_variant_keys()`` with the production specializer
and runs the full translation-validation obligations against each.
Output is one PROVEN/FAILED line per key (flag-distinct profiles are
validated once and the verdict shared); exit status 1 on any failure,
with each difference and its source-to-sink trace printed.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence, TextIO, Tuple


def main(argv: Optional[Sequence[str]] = None,
         out: TextIO = sys.stdout) -> int:
    import inspect

    from repro.analysis.semantics.validate import (
        validate_template_source,
    )
    from repro.analysis.source import SourceFile
    from repro.engine import driver

    path = inspect.getsourcefile(driver)
    src = SourceFile.read(path)
    failures: Dict[Tuple, List] = {}
    for key, diff in validate_template_source(src.tree, src.lines):
        failures.setdefault(key, []).append(diff)
    keys = driver.legal_variant_keys()
    profile_of = {
        key: tuple(sorted(driver._flag_env(key).items())) for key in keys
    }
    failed_profiles = {profile_of[key] for key in failures}
    proven = 0
    for key in keys:
        label = driver.variant_id(key)
        ok = profile_of[key] not in failed_profiles
        verdict = "PROVEN" if ok else "FAILED"
        proven += ok
        print(f"{verdict:7s} {label:16s} {key}", file=out)
    print(
        f"{proven}/{len(keys)} variant keys proven equivalent to the "
        "template",
        file=out,
    )
    if not failures:
        return 0
    for key in sorted(failures, key=str):
        label = driver.variant_id(key)
        print(f"\n== {label} {key}", file=out)
        for diff in failures[key]:
            print(f"  [{diff.kind}] {diff.message}", file=out)
            for step in diff.trace:
                print(
                    f"    line {step['line']}: {step['note']}"
                    + (f"  | {step['text']}" if step.get("text") else ""),
                    file=out,
                )
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
