"""Effect/escape summaries for the parallel frontier.

``repro.core.partition.enumerate_parallel`` ships work to a spawn
``multiprocessing`` pool; the roadmap's sharded work-queue engine will
ship *frontier state* (seed chunks, reduced graphs, ``StateOps``
surfaces) the same way.  Two static preconditions make that safe:

1. **Serializability** — everything in a dispatch payload must survive
   pickling.  :class:`PickleTaint` tracks unserializable provenance
   (lambdas, nested-function closures, generator expressions, open
   file handles, locks, and the ``search_ops``/``fast_ops`` closure
   bundles) through the usual taint machinery of
   :mod:`repro.analysis.flow`.
2. **No cross-process mutation** — a worker writing to state it
   received (or to globals / ``os.environ``) is mutating a pickled
   copy; the parent never observes it.  :func:`worker_mutations`
   computes a flow-sensitive per-worker summary: arguments enter
   tainted ``parent`` and writes to still-tainted bases are escapes
   (locally re-created state is rightly silent).

The REP014 rule consumes both; the REP006 rule is re-grounded on
:func:`worker_mutations` (same findings surface, real dataflow
underneath).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.flow import (
    Origin,
    TaintAnalysis,
    Tags,
    build_cfg,
    merge_tags,
    origin_for,
)
from repro.analysis.flow.cfg import Node
from repro.analysis.source import SourceFile, root_name, terminal_name

#: Pool methods whose first positional argument is a worker function
#: and whose second is the payload iterable.
DISPATCH_METHODS = frozenset(
    {"map", "map_async", "imap", "imap_unordered", "starmap",
     "starmap_async", "apply", "apply_async"}
)

#: Constructors that take ``target=``/``args=`` keywords.
_SPAWN_CALLEES = frozenset({"Process", "Thread"})

#: Calls whose result can never cross a process boundary.
_UNPICKLABLE_CALLS = frozenset(
    {"open", "Lock", "RLock", "Condition", "Event", "Semaphore",
     "BoundedSemaphore", "socket", "connect"}
)

#: The engine's per-run closure bundles: bound methods over live
#: backend state, never meant to travel.
_CLOSURE_BUNDLE_CALLS = frozenset({"search_ops", "fast_ops"})

#: Constructors that consume their iterable argument on the calling
#: side: ``tuple(genexp)`` materializes in the parent, so the stateful
#: generator never crosses a boundary (element picklability is beyond
#: this summary's granularity).
_MATERIALIZERS = frozenset(
    {"tuple", "list", "set", "dict", "frozenset", "sorted"}
)

TAG = "unpicklable"


class DispatchSite:
    """One process-boundary call: worker + payload expressions."""

    __slots__ = ("call", "kind", "worker", "payloads")

    def __init__(self, call: ast.Call, kind: str,
                 worker: Optional[ast.expr],
                 payloads: List[ast.expr]):
        self.call = call
        self.kind = kind
        self.worker = worker
        self.payloads = payloads

    @property
    def line(self) -> int:
        return self.call.lineno

    def describe(self) -> str:
        name = terminal_name(self.call.func) or "<call>"
        return f"`{name}(...)`"


def dispatch_sites(tree: ast.AST) -> List[DispatchSite]:
    """Every multiprocessing dispatch in ``tree``, in source order."""
    sites: List[DispatchSite] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in DISPATCH_METHODS
        ):
            worker = node.args[0] if node.args else None
            payloads = list(node.args[1:])
            payloads.extend(kw.value for kw in node.keywords)
            sites.append(DispatchSite(node, "pool", worker, payloads))
        elif terminal_name(func) in _SPAWN_CALLEES:
            worker = None
            payloads = []
            for kw in node.keywords:
                if kw.arg == "target":
                    worker = kw.value
                elif kw.arg in ("args", "kwargs"):
                    payloads.append(kw.value)
            if worker is not None or payloads:
                kind = (terminal_name(func) or "process").lower()
                sites.append(DispatchSite(node, kind, worker, payloads))
    sites.sort(key=lambda s: (s.line, s.call.col_offset))
    return sites


def worker_names(tree: ast.AST) -> Set[str]:
    """Names of functions dispatched to another process in ``tree``."""
    names: Set[str] = set()
    for site in dispatch_sites(tree):
        if isinstance(site.worker, ast.Name):
            names.add(site.worker.id)
    return names


# ----------------------------------------------------------------------
# serializability taint
# ----------------------------------------------------------------------
class PickleTaint(TaintAnalysis):
    """Tags values whose provenance cannot cross a process boundary.

    ``local_defs`` holds the names of functions defined *inside* the
    scope under analysis: referencing one as a value captures a closure
    (unpicklable under the spawn start method), where a module-level
    function pickles by qualified name and stays clean.
    """

    def __init__(self, lines: List[str],
                 local_defs: Optional[Set[str]] = None):
        super().__init__(lines)
        self.local_defs = local_defs or set()
        self.findings: List[Tuple] = []

    def source_tags(self, expr: ast.expr, env) -> Tags:
        if isinstance(expr, ast.Lambda):
            return {
                TAG: origin_for(
                    expr, self.lines, "lambda (unpicklable closure)"
                )
            }
        if isinstance(expr, ast.GeneratorExp):
            return {
                TAG: origin_for(
                    expr, self.lines, "generator expression (stateful, "
                    "unpicklable)"
                )
            }
        if (
            isinstance(expr, ast.Name)
            and isinstance(expr.ctx, ast.Load)
            and expr.id in self.local_defs
        ):
            return {
                TAG: origin_for(
                    expr, self.lines,
                    f"nested function `{expr.id}` (closure, "
                    "unpicklable under spawn)",
                )
            }
        return {}

    def call_tags(self, call: ast.Call, env) -> Tags:
        callee = terminal_name(call.func)
        if callee in _MATERIALIZERS and isinstance(
            call.func, ast.Name
        ):
            return {}
        if callee in _UNPICKLABLE_CALLS:
            return {
                TAG: origin_for(
                    call, self.lines,
                    f"`{callee}(...)` handle (unpicklable)",
                )
            }
        if callee in _CLOSURE_BUNDLE_CALLS:
            return {
                TAG: origin_for(
                    call, self.lines,
                    f"`{callee}()` closure bundle (bound to live "
                    "backend state)",
                )
            }
        return super().call_tags(call, env)

    def check(self, node: Node, env) -> None:
        """Sinks are checked by the rule, not per-node."""


def _local_def_names(func: ast.AST) -> Set[str]:
    return {
        node.name
        for node in ast.walk(func)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node is not func
    }


class PayloadEscape:
    """One unpicklable value reaching a process boundary."""

    __slots__ = ("site", "payload", "origin")

    def __init__(self, site: DispatchSite, payload: ast.expr,
                 origin: Origin):
        self.site = site
        self.payload = payload
        self.origin = origin


def _enclosing_functions(src: SourceFile, call: ast.Call) -> ast.AST:
    node: ast.AST = call
    while node is not None:
        node = src.parent(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
        if node is None or isinstance(node, ast.Module):
            return src.tree
    return src.tree


def payload_escapes(src: SourceFile) -> List[PayloadEscape]:
    """Unpicklable taint flowing into dispatch payloads in ``src``."""
    sites = dispatch_sites(src.tree)
    if not sites:
        return []
    out: List[PayloadEscape] = []
    by_scope: Dict[int, List[DispatchSite]] = {}
    scopes: Dict[int, ast.AST] = {}
    for site in sites:
        scope = _enclosing_functions(src, site.call)
        scopes[id(scope)] = scope
        by_scope.setdefault(id(scope), []).append(site)
    for scope_id, scope_sites in by_scope.items():
        scope = scopes[scope_id]
        body = scope.body if not isinstance(scope, ast.Module) else (
            scope.body
        )
        analysis = PickleTaint(src.lines, _local_def_names(scope))
        cfg = build_cfg(list(body))
        before = analysis.run_quiet(cfg)
        # Locate each dispatch statement's node to read its entry env.
        for node in cfg.nodes:
            if node.stmt is None:
                continue
            env = before.get(node.index)
            if env is None:
                continue
            for site in scope_sites:
                if not _stmt_contains(node.stmt, site.call):
                    continue
                exprs = list(site.payloads)
                if site.worker is not None:
                    exprs.append(site.worker)
                for payload in exprs:
                    probe = payload
                    if site.kind == "pool" and isinstance(
                        payload,
                        (ast.GeneratorExp, ast.ListComp, ast.SetComp),
                    ):
                        # The pool iterates the iterable in the parent;
                        # only its *elements* are pickled.
                        probe = payload.elt
                    origin = analysis.expr_tags(probe, env).get(TAG)
                    if origin is not None:
                        out.append(PayloadEscape(site, payload, origin))
                        break
    return out


def _stmt_contains(stmt: ast.AST, call: ast.Call) -> bool:
    return any(sub is call for sub in ast.walk(stmt))


# ----------------------------------------------------------------------
# cross-process mutation summaries
# ----------------------------------------------------------------------
_PARENT_TAG = "parent"


class _ParentTaint(TaintAnalysis):
    """Taints a worker's parameters as parent-owned state."""

    def check(self, node: Node, env) -> None:
        """Mutation sinks are collected by :func:`worker_mutations`."""


class Mutation:
    """One write to parent-owned (or process-shared) state in a worker."""

    __slots__ = ("node", "what", "origin")

    def __init__(self, node: ast.AST, what: str,
                 origin: Optional[Origin]):
        self.node = node
        self.what = what
        self.origin = origin

    @property
    def line(self) -> int:
        return self.node.lineno


def _write_targets(stmt: ast.AST) -> Iterator[ast.expr]:
    if isinstance(stmt, ast.Assign):
        yield from stmt.targets
    elif isinstance(stmt, ast.AugAssign):
        yield stmt.target
    elif isinstance(stmt, ast.AnnAssign):
        yield stmt.target
    elif isinstance(stmt, ast.Delete):
        yield from stmt.targets


def worker_mutations(
    src: SourceFile, func: ast.FunctionDef
) -> List[Mutation]:
    """Flow-sensitive escape summary of one worker function.

    Every parameter enters tainted as parent-owned; an attribute or
    subscript store whose base still carries the taint at the write is
    a cross-process mutation.  ``global`` declarations and
    ``os.environ`` writes are process-shared state and always flagged.
    A base that was re-created locally (``stats = Stats()``) sheds the
    taint — the strong update in the flow core — so workers that build
    and return their own results stay silent.
    """
    params = [
        arg.arg
        for arg in (
            func.args.posonlyargs + func.args.args + func.args.kwonlyargs
        )
    ]
    if func.args.vararg is not None:
        params.append(func.args.vararg.arg)
    if func.args.kwarg is not None:
        params.append(func.args.kwarg.arg)
    analysis = _ParentTaint(src.lines)
    initial = {
        name: {
            _PARENT_TAG: Origin(
                func.lineno,
                func.col_offset,
                src.line_text(func.lineno),
                f"argument `{name}` received from the parent process",
            )
        }
        for name in params
    }
    cfg = build_cfg(list(func.body))
    before = analysis.run_quiet(cfg, initial)
    mutations: List[Mutation] = []
    seen: Set[Tuple[int, int]] = set()

    def record(node: ast.AST, what: str,
               origin: Optional[Origin]) -> None:
        anchor = (node.lineno, node.col_offset)
        if anchor not in seen:
            seen.add(anchor)
            mutations.append(Mutation(node, what, origin))

    for node in cfg.nodes:
        stmt = node.stmt
        if stmt is None:
            continue
        env = before.get(node.index, {})
        if isinstance(stmt, ast.Global):
            record(
                stmt,
                f"declares global {', '.join(stmt.names)}",
                None,
            )
            continue
        for target in _write_targets(stmt):
            if not isinstance(target, (ast.Attribute, ast.Subscript)):
                continue
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            root = root_name(target.value)
            if root == "environ" or (
                isinstance(target.value, ast.Attribute)
                and target.value.attr == "environ"
            ):
                record(target, "writes os.environ", None)
                continue
            if not isinstance(base, ast.Name):
                continue
            origin = env.get(base.id, {}).get(_PARENT_TAG)
            if origin is None:
                continue
            if root == "self" and isinstance(target, ast.Attribute):
                record(target, f"assigns self.{target.attr}", origin)
            elif isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                record(
                    target,
                    f"mutates attribute '{target.attr}' of argument "
                    f"'{base.id}' (a pickled copy)",
                    origin,
                )
            else:
                record(
                    target,
                    f"writes into '{base.id}', state received from "
                    "the parent process (a pickled copy)",
                    origin,
                )
    mutations.sort(key=lambda m: (m.line, m.node.col_offset))
    return mutations


def module_worker_summaries(src: SourceFile) -> Dict[str, List[Mutation]]:
    """``{worker_name: mutations}`` for every dispatched worker."""
    defs = {
        node.name: node
        for node in src.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    out: Dict[str, List[Mutation]] = {}
    for name in sorted(worker_names(src.tree)):
        func = defs.get(name)
        if func is not None:
            out[name] = worker_mutations(src, func)
    return out


# ----------------------------------------------------------------------
# frontier surfaces (StateOps implementations)
# ----------------------------------------------------------------------
def frontier_returns(src: SourceFile) -> List[Tuple[ast.Return, Origin]]:
    """Unpicklable taint returned from ``root_state`` implementations.

    A class implementing the :class:`~repro.engine.protocol.StateOps`
    protocol (identified structurally: it defines both ``root_state``
    and ``search_ops``) hands frontier state to the engine's seed loop;
    once the work-queue engine ships those states across processes,
    anything unserializable inside them is a crash at dispatch.
    """
    out: List[Tuple[ast.Return, Origin]] = []
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            sub.name: sub
            for sub in node.body
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "root_state" not in methods or "search_ops" not in methods:
            continue
        func = methods["root_state"]
        analysis = PickleTaint(src.lines, _local_def_names(func))
        cfg = build_cfg(list(func.body))
        before = analysis.run_quiet(cfg)
        for cfg_node in cfg.nodes:
            stmt = cfg_node.stmt
            if not isinstance(stmt, ast.Return) or stmt.value is None:
                continue
            env = before.get(cfg_node.index)
            if env is None:
                continue
            origin = analysis.expr_tags(stmt.value, env).get(TAG)
            if origin is not None:
                out.append((stmt, origin))
    return out
