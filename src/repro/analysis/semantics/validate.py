"""Translation validation of the specializer's folded variants.

For one variant key the validator builds two skeletons of the
recursion (:mod:`repro.analysis.semantics.ir`):

* the **spec** side — the shared template normalized under the key's
  flag environment by this package's own independent guard folder;
* the **impl** side — the module the production specializer actually
  emitted (:func:`repro.engine.driver.fold_record`), normalized under
  the empty environment.

A sound specialization makes the two skeletons identical.  Every
divergence becomes a :class:`Difference` carrying a source-to-sink
trace (template site -> enclosing structure -> variant site), which the
REP013 rule renders into findings and SARIF code flows.

On top of the structural diff, three targeted obligations produce
sharper messages for the failure modes that matter most:

* **emission/recursion parity** — the variant must emit at exactly the
  template's emission sites and keep the recursion structure;
* **hook policy** — hooks-on variants must carry exactly the spec
  side's sanitizer/observer hook sites; hooks-off variants must be
  hook-free and must not even reference the ``san``/``obs`` bindings;
* **bitset domain closure** — bitset variants must not reach any
  generic-path backend call (``open_node``/``expand``/``decode``...),
  generic variants must not reach the ``fast_ops`` surface, and a
  bitset-escape taint pass (the REP011 analysis re-run over the folded
  body) must come back clean.
"""

from __future__ import annotations

import ast
import copy
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.semantics.ir import (
    Block,
    Branch,
    Effect,
    FlagEnv,
    Item,
    Loop,
    Nested,
    TryBlock,
    display,
    emissions_of,
    guards_equivalent,
    hook_labels_of,
    iter_effects,
    normalize_function,
    recursions_of,
)

_TEMPLATE_FUNC = "_search_template"

#: Per-comparison cap: one broken fold tends to cascade, and the first
#: differences are the actionable ones.
MAX_DIFFERENCES = 20

#: Names only the generic (SearchOps) path may touch.  A bitset variant
#: reaching one of these has left the bit-parallel domain.
_GENERIC_ONLY_NAMES = frozenset(
    {"hot", "open_node", "lb_refresh", "color_reaches", "expand",
     "retract", "decode"}
)
_GENERIC_ONLY_CALLS = frozenset(
    {"search_ops", "open_node", "lb_refresh", "color_reaches", "expand",
     "retract", "decode"}
)
#: Names only the bitset (fast_ops) path may touch.
_BITSET_ONLY_NAMES = frozenset(
    {"fast", "sv", "nbr_bits", "nlogr", "bit_at", "color_bit",
     "popcount", "select_pivot", "label_of", "exact_accept",
     "exact_x_member", "hi_base", "guard2", "deg_cn", "cn_lb",
     "cn_base", "lb", "bl", "ubit", "c_bits"}
)
_BITSET_ONLY_CALLS = frozenset(
    {"fast_ops", "select_pivot", "exact_accept", "exact_x_member",
     "popcount", "label_of"}
)

_HOOK_NAMES = frozenset({"san", "obs"})


class Difference:
    """One divergence between spec and impl skeletons."""

    __slots__ = ("kind", "message", "line", "spec_line", "trace")

    def __init__(self, kind: str, message: str, line: int,
                 spec_line: int, trace: Tuple):
        self.kind = kind
        self.message = message
        self.line = line
        self.spec_line = spec_line
        self.trace = trace

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.kind}@{self.line}: {self.message}>"


def flag_summary(env: FlagEnv) -> str:
    """Compact flag rendering for messages (`BITSET+KPIVOT`...)."""
    on = [name for name, value in env.items() if value]
    return "+".join(on) if on else "no flags"


# ----------------------------------------------------------------------
# the structural differ
# ----------------------------------------------------------------------
class _Comparison:
    """State for one spec-vs-impl skeleton diff."""

    def __init__(self, lines: Sequence[str], label: str, env: FlagEnv,
                 template_line: int):
        self.lines = lines
        self.label = label
        self.env = env
        self.template_line = template_line
        self.differences: List[Difference] = []

    def full(self) -> bool:
        return len(self.differences) >= MAX_DIFFERENCES

    # -- trace construction -------------------------------------------
    def _step(self, line: int, note: str) -> Dict[str, object]:
        text = ""
        if 0 < line <= len(self.lines):
            text = self.lines[line - 1].strip()
        return {"line": line, "col": 0, "text": text, "note": note}

    def _trace(self, path: List[Dict[str, object]],
               spec_item: Optional[Item], line: int,
               sink_note: str) -> Tuple:
        steps = [
            self._step(
                self.template_line,
                f"template folded under {flag_summary(self.env)} "
                f"(variant `{self.label}`)",
            )
        ]
        steps.extend(path[-3:])
        if spec_item is not None:
            steps.append(
                self._step(
                    spec_item.line,
                    f"template specifies {spec_item.describe()} here",
                )
            )
        steps.append(self._step(line, sink_note))
        return tuple(steps)

    def add(self, kind: str, message: str, line: int, spec_line: int,
            path: List[Dict[str, object]],
            spec_item: Optional[Item], sink_note: str) -> None:
        if self.full():
            return
        self.differences.append(
            Difference(
                kind,
                message,
                line,
                spec_line,
                self._trace(path, spec_item, line, sink_note),
            )
        )

    # -- difference constructors --------------------------------------
    def missing(self, item: Item, path, anchor: Optional[Item]) -> None:
        line = anchor.line if anchor is not None else item.line
        self.add(
            "missing",
            f"folded variant `{self.label}` drops the template's "
            f"{item.describe()} (template line {item.line})",
            line,
            item.line,
            path,
            item,
            f"not present in the folded variant `{self.label}`",
        )

    def extra(self, item: Item, path) -> None:
        self.add(
            "extra",
            f"folded variant `{self.label}` contains {item.describe()} "
            "that the template does not specify at this point",
            item.line,
            item.line,
            path,
            None,
            f"only the folded variant `{self.label}` performs this",
        )

    def reordered(self, a: Item, b: Item, path) -> None:
        self.add(
            "reordered",
            f"folded variant `{self.label}` reorders {a.describe()} "
            f"and {b.describe()} relative to the template",
            b.line,
            a.line,
            path,
            a,
            f"the folded variant `{self.label}` runs "
            f"{b.describe()} first",
        )

    def changed(self, a: Item, b: Item, path) -> None:
        self.add(
            "changed",
            f"folded variant `{self.label}` rewrites the template's "
            f"{a.describe()} into {b.describe()}",
            b.line,
            a.line,
            path,
            a,
            f"the folded variant `{self.label}` has "
            f"{b.describe()} instead",
        )

    def guard(self, a: Branch, b: Branch, path) -> None:
        self.add(
            "guard",
            f"folded variant `{self.label}` guards this block with "
            f"`if {display(b.guard)}` where the folded template "
            f"requires `if {display(a.guard)}`",
            b.line,
            a.line,
            path,
            a,
            f"variant guard `if {display(b.guard)}` is not equivalent",
        )


def _match(a: Item, b: Item) -> bool:
    if type(a) is not type(b):
        return False
    if a.canon == b.canon:
        return True
    if isinstance(a, Branch):
        return guards_equivalent(a.guard, b.guard)
    return False


def _child_pairs(a: Item, b: Item):
    if isinstance(a, Branch):
        yield a.then, b.then
        yield a.orelse, b.orelse
    elif isinstance(a, Loop):
        yield a.body, b.body
        yield a.orelse, b.orelse
    elif isinstance(a, TryBlock):
        yield a.body, b.body
        for (_, ha), (_, hb) in zip(a.handlers, b.handlers):
            yield ha, hb
        yield a.orelse, b.orelse
        yield a.final, b.final
    elif isinstance(a, (Block, Nested)):
        yield a.body, b.body


def _diff_children(a: Item, b: Item, cmp: _Comparison, path) -> None:
    if isinstance(a, Effect):
        return
    entered = path + [cmp._step(a.line, f"inside {a.describe()}")]
    for sub_a, sub_b in _child_pairs(a, b):
        _diff_items(sub_a, sub_b, cmp, entered)


def _diff_items(spec: List[Item], var: List[Item],
                cmp: _Comparison, path) -> None:
    i = j = 0
    while i < len(spec) and j < len(var):
        if cmp.full():
            return
        a, b = spec[i], var[j]
        if _match(a, b):
            _diff_children(a, b, cmp, path)
            i += 1
            j += 1
            continue
        cross_ab = j + 1 < len(var) and _match(a, var[j + 1])
        cross_ba = i + 1 < len(spec) and _match(spec[i + 1], b)
        if cross_ab and cross_ba:
            cmp.reordered(a, b, path)
            _diff_children(a, var[j + 1], cmp, path)
            _diff_children(spec[i + 1], b, cmp, path)
            i += 2
            j += 2
        elif cross_ba:
            cmp.missing(a, path, anchor=b)
            i += 1
        elif cross_ab:
            cmp.extra(b, path)
            j += 1
        else:
            if isinstance(a, Branch) and isinstance(b, Branch):
                cmp.guard(a, b, path)
                _diff_children(a, b, cmp, path)
            else:
                cmp.changed(a, b, path)
            i += 1
            j += 1
    while i < len(spec):
        if cmp.full():
            return
        cmp.missing(spec[i], path, anchor=None)
        i += 1
    while j < len(var):
        if cmp.full():
            return
        cmp.extra(var[j], path)
        j += 1


# ----------------------------------------------------------------------
# targeted obligations
# ----------------------------------------------------------------------
def _emission_parity(spec: List[Item], var: List[Item],
                     cmp: _Comparison) -> None:
    # Multisets, not sets: the template emits the *same* statement at
    # several sites (top-of-call leaf, inlined leaf, singleton path),
    # so a dropped duplicate must still count as a lost site.
    spec_counts: Dict[str, int] = {}
    for e in emissions_of(spec):
        spec_counts[e.canon] = spec_counts.get(e.canon, 0) + 1
    var_counts: Dict[str, int] = {}
    for e in emissions_of(var):
        var_counts[e.canon] = var_counts.get(e.canon, 0) + 1
    reported: Set[str] = set()
    for effect in emissions_of(spec):
        if var_counts.get(effect.canon, 0) < spec_counts[effect.canon]:
            if effect.canon in reported:
                continue
            reported.add(effect.canon)
            cmp.add(
                "emission",
                f"folded variant `{cmp.label}` lost an emission site "
                f"`{effect.detail}` (template emits this at "
                f"{spec_counts[effect.canon]} site(s), the variant at "
                f"{var_counts.get(effect.canon, 0)})",
                effect.line,
                effect.line,
                [],
                effect,
                "emission site unreachable in the folded variant",
            )
    for effect in emissions_of(var):
        if spec_counts.get(effect.canon, 0) < var_counts[effect.canon]:
            if effect.canon in reported:
                continue
            reported.add(effect.canon)
            cmp.add(
                "emission",
                f"folded variant `{cmp.label}` emits `{effect.detail}` "
                "at a site the template does not specify",
                effect.line,
                effect.line,
                [],
                None,
                "emission site only exists in the folded variant",
            )


def _recursion_parity(spec: List[Item], var: List[Item],
                      cmp: _Comparison) -> None:
    spec_calls = {e.canon for e in recursions_of(spec)}
    var_calls = {e.canon for e in recursions_of(var)}
    if spec_calls != var_calls:
        missing = spec_calls - var_calls
        anchor = next(
            (e for e in recursions_of(spec) if e.canon in missing),
            None,
        ) or next(iter(recursions_of(var)), None)
        line = anchor.line if anchor is not None else cmp.template_line
        cmp.add(
            "recursion",
            f"folded variant `{cmp.label}` changes the recursion "
            "structure: self-call sites do not match the template",
            line,
            line,
            [],
            anchor if anchor is not None and missing else None,
            "recursive call structure diverges here",
        )


def _hook_policy(spec: List[Item], var: List[Item],
                 var_func: ast.AST, cmp: _Comparison) -> None:
    var_hooks = hook_labels_of(var)
    if not cmp.env.get("HOOKS"):
        for effect in iter_effects(var):
            if effect.kind == "hook":
                cmp.add(
                    "hook-leak",
                    f"hook call `{effect.detail}` survives in the "
                    f"hookless variant `{cmp.label}` — the fold must "
                    "remove every sanitizer/observer site",
                    effect.line,
                    effect.line,
                    [],
                    None,
                    "hook call reachable with HOOKS folded off",
                )
        for node in ast.walk(var_func):
            if (
                isinstance(node, ast.Name)
                and node.id in _HOOK_NAMES
                and isinstance(node.ctx, ast.Load)
            ):
                cmp.add(
                    "hook-leak",
                    f"hookless variant `{cmp.label}` still references "
                    f"the `{node.id}` binding at line {node.lineno}",
                    node.lineno,
                    node.lineno,
                    [],
                    None,
                    f"`{node.id}` load reachable with HOOKS folded off",
                )
                break
        return
    spec_hooks = hook_labels_of(spec)
    missing = sorted(set(spec_hooks) - set(var_hooks))
    for label in missing:
        anchor = next(
            (
                e
                for e in iter_effects(spec)
                if e.kind == "hook" and label in e.detail.split(",")
            ),
            None,
        )
        line = anchor.line if anchor is not None else cmp.template_line
        cmp.add(
            "hook-missing",
            f"hooked variant `{cmp.label}` lost the hook site "
            f"`{label}` (template line {line})",
            line,
            line,
            [],
            anchor,
            "hook site unreachable in the folded variant",
        )


def _domain_closure(var_func: ast.AST, cmp: _Comparison) -> None:
    bitset = bool(cmp.env.get("BITSET"))
    bad_names = _GENERIC_ONLY_NAMES if bitset else _BITSET_ONLY_NAMES
    bad_calls = _GENERIC_ONLY_CALLS if bitset else _BITSET_ONLY_CALLS
    shape = "bitset" if bitset else "generic"
    other = "generic" if bitset else "bitset"
    seen: Set[str] = set()
    for node in ast.walk(var_func):
        name: Optional[str] = None
        what = ""
        if isinstance(node, ast.Call):
            from repro.analysis.source import terminal_name

            callee = terminal_name(node.func)
            if callee in bad_calls:
                name = callee
                what = f"calls the {other}-path operation `{callee}(...)`"
        elif isinstance(node, ast.Name) and node.id in bad_names:
            name = node.id
            what = f"references the {other}-path binding `{node.id}`"
        if name is None or name in seen:
            continue
        seen.add(name)
        cmp.add(
            "domain",
            f"{shape} variant `{cmp.label}` {what} at line "
            f"{node.lineno} — the fold must keep the {shape} path "
            f"closed over its own domain",
            node.lineno,
            node.lineno,
            [],
            None,
            f"{other}-path surface reachable in the {shape} variant",
        )


def _bitset_escape(var_func: ast.AST, cmp: _Comparison) -> None:
    """Re-run the REP011 bitset-escape taint over the folded body.

    Structural equality cannot catch a template *and* variant that both
    materialize a bitset (the spec side would be equally wrong); the
    taint pass proves the folded bitset path stays in the int/popcount
    domain regardless of what the template says.
    """
    # Imported lazily: rules modules import this package at registration
    # time, so a module-level import would be circular.
    from repro.analysis.flow import build_cfg
    from repro.analysis.rules.flow_domains import _BitsTaint, _range_vars

    funcs = [
        node
        for node in ast.walk(var_func)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    if isinstance(var_func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        funcs.insert(0, var_func)
    seen_lines: Set[int] = set()
    for func in dict.fromkeys(funcs):
        analysis = _BitsTaint(
            list(cmp.lines), None, range_vars=_range_vars(func)
        )
        analysis.func_name = func.name
        analysis.run(build_cfg(func.body))
        for where, what, origin in analysis.findings:
            if where.lineno in seen_lines or cmp.full():
                continue
            seen_lines.add(where.lineno)
            root = origin.root()
            steps = tuple(
                [
                    cmp._step(
                        cmp.template_line,
                        "template folded under "
                        f"{flag_summary(cmp.env)} (variant "
                        f"`{cmp.label}`)",
                    )
                ]
                + origin.steps()
                + [cmp._step(where.lineno, f"bitset {what}")]
            )
            cmp.differences.append(
                Difference(
                    "domain",
                    f"bitset variant `{cmp.label}` {what} a bitset "
                    f"value (from {root.note}, line {root.line}) — "
                    "the folded hot path left the bit-parallel domain",
                    where.lineno,
                    root.line,
                    steps,
                )
            )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def validate_variant(
    template_func: ast.AST,
    variant_func: ast.AST,
    env: FlagEnv,
    lines: Sequence[str],
    label: str,
) -> List[Difference]:
    """All proof obligations for one (template, variant, env) triple."""
    spec = normalize_function(template_func, env)
    var = normalize_function(variant_func, {})
    cmp = _Comparison(lines, label, env, template_func.lineno)
    _emission_parity(spec, var, cmp)
    _recursion_parity(spec, var, cmp)
    _hook_policy(spec, var, variant_func, cmp)
    _domain_closure(variant_func, cmp)
    if env.get("BITSET"):
        _bitset_escape(variant_func, cmp)
    _diff_items(spec, var, cmp, [])
    return cmp.differences


def _template_def(tree: ast.AST) -> Optional[ast.FunctionDef]:
    for node in getattr(tree, "body", []):
        if isinstance(node, ast.FunctionDef) and node.name == _TEMPLATE_FUNC:
            return node
    return None


def validate_template_source(
    tree: ast.AST, lines: Sequence[str]
) -> Iterator[Tuple[Tuple, Difference]]:
    """Validate every legal variant of the template defined in ``tree``.

    The template is taken from the parsed source under analysis (so
    traces anchor to real lines and inline suppressions keep working),
    and each variant side is folded by the **production specializer**
    via :func:`repro.engine.driver.fold_record` — the validator checks
    the artifact the engine would actually compile, not a re-creation.
    Yields ``(key, difference)`` pairs; a clean template yields nothing.
    """
    from repro.engine import driver

    template = _template_def(tree)
    if template is None:
        return
    seen_profiles: Set[Tuple] = set()
    for key in driver.legal_variant_keys():
        env = driver._flag_env(key)
        profile = tuple(sorted(env.items()))
        if profile in seen_profiles:
            continue
        seen_profiles.add(profile)
        module = ast.Module(
            body=[copy.deepcopy(template)], type_ignores=[]
        )
        record = driver.fold_record(key, template=module)
        variant_func = _template_def(record.module)
        label = driver.variant_id(key)
        if variant_func is None:
            yield key, Difference(
                "missing",
                f"specializer fold for `{label}` lost the template "
                "function entirely",
                template.lineno,
                template.lineno,
                (),
            )
            continue
        for diff in validate_variant(
            template, variant_func, record.env, lines, label
        ):
            yield key, diff


def proven_keys(tree: ast.AST, lines: Sequence[str]) -> Dict[Tuple, int]:
    """``{key: difference_count}`` over every legal key (0 = proven)."""
    from repro.engine import driver

    counts: Dict[Tuple, int] = {
        key: 0 for key in driver.legal_variant_keys()
    }
    profile_of = {
        key: tuple(sorted(driver._flag_env(key).items()))
        for key in counts
    }
    profile_fail: Dict[Tuple, int] = {}
    for key, _diff in validate_template_source(tree, lines):
        profile_fail[profile_of[key]] = (
            profile_fail.get(profile_of[key], 0) + 1
        )
    for key in counts:
        counts[key] = profile_fail.get(profile_of[key], 0)
    return counts
