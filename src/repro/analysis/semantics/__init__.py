"""Translation validation and escape analysis for the search engine.

Two subsystems live here, both built on the :mod:`repro.analysis.flow`
core and consumed by the REP013/REP014 rules (plus the re-grounded
REP006/REP009):

* :mod:`~repro.analysis.semantics.ir` /
  :mod:`~repro.analysis.semantics.validate` — a translation validator
  that proves every AST-folded recursion variant is a sound
  specialization of the shared template (same emission sites, same
  recursion structure, hook sites exactly when ``HOOKS`` is on,
  bitset-domain closure on the bitset path);
* :mod:`~repro.analysis.semantics.escape` — interprocedural
  effect/escape summaries over worker dispatches and ``StateOps``
  frontier surfaces (serializability + cross-process mutation).

``python -m repro.analysis.semantics`` runs the validator over the
full variant matrix and exits nonzero on any unproven variant (the CI
gate).
"""

from repro.analysis.semantics.ir import (
    Effect,
    FlagEnv,
    display,
    emissions_of,
    fold_guard,
    guards_equivalent,
    hook_labels_of,
    iter_effects,
    normalize_function,
    recursions_of,
)
from repro.analysis.semantics.validate import (
    Difference,
    flag_summary,
    proven_keys,
    validate_template_source,
    validate_variant,
)
from repro.analysis.semantics.escape import (
    DispatchSite,
    Mutation,
    PayloadEscape,
    PickleTaint,
    dispatch_sites,
    frontier_returns,
    module_worker_summaries,
    payload_escapes,
    worker_mutations,
    worker_names,
)

__all__ = [
    "Difference",
    "DispatchSite",
    "Effect",
    "FlagEnv",
    "Mutation",
    "PayloadEscape",
    "PickleTaint",
    "dispatch_sites",
    "display",
    "emissions_of",
    "flag_summary",
    "fold_guard",
    "frontier_returns",
    "guards_equivalent",
    "hook_labels_of",
    "iter_effects",
    "module_worker_summaries",
    "normalize_function",
    "payload_escapes",
    "proven_keys",
    "recursions_of",
    "validate_template_source",
    "validate_variant",
    "worker_mutations",
    "worker_names",
]
