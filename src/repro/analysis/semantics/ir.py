"""Guarded-command IR for the translation validator.

The specializer in :mod:`repro.engine.driver` turns the shared
recursion template into per-configuration variants by folding the
spec-flag ``if`` statements (``HOOKS``/``BITSET``/...).  To *prove* a
fold sound rather than trust it, this module re-derives — completely
independently of the specializer — what a function means under a flag
assignment, as a **guarded-command skeleton**:

* :class:`Effect` — one observable simple statement (emission, hook
  call, recursive call, state mutation, raise, return, ...), carrying a
  canonical form of the full statement;
* :class:`Branch` / :class:`Loop` / :class:`TryBlock` / :class:`Block`
  — the guarded structure around the effects, with spec flags folded
  out of the guards by :func:`fold_guard`;
* :class:`Nested` — a nested function/class definition with its own
  skeleton (the template's ``search``/``flush`` closures).

Two skeletons derived from the same template — one by normalizing the
template under the flag environment (the *spec* side), one by
normalizing the specializer's folded output under the empty environment
(the *impl* side) — must be identical.  Anything the fold dropped,
duplicated, reordered or rewrote shows up as a skeleton difference;
:mod:`repro.analysis.semantics.validate` turns those into findings.

Guards are compared canonically (:func:`guard_canon`, position-free
``ast.dump``) with a truth-table equivalence fallback
(:func:`guards_equivalent`) so a fold that simplifies a boolean
differently from this module's own folder still validates — the two
folders agreeing on *semantics* is the point, not on syntax.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.analysis.source import root_name, terminal_name

#: Callee names that emit a clique into the run's sink.  The template
#: devirtualizes the sink into ``sink_call``; fixtures may use the
#: parameter name ``sink`` directly.
EMIT_CALLEES = frozenset({"sink", "sink_call"})

#: Receiver names whose ``on_*`` attribute calls are runtime hooks —
#: the same convention REP007/REP008 pin down
#: (:mod:`repro.analysis.fingerprint`).
HOOK_ROOTS = frozenset({"san", "obs"})

#: Truth-table equivalence is exact up to this many distinct atoms;
#: larger guards fall back to canonical-form equality only.
MAX_GUARD_ATOMS = 8

FlagEnv = Dict[str, bool]

_SCOPE_BARRIERS = (
    ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda,
)


# ----------------------------------------------------------------------
# symbolic guard folding
# ----------------------------------------------------------------------
def fold_guard(node: ast.expr, env: FlagEnv):
    """Three-valued fold of an ``if`` test over the flag names.

    Returns ``True``/``False`` when ``env`` decides the test, the
    original node when it does not constrain it at all, or a new AST
    with the decided operands removed.  Folding is by *truthiness* over
    pure operands — the contract of an ``if`` test — so eliminating a
    decided ``BoolOp`` operand is sound regardless of its position.

    This is an independent re-implementation of the specializer's
    ``_fold_test`` on purpose: the validator derives the spec side with
    this folder and checks it against what the production fold
    produced, so a bug in either shows up as a mismatch.
    """
    if isinstance(node, ast.Name):
        if node.id in env:
            return bool(env[node.id])
        return node
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        inner = fold_guard(node.operand, env)
        if inner is True:
            return False
        if inner is False:
            return True
        if inner is node.operand:
            return node
        return ast.UnaryOp(op=ast.Not(), operand=inner)
    if isinstance(node, ast.BoolOp):
        is_or = isinstance(node.op, ast.Or)
        residue: List[ast.expr] = []
        for operand in node.values:
            value = fold_guard(operand, env)
            if value is True:
                if is_or:
                    return True
                # ``and``: a true operand is the neutral element.
            elif value is False:
                if not is_or:
                    return False
                # ``or``: a false operand is the neutral element.
            else:
                residue.append(value)
        if not residue:
            return not is_or
        if len(residue) == 1:
            return residue[0]
        if len(residue) == len(node.values) and all(
            a is b for a, b in zip(residue, node.values)
        ):
            return node
        return ast.BoolOp(op=node.op, values=residue)
    return node


def guard_canon(expr: ast.expr) -> str:
    """Position-free canonical form of a guard (or any expression)."""
    return ast.dump(expr)


def display(node: ast.AST, limit: int = 72) -> str:
    """Compact single-line source rendering for messages."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - malformed synthetic nodes
        text = ast.dump(node)
    text = " ".join(text.split())
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text


# ----------------------------------------------------------------------
# guard equivalence (truth table over atoms)
# ----------------------------------------------------------------------
def _bool_tree(expr: ast.expr):
    if isinstance(expr, ast.BoolOp):
        op = "or" if isinstance(expr.op, ast.Or) else "and"
        return (op, [_bool_tree(v) for v in expr.values])
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        return ("not", [_bool_tree(expr.operand)])
    return ("atom", guard_canon(expr))


def _atoms(tree, acc: set) -> None:
    kind, rest = tree
    if kind == "atom":
        acc.add(rest)
    else:
        for child in rest:
            _atoms(child, acc)


def _eval_tree(tree, assign: Dict[str, bool]) -> bool:
    kind, rest = tree
    if kind == "atom":
        return assign[rest]
    if kind == "not":
        return not _eval_tree(rest[0], assign)
    values = [_eval_tree(child, assign) for child in rest]
    return any(values) if kind == "or" else all(values)


def guards_equivalent(a: ast.expr, b: ast.expr) -> bool:
    """True when two guards agree on every assignment of their atoms.

    Atoms are maximal non-boolean subexpressions compared by canonical
    form; with more than :data:`MAX_GUARD_ATOMS` distinct atoms the
    check conservatively returns False (canonical equality was already
    tried by the caller).
    """
    ta, tb = _bool_tree(a), _bool_tree(b)
    atoms: set = set()
    _atoms(ta, atoms)
    _atoms(tb, atoms)
    ordered = sorted(atoms)
    if len(ordered) > MAX_GUARD_ATOMS:
        return False
    for bits in range(1 << len(ordered)):
        assign = {
            atom: bool(bits >> i & 1) for i, atom in enumerate(ordered)
        }
        if _eval_tree(ta, assign) != _eval_tree(tb, assign):
            return False
    return True


# ----------------------------------------------------------------------
# skeleton nodes
# ----------------------------------------------------------------------
class Effect:
    """One observable simple statement."""

    __slots__ = ("kind", "detail", "canon", "line")

    def __init__(self, kind: str, detail: str, canon: str, line: int):
        self.kind = kind
        self.detail = detail
        self.canon = canon
        self.line = line

    def children(self) -> List["Item"]:
        return []

    def describe(self) -> str:
        return f"{self.kind} `{self.detail}`" if self.detail else self.kind

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.kind} {self.detail!r}@{self.line}>"


class Branch:
    """A residual ``if`` whose guard the flags did not decide."""

    __slots__ = ("guard", "canon", "line", "then", "orelse")

    kind = "branch"

    def __init__(self, guard: ast.expr, line: int,
                 then: List["Item"], orelse: List["Item"]):
        self.guard = guard
        self.canon = "if:" + guard_canon(guard)
        self.line = line
        self.then = then
        self.orelse = orelse

    def children(self) -> List["Item"]:
        return self.then + self.orelse

    def describe(self) -> str:
        return f"branch `if {display(self.guard)}`"


class Loop:
    """A ``while``/``for`` loop with its normalized body."""

    __slots__ = ("kind", "canon", "line", "head", "body", "orelse")

    def __init__(self, kind: str, canon: str, head: str, line: int,
                 body: List["Item"], orelse: List["Item"]):
        self.kind = kind
        self.canon = canon
        self.head = head
        self.line = line
        self.body = body
        self.orelse = orelse

    def children(self) -> List["Item"]:
        return self.body + self.orelse

    def describe(self) -> str:
        return f"loop `{self.head}`"


class TryBlock:
    """A ``try`` with normalized body/handlers/else/finally."""

    __slots__ = ("canon", "line", "body", "handlers", "orelse", "final")

    kind = "try"

    def __init__(self, line: int, body: List["Item"],
                 handlers: List[Tuple[str, List["Item"]]],
                 orelse: List["Item"], final: List["Item"]):
        self.canon = "try:" + ";".join(h for h, _ in handlers)
        self.line = line
        self.body = body
        self.handlers = handlers
        self.orelse = orelse
        self.final = final

    def children(self) -> List["Item"]:
        out = list(self.body)
        for _, handler in self.handlers:
            out.extend(handler)
        out.extend(self.orelse)
        out.extend(self.final)
        return out

    def describe(self) -> str:
        return "try block"


class Block:
    """A ``with`` block (structural; the template has none, fixtures may)."""

    __slots__ = ("canon", "line", "head", "body")

    kind = "with"

    def __init__(self, canon: str, head: str, line: int,
                 body: List["Item"]):
        self.canon = canon
        self.head = head
        self.line = line
        self.body = body

    def children(self) -> List["Item"]:
        return self.body

    def describe(self) -> str:
        return f"with block `{self.head}`"


class Nested:
    """A nested function/class definition with its own skeleton."""

    __slots__ = ("canon", "line", "name", "body")

    kind = "nested"

    def __init__(self, name: str, line: int, body: List["Item"]):
        self.canon = "def:" + name
        self.line = line
        self.name = name
        self.body = body

    def children(self) -> List["Item"]:
        return self.body

    def describe(self) -> str:
        return f"nested definition `{self.name}`"


Item = Union[Effect, Branch, Loop, TryBlock, Block, Nested]


# ----------------------------------------------------------------------
# normalization
# ----------------------------------------------------------------------
def _walk_own_expr(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested scopes."""
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, _SCOPE_BARRIERS):
            continue
        yield from _walk_own_expr(child)


def hook_label(call: ast.Call) -> Optional[str]:
    """``root:hook:on_name[:detail]`` for a hook call, else None.

    Mirrors the REP007/REP008 label convention
    (:func:`repro.analysis.fingerprint.hook_labels`) with the receiver
    root prefixed, so sanitizer and observer coverage stay separable.
    """
    if not isinstance(call.func, ast.Attribute):
        return None
    callee = terminal_name(call.func)
    root = root_name(call.func)
    if (
        callee is None
        or root is None
        or root not in HOOK_ROOTS
        or not callee.startswith("on_")
    ):
        return None
    label = f"{root}:hook:{callee}"
    if call.args:
        first = call.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            label += ":" + first.value
    return label


def _effect_for(stmt: ast.stmt, scope: Optional[str]) -> Effect:
    canon = ast.dump(stmt)
    line = getattr(stmt, "lineno", 0)
    if isinstance(stmt, ast.Raise):
        detail = display(stmt.exc) if stmt.exc is not None else ""
        return Effect("raise", detail, canon, line)
    if isinstance(stmt, ast.Return):
        detail = display(stmt.value) if stmt.value is not None else ""
        return Effect("return", detail, canon, line)
    if isinstance(stmt, ast.Break):
        return Effect("break", "", canon, line)
    if isinstance(stmt, ast.Continue):
        return Effect("continue", "", canon, line)
    if isinstance(stmt, (ast.Global, ast.Nonlocal)):
        kind = "global" if isinstance(stmt, ast.Global) else "nonlocal"
        return Effect("scope", f"{kind} {', '.join(stmt.names)}", canon, line)
    calls = [
        sub for sub in _walk_own_expr(stmt) if isinstance(sub, ast.Call)
    ]
    emits = [
        c for c in calls if terminal_name(c.func) in EMIT_CALLEES
    ]
    hooks = [label for label in map(hook_label, calls) if label is not None]
    recurses = [
        c
        for c in calls
        if isinstance(c.func, ast.Name) and c.func.id == scope
    ]
    if emits:
        return Effect("emit", display(emits[0]), canon, line)
    if hooks:
        return Effect("hook", ",".join(hooks), canon, line)
    if recurses:
        return Effect("recurse", display(recurses[0]), canon, line)
    if isinstance(
        stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)
    ):
        return Effect("mutate", display(stmt), canon, line)
    if calls:
        names = []
        for c in calls:
            name = terminal_name(c.func)
            if name and name not in names:
                names.append(name)
        return Effect("call", ",".join(names) or display(stmt), canon, line)
    return Effect("stmt", display(stmt), canon, line)


def _normalize_stmt(
    stmt: ast.stmt, env: FlagEnv, scope: Optional[str]
) -> List[Item]:
    if isinstance(stmt, ast.If):
        guard = fold_guard(stmt.test, env)
        if guard is True:
            return _normalize_block(stmt.body, env, scope)
        if guard is False:
            return _normalize_block(stmt.orelse, env, scope)
        then = _normalize_block(stmt.body, env, scope)
        orelse = _normalize_block(stmt.orelse, env, scope)
        if not then and not orelse:
            return []
        return [Branch(guard, stmt.lineno, then, orelse)]
    if isinstance(stmt, ast.While):
        return [
            Loop(
                "while",
                "while:" + guard_canon(stmt.test),
                f"while {display(stmt.test)}",
                stmt.lineno,
                _normalize_block(stmt.body, env, scope),
                _normalize_block(stmt.orelse, env, scope),
            )
        ]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        canon = (
            "for:" + guard_canon(stmt.target) + ":" + guard_canon(stmt.iter)
        )
        head = f"for {display(stmt.target)} in {display(stmt.iter)}"
        return [
            Loop(
                "for",
                canon,
                head,
                stmt.lineno,
                _normalize_block(stmt.body, env, scope),
                _normalize_block(stmt.orelse, env, scope),
            )
        ]
    if isinstance(stmt, ast.Try):
        handlers = [
            (
                guard_canon(h.type) if h.type is not None else "*",
                _normalize_block(h.body, env, scope),
            )
            for h in stmt.handlers
        ]
        return [
            TryBlock(
                stmt.lineno,
                _normalize_block(stmt.body, env, scope),
                handlers,
                _normalize_block(stmt.orelse, env, scope),
                _normalize_block(stmt.finalbody, env, scope),
            )
        ]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        canon = "with:" + ";".join(
            guard_canon(item.context_expr) for item in stmt.items
        )
        head = ", ".join(display(item.context_expr) for item in stmt.items)
        return [
            Block(
                canon, head, stmt.lineno,
                _normalize_block(stmt.body, env, scope),
            )
        ]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return [
            Nested(
                stmt.name,
                stmt.lineno,
                _normalize_block(stmt.body, env, stmt.name),
            )
        ]
    if isinstance(stmt, ast.ClassDef):
        return [
            Nested(
                stmt.name,
                stmt.lineno,
                _normalize_block(stmt.body, env, scope),
            )
        ]
    if isinstance(stmt, ast.Pass):
        return []
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
        return []  # docstrings / bare constants
    return [_effect_for(stmt, scope)]


def _normalize_block(
    stmts: List[ast.stmt], env: FlagEnv, scope: Optional[str]
) -> List[Item]:
    out: List[Item] = []
    for stmt in stmts:
        out.extend(_normalize_stmt(stmt, env, scope))
    return out


def normalize_function(
    func: ast.AST, env: Optional[FlagEnv] = None
) -> List[Item]:
    """The guarded-command skeleton of one function under ``env``.

    ``env`` maps spec-flag names to booleans; every ``if`` the flags
    decide is folded away, every other statement keeps its structure.
    Pass an empty environment to normalize an already-folded variant.
    """
    return _normalize_block(list(func.body), env or {}, func.name)


def iter_effects(items: List[Item]) -> Iterator[Effect]:
    """Every :class:`Effect` in a skeleton, depth-first."""
    for item in items:
        if isinstance(item, Effect):
            yield item
        else:
            yield from iter_effects(item.children())


def hook_labels_of(items: List[Item]) -> List[str]:
    """All hook labels in a skeleton (one entry per call site)."""
    labels: List[str] = []
    for effect in iter_effects(items):
        if effect.kind == "hook":
            labels.extend(effect.detail.split(","))
    return labels


def emissions_of(items: List[Item]) -> List[Effect]:
    return [e for e in iter_effects(items) if e.kind == "emit"]


def recursions_of(items: List[Item]) -> List[Effect]:
    return [e for e in iter_effects(items) if e.kind == "recurse"]
