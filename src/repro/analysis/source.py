"""Parsed source files and shared AST helpers for repro-lint rules.

Every rule receives :class:`SourceFile` objects — the parsed module
plus the raw lines — so the expensive work (reading, parsing, parent
links, per-line suppression scanning) happens exactly once per file no
matter how many rules run.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: Inline suppression syntax, e.g.::
#:
#:     for v in vertex_set:  # repro-lint: ok REP001 result set is unordered
#:
#: A bare ``# repro-lint: ok`` (no ids) silences every rule on that
#: line.  The comment may sit on the flagged line or on the line
#: directly above it.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ok\b\s*((?:REP\d+[\s,]*)*)"
)


class SourceFile:
    """One parsed python source file handed to the rules."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: ast.Module = ast.parse(text, filename=path)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node
        #: line number -> set of suppressed rule ids (empty set = all).
        self._suppressions: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                ids = set(re.findall(r"REP\d+", match.group(1) or ""))
                self._suppressions[lineno] = ids

    @classmethod
    def read(cls, path: str) -> "SourceFile":
        with open(path, encoding="utf-8") as handle:
            return cls(path, handle.read())

    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (None for the module)."""
        return self._parents.get(node)

    def line_text(self, lineno: int) -> str:
        """The stripped source text of one 1-indexed line."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, rule: str, lineno: int) -> bool:
        """True when the rule is silenced on ``lineno`` (or just above).

        The one-line-above lookup lets long flagged statements carry
        the comment on their own line instead of overflowing the
        flagged one.
        """
        for where in (lineno, lineno - 1):
            ids = self._suppressions.get(where)
            if ids is not None and (not ids or rule in ids):
                return True
        return False


# ----------------------------------------------------------------------
# small AST utilities shared by several rules
# ----------------------------------------------------------------------
def call_name(node: ast.AST) -> Optional[str]:
    """The simple callee name of a Call (``f(...)`` or ``x.f(...)``)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """The first identifier of a Name/Attribute chain (``a.b.c`` -> ``a``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def walk_functions(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
    """Yield every function with its stack of enclosing scopes.

    The stack contains the enclosing Module/ClassDef/FunctionDef nodes
    from outermost to innermost (excluding the function itself).
    """
    def visit(node: ast.AST, stack: List[ast.AST]) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, stack
                yield from visit(child, stack + [child])
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, stack + [child])
            else:
                yield from visit(child, stack)

    yield from visit(tree, [tree])
