"""Finding and severity objects shared by every repro-lint rule.

A :class:`Finding` is one diagnosed violation: a rule id, a severity,
a source location and a human-readable message.  Findings are plain
frozen dataclasses so they can be sorted, hashed, serialized to JSON
and compared against baseline entries without any rule-specific logic.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break reproducibility or backend parity
    outright; ``WARNING`` findings are numeric-hygiene smells that a
    reviewer must either fix or explicitly justify.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity = field(compare=False)
    message: str = field(compare=False)
    #: The stripped source line the finding points at.  Baseline
    #: matching keys on this text instead of the line number, so
    #: unrelated edits above a grandfathered finding do not invalidate
    #: the baseline entry.
    line_text: str = field(compare=False, default="")
    #: Dataflow trace (flow rules only): a tuple of step dicts with
    #: ``line``/``col``/``text``/``note`` keys, oldest (the source)
    #: first and the sink last.  Empty for single-point rules.
    trace: Tuple[Dict[str, object], ...] = field(compare=False, default=())
    #: Structural fingerprint (flow rules only): hashes the source and
    #: sink *text*, never line numbers, so unrelated edits do not
    #: invalidate baseline suppressions.  Empty for single-point rules.
    fingerprint: str = field(compare=False, default="")

    def format_text(self) -> str:
        """Render in the classic ``path:line:col: RULE sev: msg`` shape."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )

    def as_dict(self) -> dict:
        """JSON-ready representation (used by ``--format=json``)."""
        out = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "line_text": self.line_text,
        }
        if self.trace:
            out["trace"] = list(self.trace)
        if self.fingerprint:
            out["fingerprint"] = self.fingerprint
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "Finding":
        """Inverse of :meth:`as_dict` (used by the analysis cache)."""
        return cls(
            path=raw["path"],
            line=raw["line"],
            col=raw["col"],
            rule=raw["rule"],
            severity=Severity(raw["severity"]),
            message=raw["message"],
            line_text=raw.get("line_text", ""),
            trace=tuple(raw.get("trace", ())),
            fingerprint=raw.get("fingerprint", ""),
        )


def flow_fingerprint(rule: str, source_text: str, sink_text: str) -> str:
    """Stable fingerprint for a flow finding's source/sink pair.

    Deliberately excludes line numbers and intermediate hops: a
    suppression survives any edit that keeps the source and sink lines
    textually intact.
    """
    digest = hashlib.sha256(
        "\x1f".join((rule, source_text.strip(), sink_text.strip())).encode()
    )
    return digest.hexdigest()[:16]
