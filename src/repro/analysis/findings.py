"""Finding and severity objects shared by every repro-lint rule.

A :class:`Finding` is one diagnosed violation: a rule id, a severity,
a source location and a human-readable message.  Findings are plain
frozen dataclasses so they can be sorted, hashed, serialized to JSON
and compared against baseline entries without any rule-specific logic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break reproducibility or backend parity
    outright; ``WARNING`` findings are numeric-hygiene smells that a
    reviewer must either fix or explicitly justify.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity = field(compare=False)
    message: str = field(compare=False)
    #: The stripped source line the finding points at.  Baseline
    #: matching keys on this text instead of the line number, so
    #: unrelated edits above a grandfathered finding do not invalidate
    #: the baseline entry.
    line_text: str = field(compare=False, default="")

    def format_text(self) -> str:
        """Render in the classic ``path:line:col: RULE sev: msg`` shape."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )

    def as_dict(self) -> dict:
        """JSON-ready representation (used by ``--format=json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "line_text": self.line_text,
        }
