"""Lightweight module-local call summaries.

Full interprocedural analysis is out of scope, but the engine/kernel
modules constantly route domain values through small local helpers
(``def _nl(p): return -log(p)`` and friends).  A summary here is just
the tag set a function's return value carries when its parameters are
untainted; call sites then merge the summary into the call result in
addition to the usual argument pass-through.

Summaries are computed over two rounds so helper-calls-helper chains
one level deep resolve; deeper chains degrade gracefully to
argument-only propagation (a *may* analysis never loses soundness
here, only recall).
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional

from .cfg import cfgs_for
from .domains import Env, Tags, merge_tags

#: How many rounds of summary refinement to run.
ROUNDS = 2


class ModuleSummaries:
    """``{function_name: Tags}`` for one module's top-level functions
    and methods (methods keyed by bare name — collisions union)."""

    def __init__(self) -> None:
        self.returns: Dict[str, Tags] = {}
        #: Every function name defined in the module — including ones
        #: whose return carries no tags.  Call sites use this to tell
        #: "summarized as clean" apart from "unknown external".
        self.local_names: set = set()

    def return_tags(self, name: str) -> Tags:
        return self.returns.get(name, {})

    def is_local(self, name: str) -> bool:
        return name in self.local_names

    def compute(
        self,
        src,
        make_analysis: Callable[["ModuleSummaries"], object],
    ) -> "ModuleSummaries":
        """Iterate ``make_analysis(self)`` over every function CFG,
        harvesting the tags of ``return`` expressions."""
        entries = [
            (func, cfg)
            for func, cfg in cfgs_for(src).values()
            if func is not None
        ]
        self.local_names.update(func.name for func, _cfg in entries)
        for _ in range(ROUNDS):
            changed = False
            for func, cfg in entries:
                analysis = make_analysis(self)
                # Analyses that distinguish recursive self-calls read
                # this to avoid argument-passthrough on them.
                setattr(analysis, "func_name", func.name)
                before = analysis.run_quiet(cfg)
                tags = self._harvest(cfg, before, analysis)
                old = self.returns.get(func.name, {})
                merged = merge_tags(dict(old), tags)
                if merged != old:
                    self.returns[func.name] = merged
                    changed = True
            if not changed:
                break
        return self

    @staticmethod
    def _harvest(cfg, before, analysis) -> Tags:
        tags: Tags = {}
        for node in cfg.nodes:
            stmt = node.stmt
            if (
                isinstance(stmt, ast.Return)
                and stmt.value is not None
                and node.index in before
            ):
                merge_tags(
                    tags, analysis.expr_tags(stmt.value, before[node.index])
                )
        return tags
