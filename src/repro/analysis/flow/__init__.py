"""Flow-sensitive analysis core for repro-lint.

Layers (bottom up):

* :mod:`repro.analysis.flow.cfg` — per-function control-flow graphs
  over Python AST, with exception edges and ``finally`` tagging.
* :mod:`repro.analysis.flow.engine` — the worklist fixpoint and the
  path-reachability query used for post-domination checks.
* :mod:`repro.analysis.flow.domains` — origin-chained taint
  environments and the :class:`TaintAnalysis` skeleton rules subclass.
* :mod:`repro.analysis.flow.summaries` — module-local return-tag
  summaries so helper calls propagate taint.

The concrete rules live in :mod:`repro.analysis.rules.flow_domains`
(REP010/REP011), :mod:`repro.analysis.rules.flow_state` (REP012), and
the flow rewrites of REP001/REP003 in their original modules.
"""

from .cfg import CFG, Node, build_cfg, cfgs_for, function_cfgs  # noqa: F401
from .domains import (  # noqa: F401
    Env,
    Origin,
    TaintAnalysis,
    Tags,
    join_env,
    merge_tags,
    origin_for,
)
from .engine import fixpoint, reachable_without  # noqa: F401
from .summaries import ModuleSummaries  # noqa: F401
