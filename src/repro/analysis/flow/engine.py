"""Forward worklist fixpoint over a :class:`~repro.analysis.flow.cfg.CFG`.

A dataflow analysis supplies three things:

* an initial state for the entry node,
* a ``transfer(node, state) -> state`` function (pure — must not
  mutate its input), and
* a ``join(a, b) -> state`` merge for control-flow confluences.

The engine iterates to a fixpoint and returns the state *before* each
node, which is what the rules want: "what do I know when this
statement runs?".  States are compared with ``==``; domains are plain
dicts/frozensets so that's structural.

Termination: every domain in this package has finite height (tag sets
over a finite alphabet, origin chains capped at :data:`MAX_ORIGINS`),
and ``join`` is monotone, so the loop terminates.  A belt-and-braces
iteration cap guards against a buggy domain.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional, TypeVar

from .cfg import CFG, Node

S = TypeVar("S")

#: Hard cap on node visits, as a multiple of the node count.  A
#: correct finite-height domain converges far below this.
_VISIT_FACTOR = 64


def fixpoint(
    cfg: CFG,
    initial: S,
    transfer: Callable[[Node, S], S],
    join: Callable[[S, S], S],
    bottom: Optional[S] = None,
) -> Dict[int, S]:
    """Run the analysis; returns {node.index: state-before-node}.

    ``bottom`` is the state for not-yet-reached nodes; ``None`` means
    "unreached" and joins as the identity.
    """
    before: Dict[int, Optional[S]] = {n.index: bottom for n in cfg.nodes}
    before[cfg.entry.index] = initial
    work = deque([cfg.entry])
    queued = {cfg.entry.index}
    visits = 0
    budget = _VISIT_FACTOR * max(1, len(cfg.nodes))
    while work:
        node = work.popleft()
        queued.discard(node.index)
        visits += 1
        if visits > budget:  # pragma: no cover - domain bug backstop
            break
        state = before[node.index]
        if state is None:
            continue
        out = transfer(node, state)
        for succ in node.succ:
            old = before[succ.index]
            if old is None:
                merged = out
            else:
                merged = join(old, out)
            if merged != old:
                before[succ.index] = merged
                if succ.index not in queued:
                    work.append(succ)
                    queued.add(succ.index)
    return {
        idx: state for idx, state in before.items() if state is not None
    }


def reachable_without(
    cfg: CFG,
    start: Node,
    blocked: Callable[[Node], bool],
    targets: Callable[[Node], bool],
) -> Optional[Node]:
    """First target node reachable from ``start`` on a path that never
    enters a ``blocked`` node.  ``start`` itself is not blocked-checked.

    This is the post-domination query REP012 asks: from a mutation,
    can execution reach an exit without passing a restore?
    """
    seen = {start.index}
    work = deque([start])
    while work:
        node = work.popleft()
        for succ in node.succ:
            if succ.index in seen:
                continue
            if targets(succ):
                return succ
            if blocked(succ):
                continue
            seen.add(succ.index)
            work.append(succ)
    return None
