"""Per-function control-flow graphs over Python AST.

The flow rules (REP010–REP012 and the flow-sensitive rewrites of
REP001/REP003) need to reason about *paths*: which assignments reach a
use, and whether every path out of a mutation traverses a ``finally``
restore.  This module builds the graph they walk.

Granularity is the **simple statement**: each assignment, expression
statement, ``return``, ``raise`` … becomes one :class:`Node`; compound
statements contribute their header expressions as ``test``/``iter``
nodes and their bodies recursively.  Boolean short-circuit in ``if``
and ``while`` tests is decomposed into one test node per operand, so a
taint picked up by ``a`` in ``if a and f(a):`` is visible on the edge
into ``f(a)``.

Exceptional flow is modeled conservatively for a *may* analysis: every
statement that can plausibly raise (it contains a call, an attribute
or subscript access, arithmetic, or an explicit ``raise``) gets edges
to the innermost enclosing handlers and ``finally`` blocks, and from
there outward to the synthetic :attr:`CFG.raise_exit` node.  A
``finally`` body is built once; its exit fans out to the normal
continuation, the outward exceptional continuation, and the function
exit (covering ``return``/``break`` pass-through), which
over-approximates but never drops a path — exactly what the rules
need.

Nested function and class definitions are opaque single nodes: each
function gets its own CFG (see :func:`build_cfg` /
:func:`function_cfgs`).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Statement kinds a :class:`Node` can carry.
KINDS = ("entry", "exit", "raise", "stmt", "test", "iter", "handler")


class Node:
    """One CFG node: a simple statement or a synthetic control point."""

    __slots__ = ("index", "kind", "stmt", "succ", "pred", "finally_of")

    def __init__(self, index: int, kind: str, stmt: Optional[ast.AST]):
        self.index = index
        self.kind = kind
        #: The AST anchor: a simple statement for ``stmt`` nodes, the
        #: test expression for ``test`` nodes, the ``For`` node for
        #: ``iter`` nodes, the ``ExceptHandler`` for ``handler`` nodes.
        self.stmt = stmt
        self.succ: List["Node"] = []
        self.pred: List["Node"] = []
        #: The ``Try`` statement whose ``finally`` body this node
        #: belongs to (None outside any ``finally``).  REP012 uses this
        #: to recognize restore sites.
        self.finally_of: Optional[ast.Try] = None

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = type(self.stmt).__name__ if self.stmt is not None else ""
        return f"<{self.kind}#{self.index} {label} L{self.line}>"


class CFG:
    """The control-flow graph of one function (or module) body."""

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        self.entry = self.new("entry", None)
        #: Normal function exit (fall-through and ``return``).
        self.exit = self.new("exit", None)
        #: Exceptional function exit (uncaught exception).
        self.raise_exit = self.new("raise", None)

    def new(self, kind: str, stmt: Optional[ast.AST]) -> Node:
        node = Node(len(self.nodes), kind, stmt)
        self.nodes.append(node)
        return node

    def edge(self, a: Node, b: Node) -> None:
        if b not in a.succ:
            a.succ.append(b)
            b.pred.append(a)

    def stmt_nodes(self) -> Iterable[Node]:
        """Every node that carries an AST anchor, in creation order."""
        return (n for n in self.nodes if n.stmt is not None)


# ----------------------------------------------------------------------
# can-raise classification
# ----------------------------------------------------------------------
_RAISING_EXPRS = (
    ast.Call,
    ast.Attribute,
    ast.Subscript,
    ast.BinOp,
    ast.UnaryOp,
    ast.Await,
)


def can_raise(node: ast.AST) -> bool:
    """Can evaluating ``node`` plausibly raise?

    Deliberately conservative: calls, attribute/subscript access,
    arithmetic, comparisons other than ``is``/``is not``, and explicit
    ``raise``/``assert`` statements all count.  Pure ``Name`` /
    ``Constant`` traffic does not.
    """
    if isinstance(node, (ast.Raise, ast.Assert)):
        return True
    for sub in ast.walk(node):
        if isinstance(sub, _RAISING_EXPRS):
            return True
        if isinstance(sub, ast.Compare) and any(
            not isinstance(op, (ast.Is, ast.IsNot)) for op in sub.ops
        ):
            return True
        if isinstance(
            sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # Opaque nested scope: its body runs later (or, for a
            # class, contributes only definition-time effects we do
            # not model).  Decorators/defaults could raise, but the
            # extra edge adds nothing the conservative model needs.
            return False
    return False


# ----------------------------------------------------------------------
# builder
# ----------------------------------------------------------------------
class _LoopFrame:
    __slots__ = ("break_to", "continue_to")

    def __init__(self, break_to: Node, continue_to: Node):
        self.break_to = break_to
        self.continue_to = continue_to


class _TryFrame:
    __slots__ = ("handlers", "finally_entry")

    def __init__(self, handlers: List[Node], finally_entry: Optional[Node]):
        self.handlers = handlers
        self.finally_entry = finally_entry


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        #: Innermost-last stack of loop/try frames.
        self.frames: List[object] = []
        #: The ``Try`` whose finalbody is currently being built.
        self.current_finally: Optional[ast.Try] = None

    # -- frame helpers -------------------------------------------------
    def raise_targets(self) -> List[Node]:
        """Where an exception raised *here* can go directly."""
        out: List[Node] = []
        for frame in reversed(self.frames):
            if isinstance(frame, _TryFrame):
                out.extend(frame.handlers)
                if frame.finally_entry is not None:
                    out.append(frame.finally_entry)
                    return out
        out.append(self.cfg.raise_exit)
        return out

    def exit_through_finally(self, target: Node, stop_at=None) -> Node:
        """The node a return/break jumps to: the innermost ``finally``
        on the way out, or ``target`` when none intervenes.

        ``stop_at`` bounds the walk for break/continue: frames above
        the loop frame are not exited.
        """
        for frame in reversed(self.frames):
            if frame is stop_at:
                break
            if (
                isinstance(frame, _TryFrame)
                and frame.finally_entry is not None
            ):
                return frame.finally_entry
        return target

    def add_raise_edges(self, node: Node, anchor: ast.AST) -> None:
        if can_raise(anchor):
            for target in self.raise_targets():
                self.cfg.edge(node, target)

    # -- statement sequences -------------------------------------------
    def build_body(
        self, stmts: Sequence[ast.stmt], preds: List[Node]
    ) -> List[Node]:
        """Wire ``stmts`` after ``preds``; returns the fall-out nodes."""
        current = preds
        for stmt in stmts:
            current = self.build_stmt(stmt, current)
        return current

    def link(self, preds: List[Node], node: Node) -> None:
        for pred in preds:
            self.cfg.edge(pred, node)

    # -- one statement -------------------------------------------------
    def build_stmt(
        self, stmt: ast.stmt, preds: List[Node]
    ) -> List[Node]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            body_preds: List[Node] = []
            else_preds: List[Node] = []
            self.build_test(stmt.test, preds, body_preds, else_preds)
            out = self.build_body(stmt.body, body_preds)
            out += self.build_body(stmt.orelse, else_preds)
            return out
        if isinstance(stmt, ast.While):
            head_preds = preds
            body_preds: List[Node] = []
            exit_preds: List[Node] = []
            # The test node(s) are the loop head; back edges re-enter
            # through them.
            head_entry: List[Node] = []
            self.build_test(
                stmt.test, head_preds, body_preds, exit_preds,
                entry_out=head_entry,
            )
            head = head_entry[0]
            after = cfg.new("stmt", None)  # join point placeholder
            frame = _LoopFrame(break_to=after, continue_to=head)
            self.frames.append(frame)
            body_out = self.build_body(stmt.body, body_preds)
            self.frames.pop()
            for node in body_out:
                cfg.edge(node, head)
            exit_preds = self.build_body(stmt.orelse, exit_preds)
            self.link(exit_preds, after)
            return [after]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            head = cfg.new("iter", stmt)
            self.link(preds, head)
            self.add_raise_edges(head, stmt.iter)
            after = cfg.new("stmt", None)
            frame = _LoopFrame(break_to=after, continue_to=head)
            self.frames.append(frame)
            body_out = self.build_body(stmt.body, [head])
            self.frames.pop()
            for node in body_out:
                cfg.edge(node, head)
            orelse_out = self.build_body(stmt.orelse, [head])
            self.link(orelse_out, after)
            return [after]
        if isinstance(stmt, ast.Try):
            return self.build_try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = cfg.new("stmt", stmt)
            self.link(preds, node)
            node.finally_of = self.current_finally
            self.add_raise_edges(node, stmt)
            return self.build_body(stmt.body, [node])
        # -- simple statements ----------------------------------------
        node = cfg.new("stmt", stmt)
        node.finally_of = self.current_finally
        self.link(preds, node)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.add_raise_edges(node, stmt.value)
            cfg.edge(node, self.exit_through_finally(cfg.exit))
            return []
        if isinstance(stmt, ast.Break):
            frame = self._innermost_loop()
            cfg.edge(
                node,
                self.exit_through_finally(frame.break_to, stop_at=frame),
            )
            return []
        if isinstance(stmt, ast.Continue):
            frame = self._innermost_loop()
            cfg.edge(
                node,
                self.exit_through_finally(frame.continue_to, stop_at=frame),
            )
            return []
        if isinstance(stmt, ast.Raise):
            for target in self.raise_targets():
                cfg.edge(node, target)
            return []
        self.add_raise_edges(node, stmt)
        return [node]

    def _innermost_loop(self) -> _LoopFrame:
        for frame in reversed(self.frames):
            if isinstance(frame, _LoopFrame):
                return frame
        raise ValueError("break/continue outside a loop")

    # -- short-circuit test decomposition ------------------------------
    def build_test(
        self,
        test: ast.expr,
        preds: List[Node],
        true_out: List[Node],
        false_out: List[Node],
        entry_out: Optional[List[Node]] = None,
    ) -> None:
        """Build test node(s) for ``test``.

        Appends the nodes reached on a true/false outcome to
        ``true_out``/``false_out``; ``entry_out`` (when given) receives
        the first node built, which loop heads use as their back-edge
        target.
        """
        cfg = self.cfg
        if isinstance(test, ast.BoolOp):
            values = test.values
            current = preds
            for i, operand in enumerate(values):
                last = i == len(values) - 1
                sub_true: List[Node] = []
                sub_false: List[Node] = []
                self.build_test(
                    operand, current, sub_true, sub_false,
                    entry_out=entry_out if i == 0 else None,
                )
                if isinstance(test.op, ast.And):
                    false_out.extend(sub_false)
                    if last:
                        true_out.extend(sub_true)
                    current = sub_true
                else:  # Or
                    true_out.extend(sub_true)
                    if last:
                        false_out.extend(sub_false)
                    current = sub_false
            return
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self.build_test(
                test.operand, preds, false_out, true_out,
                entry_out=entry_out,
            )
            return
        node = cfg.new("test", test)
        node.finally_of = self.current_finally
        self.link(preds, node)
        self.add_raise_edges(node, test)
        if entry_out is not None:
            entry_out.append(node)
        # Constant tests prune dead branches (``while True:`` must not
        # grow a false edge to the after-loop join, or every loop body
        # would appear skippable).
        if isinstance(test, ast.Constant):
            (true_out if test.value else false_out).append(node)
            return
        true_out.append(node)
        false_out.append(node)

    # -- try/except/else/finally ---------------------------------------
    def build_try(self, stmt: ast.Try, preds: List[Node]) -> List[Node]:
        cfg = self.cfg
        handler_entries: List[Node] = []
        for handler in stmt.handlers:
            entry = cfg.new("handler", handler)
            entry.finally_of = self.current_finally
            handler_entries.append(entry)
        finally_entry: Optional[Node] = None
        if stmt.finalbody:
            finally_entry = cfg.new("stmt", None)
            finally_entry.finally_of = self.current_finally
        frame = _TryFrame(handler_entries, finally_entry)
        self.frames.append(frame)
        body_out = self.build_body(stmt.body, preds)
        body_out = self.build_body(stmt.orelse, body_out)
        self.frames.pop()
        # Handler bodies run outside the protection of their own try
        # (a raise inside a handler propagates outward) but inside the
        # finally frame when one exists.
        handler_frame = _TryFrame([], finally_entry)
        self.frames.append(handler_frame)
        handler_out: List[Node] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_out += self.build_body(handler.body, [entry])
        self.frames.pop()
        normal_out = body_out + handler_out
        if finally_entry is None:
            return normal_out
        # The finally body is built once.  Entering it marks the nodes
        # with ``finally_of`` so REP012 can recognize restore sites.
        self.link(normal_out, finally_entry)
        previous = self.current_finally
        self.current_finally = stmt
        finally_entry.finally_of = stmt
        final_out = self.build_body(stmt.finalbody, [finally_entry])
        self.current_finally = previous
        after = cfg.new("stmt", None)
        after.finally_of = self.current_finally
        for node in final_out:
            # Normal continuation, exceptional pass-through, and
            # return/break pass-through, all over-approximated.
            cfg.edge(node, after)
            for target in self.raise_targets():
                cfg.edge(node, target)
            cfg.edge(node, cfg.exit)
        return [after]


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """The CFG of one statement sequence (function or module body)."""
    builder = _Builder()
    out = builder.build_body(list(body), [builder.cfg.entry])
    builder.link(out, builder.cfg.exit)
    return builder.cfg


# ----------------------------------------------------------------------
# per-file helpers
# ----------------------------------------------------------------------
def function_cfgs(
    tree: ast.AST,
) -> List[Tuple[Optional[ast.AST], CFG]]:
    """``(function, cfg)`` for the module body and every function.

    The module body comes first with ``function=None``.  Nested
    functions each get their own entry; class bodies are traversed for
    the methods they hold but do not form scopes of their own.
    """
    out: List[Tuple[Optional[ast.AST], CFG]] = []
    if isinstance(tree, ast.Module):
        out.append((None, build_cfg(tree.body)))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((node, build_cfg(node.body)))
    return out


#: Cache key attribute stashed on SourceFile objects.
_CACHE_ATTR = "_flow_cfg_cache"


def cfgs_for(src) -> Dict[int, Tuple[Optional[ast.AST], CFG]]:
    """Memoized :func:`function_cfgs` for one parsed SourceFile.

    Keyed by ``id`` of the function node so several flow rules share
    one CFG build per file.
    """
    cache = getattr(src, _CACHE_ATTR, None)
    if cache is None:
        cache = {
            id(func): (func, cfg)
            for func, cfg in function_cfgs(src.tree)
        }
        setattr(src, _CACHE_ATTR, cache)
    return cache
