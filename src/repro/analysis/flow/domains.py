"""Abstract domains and the reusable taint-analysis skeleton.

The flow rules in this package are all *taint* analyses: a small set
of tags (``"log"``/``"lin"`` for REP010, ``"bits"`` for REP011,
``"unordered"``/``"elems_unordered"`` for the REP001 rewrite) attached
to local variables and propagated through assignments, arithmetic,
tuple unpacking, and container round-trips.  This module provides the
shared machinery:

* :class:`Origin` — a provenance chain recording where a tag was
  introduced and every assignment it flowed through; rendered into the
  dataflow trace attached to findings.
* The environment: ``{var_name: {tag: Origin}}`` with deterministic
  join.
* :class:`TaintAnalysis` — a transfer function over CFG nodes with
  overridable hooks (``source_tags``, ``call_tags``, ``check``…); the
  concrete rules subclass it and override only what differs.

Transfer functions are pure: they copy-on-write the environment.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from .cfg import CFG, Node
from .engine import fixpoint

#: Provenance chains are capped so the fixpoint stays finite and the
#: rendered traces stay readable.
MAX_ORIGIN_DEPTH = 8


class Origin:
    """Where a tag came from, as a linked provenance chain."""

    __slots__ = ("line", "col", "text", "note", "parent", "depth")

    def __init__(
        self,
        line: int,
        col: int,
        text: str,
        note: str,
        parent: Optional["Origin"] = None,
    ):
        self.line = line
        self.col = col
        self.text = text
        self.note = note
        if parent is not None and parent.depth >= MAX_ORIGIN_DEPTH:
            parent = parent.root()
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1

    def root(self) -> "Origin":
        origin = self
        while origin.parent is not None:
            origin = origin.parent
        return origin

    def key(self) -> Tuple:
        return (self.line, self.col, self.note, self.depth)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Origin):
            return NotImplemented
        a: Optional[Origin] = self
        b: Optional[Origin] = other
        while a is not None and b is not None:
            if (a.line, a.col, a.note) != (b.line, b.col, b.note):
                return False
            a, b = a.parent, b.parent
        return a is None and b is None

    def __hash__(self) -> int:
        return hash((self.line, self.col, self.note, self.depth))

    def steps(self) -> List[Dict[str, object]]:
        """The chain oldest-first, as trace-step dicts."""
        chain: List[Origin] = []
        origin: Optional[Origin] = self
        while origin is not None:
            chain.append(origin)
            origin = origin.parent
        chain.reverse()
        return [
            {
                "line": o.line,
                "col": o.col,
                "text": o.text,
                "note": o.note,
            }
            for o in chain
        ]


Tags = Dict[str, Origin]
Env = Dict[str, Tags]


def origin_for(node: ast.AST, lines: List[str], note: str,
               parent: Optional[Origin] = None) -> Origin:
    line = getattr(node, "lineno", 0)
    col = getattr(node, "col_offset", 0)
    text = lines[line - 1].strip() if 0 < line <= len(lines) else ""
    return Origin(line, col, text, note, parent)


def merge_tags(into: Tags, tags: Tags) -> Tags:
    """Union; on conflict keep the deterministically-smaller origin."""
    for tag, origin in tags.items():
        old = into.get(tag)
        if old is None or origin.key() < old.key():
            into[tag] = origin
    return into


def join_env(a: Env, b: Env) -> Env:
    if a == b:
        return a
    out: Env = {var: dict(tags) for var, tags in a.items()}
    for var, tags in b.items():
        if var in out:
            merge_tags(out[var], tags)
        else:
            out[var] = dict(tags)
    return out


class TaintAnalysis:
    """Skeleton transfer/check over one function CFG.

    Subclasses override:

    * :meth:`source_tags` — introduce taint at an expression
    * :meth:`call_tags` — calls (conversions, summaries)
    * :meth:`check` — inspect a node with its before-state and record
      findings (via whatever callback the rule wires in)

    and optionally the propagation hooks (:meth:`subscript_tags`,
    :meth:`unpack_tags`, :meth:`iter_tags`).
    """

    def __init__(self, lines: List[str]):
        self.lines = lines

    # -- entry point ---------------------------------------------------
    def run_quiet(
        self, cfg: CFG, initial: Optional[Env] = None
    ) -> Dict[int, Env]:
        """Fixpoint only — no sink checks (used by summary rounds)."""
        return fixpoint(
            cfg,
            initial if initial is not None else {},
            self.transfer,
            join_env,
        )

    def run(self, cfg: CFG, initial: Optional[Env] = None) -> Dict[int, Env]:
        before = self.run_quiet(cfg, initial)
        for node in cfg.nodes:
            env = before.get(node.index)
            if env is not None and node.stmt is not None:
                self.check(node, env)
        return before

    # -- hooks ---------------------------------------------------------
    def source_tags(self, expr: ast.expr, env: Env) -> Tags:
        return {}

    def call_tags(self, call: ast.Call, env: Env) -> Tags:
        tags: Tags = {}
        for arg in call.args:
            merge_tags(tags, self.expr_tags(arg, env))
        for kw in call.keywords:
            merge_tags(tags, self.expr_tags(kw.value, env))
        return tags

    def check(self, node: Node, env: Env) -> None:  # pragma: no cover
        raise NotImplementedError

    def subscript_tags(self, expr: ast.Subscript, env: Env) -> Tags:
        # A load from a container carries the container's taint; the
        # index contributes nothing (``sv[w]`` is log-domain because
        # ``sv`` is, regardless of what ``w`` is).
        return self.expr_tags(expr.value, env)

    def attribute_tags(self, expr: ast.Attribute, env: Env) -> Tags:
        return self.expr_tags(expr.value, env)

    def unpack_tags(
        self, value: ast.expr, tags: Tags, index: int, total: int
    ) -> Tags:
        """Tags assigned to element ``index`` when unpacking ``value``."""
        return tags

    def iter_tags(self, iter_expr: ast.expr, env: Env) -> Tags:
        """Tags of the loop variable when iterating ``iter_expr``."""
        return self.expr_tags(iter_expr, env)

    # -- expression evaluation ----------------------------------------
    def expr_tags(self, expr: ast.expr, env: Env) -> Tags:
        tags = dict(self.source_tags(expr, env))
        if isinstance(expr, ast.Name):
            merge_tags(tags, env.get(expr.id, {}))
        elif isinstance(expr, ast.BinOp):
            merge_tags(tags, self.expr_tags(expr.left, env))
            merge_tags(tags, self.expr_tags(expr.right, env))
        elif isinstance(expr, ast.UnaryOp):
            merge_tags(tags, self.expr_tags(expr.operand, env))
        elif isinstance(expr, ast.BoolOp):
            for value in expr.values:
                merge_tags(tags, self.expr_tags(value, env))
        elif isinstance(expr, ast.IfExp):
            merge_tags(tags, self.expr_tags(expr.body, env))
            merge_tags(tags, self.expr_tags(expr.orelse, env))
        elif isinstance(expr, ast.Compare):
            pass  # comparisons yield booleans, not domain values
        elif isinstance(expr, ast.Call):
            merge_tags(tags, self.call_tags(expr, env))
        elif isinstance(expr, ast.Attribute):
            merge_tags(tags, self.attribute_tags(expr, env))
        elif isinstance(expr, ast.Subscript):
            merge_tags(tags, self.subscript_tags(expr, env))
        elif isinstance(expr, ast.Starred):
            merge_tags(tags, self.expr_tags(expr.value, env))
        elif isinstance(expr, ast.NamedExpr):
            merge_tags(tags, self.expr_tags(expr.value, env))
        elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                merge_tags(tags, self.expr_tags(elt, env))
        elif isinstance(expr, ast.Dict):
            for value in expr.values:
                if value is not None:
                    merge_tags(tags, self.expr_tags(value, env))
        elif isinstance(
            expr,
            (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp),
        ):
            # Approximate: any tagged name referenced inside the
            # comprehension taints the result container.
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Name):
                    merge_tags(tags, env.get(sub.id, {}))
        return tags

    # -- transfer ------------------------------------------------------
    def transfer(self, node: Node, env: Env) -> Env:
        stmt = node.stmt
        if stmt is None:
            return env
        out: Optional[Env] = None

        def writable() -> Env:
            nonlocal out
            if out is None:
                out = {var: dict(tags) for var, tags in env.items()}
            return out

        if node.kind == "iter" and isinstance(stmt, (ast.For, ast.AsyncFor)):
            tags = self.iter_tags(stmt.iter, env)
            self._bind(writable(), stmt.target, tags, stmt.iter, stmt)
        elif isinstance(stmt, ast.Assign):
            tags = self.expr_tags(stmt.value, env)
            for target in stmt.targets:
                self._bind(writable(), target, tags, stmt.value, stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            tags = self.expr_tags(stmt.value, env)
            self._bind(writable(), stmt.target, tags, stmt.value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            tags = self.expr_tags(stmt.value, env)
            merge_tags(tags, self.expr_tags(_as_load(stmt.target), env))
            self._bind(writable(), stmt.target, tags, stmt.value, stmt)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    writable().pop(target.id, None)
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            writable().pop(stmt.name, None)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                name = (alias.asname or alias.name).split(".")[0]
                writable().pop(name, None)
        elif isinstance(stmt, ast.Expr):
            self._stmt_call_effect(stmt.value, env, writable)
        # Walrus bindings anywhere in the statement take effect too.
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.NamedExpr) and isinstance(
                sub.target, ast.Name
            ):
                tags = self.expr_tags(sub.value, env)
                self._bind(writable(), sub.target, tags, sub.value, stmt)
        return env if out is None else out

    def _stmt_call_effect(self, expr: ast.expr, env: Env, writable) -> None:
        """``container.add(x)`` / ``.append(x)`` taints the container."""
        if not (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and isinstance(expr.func.value, ast.Name)
            and expr.func.attr in ("add", "append", "extend", "insert",
                                   "update", "setdefault", "push")
        ):
            return
        tags: Tags = {}
        for arg in expr.args:
            merge_tags(tags, self.expr_tags(arg, env))
        if tags:
            name = expr.func.value.id
            out = writable()
            merge_tags(out.setdefault(name, {}), tags)

    # -- binding -------------------------------------------------------
    def _bind(
        self,
        env: Env,
        target: ast.expr,
        tags: Tags,
        value: ast.expr,
        stmt: ast.AST,
    ) -> None:
        if isinstance(target, ast.Name):
            if tags:
                env[target.id] = {
                    tag: origin_for(
                        stmt, self.lines,
                        "assigned to `%s`" % target.id, parent=origin,
                    )
                    if origin.line != getattr(stmt, "lineno", 0)
                    else origin
                    for tag, origin in tags.items()
                }
            else:
                env.pop(target.id, None)  # strong update kills taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            total = len(target.elts)
            for i, elt in enumerate(target.elts):
                elt_tags = self.unpack_tags(value, tags, i, total)
                self._bind(env, elt, elt_tags, value, stmt)
        elif isinstance(target, ast.Starred):
            self._bind(env, target.value, tags, value, stmt)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            # Store into a container/attribute: weak update on the base.
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name) and tags:
                merge_tags(
                    env.setdefault(base.id, {}),
                    {
                        tag: origin_for(
                            stmt, self.lines,
                            "stored into `%s`" % base.id, parent=origin,
                        )
                        for tag, origin in tags.items()
                    },
                )


def _as_load(target: ast.expr) -> ast.expr:
    """A load-context twin of an assignment target, for AugAssign."""
    clone = ast.copy_location(
        ast.parse(ast.unparse(target), mode="eval").body, target
    )
    return clone
