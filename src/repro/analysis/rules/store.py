"""Run-store key hygiene.

REP015 — nondeterministic content in a cache key.  The run store
(:mod:`repro.store.key`) addresses every persisted enumeration by a
content hash; a key function that folds in wall-clock time, process
identity, absolute paths, hash-seed-dependent values or
insertion-ordered dict views produces keys that differ across
machines, processes or construction histories — every lookup silently
misses and the store degenerates into a write-only log.

The rule scopes itself by *name*: any function whose name contains
``fingerprint``, ``run_key``, ``key_for``, ``canonical`` or ``salt``
is a key function and gets four checks:

1. **no nondeterministic sources** — clock reads (``time.time``,
   ``datetime.now``, ...), process identity (``os.getpid``),
   randomness (``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets``) and
   interpreter-session values (``id()``, ``hash()`` — string hashes
   vary with ``PYTHONHASHSEED``) may not be called anywhere in a key
   function, whatever they feed;
2. **no machine-local paths in the digest** — ``os.path.abspath`` /
   ``realpath`` / ``expanduser`` / ``os.getcwd`` are flagged only when
   their result feeds ``.encode()`` or a digest sink
   (``digest.update``, a hashlib constructor).  Resolving a path in
   order to *open* it is fine — ``repro.analysis.cache.salted_sources``
   hashes file *contents* via an abspath'd ``open`` and must stay
   clean;
3. **no unordered dict-view iteration into a digest** — a ``for`` loop
   over ``.items()`` / ``.keys()`` / ``.values()`` whose body calls
   ``.update(...)`` bakes insertion order (construction history) into
   the key unless the view is wrapped in ``sorted(...)``;
4. **no unsorted JSON serialization** — ``json.dumps`` without
   ``sort_keys=True`` serializes dicts in insertion order; two
   semantically equal keys built in different orders would hash
   differently.

``FindingsCache.key`` (the analysis cache) deliberately hashes an
abspath — the cache is machine-local by design — and stays out of
scope because ``key`` alone does not match the name pattern.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule
from repro.analysis.source import SourceFile, call_name, root_name

#: A function with one of these substrings in its name builds (part
#: of) a content address and is held to key-hygiene rules.
KEY_FUNC_RE = re.compile(r"fingerprint|run_key|key_for|canonical|salt")

#: ``module -> attributes`` whose call reads a per-process /
#: per-moment value.  ``datetime`` covers both ``datetime.now()`` and
#: ``datetime.datetime.now()`` via the terminal attribute.
_NONDET_ATTRS = {
    "time": {
        "time", "time_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns", "process_time",
        "process_time_ns", "clock_gettime",
    },
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
    "os": {"getpid", "getppid", "urandom"},
    "uuid": {"uuid1", "uuid4"},
    "socket": {"gethostname", "getfqdn"},
    "platform": {"node"},
}

#: Every ``secrets.*`` call is randomness by definition.
_NONDET_MODULES = {"secrets"}

#: Bare builtins whose value is an interpreter-session accident:
#: ``id()`` is an address, ``hash()`` of a str/bytes varies with
#: ``PYTHONHASHSEED``.
_NONDET_BUILTINS = {"id", "hash"}

#: Path resolvers: fine for opening files, forbidden as digest input.
_PATH_FUNCS = {"abspath", "realpath", "expanduser", "getcwd"}

#: Callees that consume bytes/str into a content hash.
_DIGEST_SINKS = {"update", "sha256", "sha1", "sha512", "md5", "blake2b"}

_DICT_VIEWS = {"items", "keys", "values"}


def _is_key_function(node: ast.AST) -> bool:
    return isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef)
    ) and KEY_FUNC_RE.search(node.name) is not None


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk the function body without entering nested functions —
    a nested helper is scoped by its *own* name, not its parent's."""

    def visit(node: ast.AST) -> Iterator[ast.AST]:
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield from visit(child)

    for stmt in func.body:
        yield from visit(stmt)


def _nondet_call_reason(node: ast.Call) -> str:
    """Why this call is a nondeterministic source ('' when it is not)."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in _NONDET_BUILTINS:
            return (
                "%s() is an interpreter-session value (PYTHONHASHSEED / "
                "object identity)" % func.id
            )
        return ""
    if not isinstance(func, ast.Attribute):
        return ""
    root = root_name(func)
    if root in _NONDET_MODULES:
        return "%s.%s() is randomness" % (root, func.attr)
    # Terminal base name handles both ``time.time()`` and
    # ``datetime.datetime.now()`` (base attr ``datetime``).
    base = func.value
    base_name = base.attr if isinstance(base, ast.Attribute) else (
        base.id if isinstance(base, ast.Name) else None
    )
    if base_name in _NONDET_ATTRS and func.attr in _NONDET_ATTRS[base_name]:
        return "%s.%s() reads per-process/per-moment state" % (
            base_name, func.attr
        )
    return ""


def _path_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call) and call_name(node) in _PATH_FUNCS
    )


def _path_tainted_names(func: ast.AST) -> Set[str]:
    """Names assigned (directly) from a path-resolver call."""
    names: Set[str] = set()
    for node in _own_nodes(func):
        if isinstance(node, ast.Assign) and _path_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _path_feed(subtree: ast.AST, tainted: Set[str]) -> bool:
    """Does ``subtree`` contain a path-resolver result?"""
    for node in ast.walk(subtree):
        if _path_call(node):
            return True
        if isinstance(node, ast.Name) and node.id in tainted:
            return True
    return False


@rule(
    "REP015",
    "nondeterministic-key-content",
    Severity.ERROR,
    "cache-key/fingerprint functions must fold only deterministic, "
    "order-canonical content — no clocks, pids, paths, hash() or "
    "unsorted dict views in a content address",
)
def check_key_content(src: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(src.tree):
        if _is_key_function(node):
            yield from _check_one(src, node)


def _check_one(src: SourceFile, func: ast.AST) -> Iterator[Finding]:
    tainted = _path_tainted_names(func)
    for node in _own_nodes(func):
        if isinstance(node, ast.Call):
            reason = _nondet_call_reason(node)
            if reason:
                yield _finding(
                    src, node, func,
                    "%s; a content address must not depend on when, "
                    "where or in which process it was computed" % reason,
                )
                continue
            yield from _check_digest_feed(src, node, func, tainted)
            yield from _check_json_dumps(src, node, func)
        elif isinstance(node, ast.For):
            yield from _check_dict_view_loop(src, node, func)


def _check_digest_feed(
    src: SourceFile, node: ast.Call, func: ast.AST, tainted: Set[str]
) -> Iterator[Finding]:
    name = call_name(node)
    if name == "encode" and isinstance(node.func, ast.Attribute):
        if _path_feed(node.func.value, tainted):
            yield _finding(
                src, node, func,
                "a resolved filesystem path is encoded into key "
                "material; absolute paths are machine-local — hash "
                "file contents or a repo-relative name instead",
            )
        return
    if name in _DIGEST_SINKS:
        for arg in node.args:
            # ``update(x.encode())`` is the encode branch's finding
            # (the walk visits the inner call too); skip it here so
            # one tainted line yields one finding.
            if isinstance(arg, ast.Call) and call_name(arg) == "encode":
                continue
            if _path_feed(arg, tainted):
                yield _finding(
                    src, node, func,
                    "a resolved filesystem path feeds a digest; "
                    "absolute paths are machine-local — hash file "
                    "contents or a repo-relative name instead",
                )
                break


def _check_json_dumps(
    src: SourceFile, node: ast.Call, func: ast.AST
) -> Iterator[Finding]:
    callee = node.func
    is_dumps = (
        isinstance(callee, ast.Attribute)
        and callee.attr == "dumps"
        and root_name(callee) == "json"
    ) or (isinstance(callee, ast.Name) and callee.id == "dumps")
    if not is_dumps:
        return
    for keyword in node.keywords:
        if keyword.arg == "sort_keys":
            value = keyword.value
            if isinstance(value, ast.Constant) and value.value is True:
                return
            break
    yield _finding(
        src, node, func,
        "json.dumps without sort_keys=True serializes dicts in "
        "insertion order; two equal keys built in different orders "
        "would hash differently",
    )


def _check_dict_view_loop(
    src: SourceFile, node: ast.For, func: ast.AST
) -> Iterator[Finding]:
    # ``sorted(d.items())`` never reaches here: its iter is a Call on
    # the *name* ``sorted``, not on an Attribute — only the bare view
    # matches.
    it = node.iter
    if not (
        isinstance(it, ast.Call)
        and isinstance(it.func, ast.Attribute)
        and it.func.attr in _DICT_VIEWS
        and not it.args
    ):
        return
    body_updates = [
        sub
        for stmt in node.body + node.orelse
        for sub in ast.walk(stmt)
        if isinstance(sub, ast.Call) and call_name(sub) in _DIGEST_SINKS
    ]
    if not body_updates:
        return
    yield _finding(
        src, node, func,
        "iterating .%s() in insertion order feeds a digest; wrap the "
        "view in sorted(...) so the key is independent of "
        "construction history" % it.func.attr,
    )


def _finding(
    src: SourceFile, node: ast.AST, func: ast.AST, what: str
) -> Finding:
    return Finding(
        path=src.path,
        line=node.lineno,
        col=node.col_offset,
        rule="REP015",
        severity=Severity.ERROR,
        message="in key function '%s': %s" % (func.name, what),
        line_text=src.line_text(node.lineno),
    )
