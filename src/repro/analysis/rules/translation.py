"""REP013 (variant miscompile) and REP014 (frontier-state escape).

**REP013 — translation validation of the folded recursion variants.**
In any file defining ``_search_template`` the rule folds the template
with the production specializer for every legal variant key and runs
the full proof obligations of
:mod:`repro.analysis.semantics.validate`: identical guarded-command
skeletons, emission/recursion parity, hook sites exactly when ``HOOKS``
is on, and bitset-domain closure (name/call surface plus the REP011
taint pass re-run over the folded body).  Each difference carries a
source-to-sink trace from the template site through the enclosing
structure to the variant site; differences are de-duplicated across
keys so one broken fold reports once, naming the first variant it
breaks.

Fixture/corpus mode: a module that declares ``VARIANT_ENVS = {"name":
{"HOOKS": False, ...}}`` has each named function validated against the
module's template under the declared flags — this is how the seeded
miscompile corpus in ``tests/fixtures/variant_mutants/`` produces real
REP013 findings through the normal rule pipeline.

**REP014 — unserializable or cross-process-mutated frontier state.**
The precondition for the roadmap's sharded work-queue engine: anything
that reaches a worker boundary must pickle, and workers must not
mutate state they received.  Three sinks, all on the
:mod:`repro.analysis.semantics.escape` summaries:

* a dispatch payload (``Pool.map`` family, ``Process(args=...)``)
  carrying unpicklable provenance — lambdas, nested-function closures,
  generator expressions, file/lock handles, or the engine's
  ``search_ops()``/``fast_ops()`` closure bundles;
* a dispatched worker whose interprocedural summary mutates
  parent-owned state (reported at the boundary, with the mutation site
  in the trace — the per-write findings stay with REP006);
* a ``StateOps`` implementation whose ``root_state`` returns frontier
  state with unpicklable components.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity, flow_fingerprint
from repro.analysis.registry import rule
from repro.analysis.source import SourceFile

_TEMPLATE_FUNC = "_search_template"
_ENVS_NAME = "VARIANT_ENVS"


def _defines_template(tree: ast.AST) -> bool:
    return any(
        isinstance(node, ast.FunctionDef) and node.name == _TEMPLATE_FUNC
        for node in getattr(tree, "body", [])
    )


def _declared_envs(tree: ast.AST) -> Dict[str, Dict[str, bool]]:
    """The fixture-mode ``VARIANT_ENVS`` literal, if the module has one."""
    for node in getattr(tree, "body", []):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == _ENVS_NAME
        ):
            try:
                value = ast.literal_eval(node.value)
            except (ValueError, SyntaxError):
                return {}
            if isinstance(value, dict):
                return {
                    str(name): dict(env)
                    for name, env in value.items()
                    if isinstance(env, dict)
                }
    return {}


def _difference_finding(
    src: SourceFile, diff, key_label: str
) -> Finding:
    source_text = src.line_text(diff.spec_line)
    sink_text = src.line_text(diff.line)
    return Finding(
        path=src.path,
        line=diff.line or 1,
        col=0,
        rule="REP013",
        severity=Severity.ERROR,
        message=diff.message,
        line_text=sink_text,
        trace=diff.trace,
        fingerprint=flow_fingerprint(
            "REP013", f"{diff.kind}:{source_text}", sink_text
        ),
    )


@rule(
    "REP013",
    "variant-miscompile",
    Severity.ERROR,
    "every AST-folded recursion variant must be a proven-sound "
    "specialization of the shared template: same emission sites and "
    "recursion structure, hook sites exactly when HOOKS is on, and "
    "bitset-domain closure on the bitset path",
)
def check_variant_translation(src: SourceFile) -> Iterator[Finding]:
    from repro.analysis.semantics.validate import (
        validate_template_source,
        validate_variant,
    )

    if not _defines_template(src.tree):
        return
    seen: Set[Tuple] = set()
    # Production mode: fold this file's own template with the engine's
    # specializer for every legal key and validate each fold.
    for key, diff in validate_template_source(src.tree, src.lines):
        anchor = (diff.kind, diff.line, diff.spec_line)
        if anchor in seen:
            continue
        seen.add(anchor)
        yield _difference_finding(src, diff, str(key))
    # Corpus mode: validate explicitly declared (function, flags)
    # pairs — the seeded-mutant fixtures ship pre-folded variants.
    envs = _declared_envs(src.tree)
    if not envs:
        return
    template = next(
        node
        for node in src.tree.body
        if isinstance(node, ast.FunctionDef)
        and node.name == _TEMPLATE_FUNC
    )
    defs = {
        node.name: node
        for node in src.tree.body
        if isinstance(node, ast.FunctionDef)
    }
    for name in sorted(envs):
        func = defs.get(name)
        if func is None:
            yield Finding(
                path=src.path,
                line=1,
                col=0,
                rule="REP013",
                severity=Severity.ERROR,
                message=(
                    f"{_ENVS_NAME} declares variant '{name}' but the "
                    "module does not define it"
                ),
                line_text=src.line_text(1),
            )
            continue
        env = {flag: bool(value) for flag, value in envs[name].items()}
        for diff in validate_variant(
            template, func, env, src.lines, name
        ):
            anchor = (diff.kind, diff.line, diff.spec_line)
            if anchor in seen:
                continue
            seen.add(anchor)
            yield _difference_finding(src, diff, name)


# ----------------------------------------------------------------------
# REP014
# ----------------------------------------------------------------------
def _escape_trace(origin, sink_line: int, sink_text: str,
                  sink_note: str) -> Tuple:
    steps: List[Dict[str, object]] = []
    seen = set()
    for step in origin.steps():
        key = (step["line"], step["col"], step["note"])
        if key not in seen:
            seen.add(key)
            steps.append(step)
    steps.append(
        {"line": sink_line, "col": 0, "text": sink_text,
         "note": sink_note}
    )
    return tuple(steps)


@rule(
    "REP014",
    "frontier-state-escape",
    Severity.ERROR,
    "state crossing a worker/process boundary must be serializable "
    "and must not be mutated on the far side — dispatch payloads, "
    "worker summaries, and StateOps root_state frontiers are checked",
)
def check_frontier_escape(src: SourceFile) -> Iterator[Finding]:
    from repro.analysis.semantics.escape import (
        dispatch_sites,
        frontier_returns,
        module_worker_summaries,
        payload_escapes,
    )

    reported: Set[Tuple[int, str]] = set()

    def emit(line: int, message: str, trace: Tuple,
             source_text: str) -> Iterator[Finding]:
        anchor = (line, message)
        if anchor in reported:
            return
        reported.add(anchor)
        sink_text = src.line_text(line)
        yield Finding(
            path=src.path,
            line=line,
            col=0,
            rule="REP014",
            severity=Severity.ERROR,
            message=message,
            line_text=sink_text,
            trace=trace,
            fingerprint=flow_fingerprint(
                "REP014", source_text, sink_text
            ),
        )

    # 1. Unserializable dispatch payloads.
    for escape in payload_escapes(src):
        root = escape.origin.root()
        line = escape.site.line
        yield from emit(
            line,
            (
                f"dispatch payload for {escape.site.describe()} carries "
                f"unserializable state (from {root.note}, line "
                f"{root.line}); it cannot cross the process boundary"
            ),
            _escape_trace(
                escape.origin,
                line,
                src.line_text(line),
                "reaches the process boundary here",
            ),
            root.text,
        )

    # 2. Workers whose summaries mutate parent-owned state: reported at
    #    the boundary (the dispatch is what makes the mutation a bug);
    #    REP006 reports the per-write findings inside the worker.
    summaries = module_worker_summaries(src)
    if summaries:
        boundary_of: Dict[str, int] = {}
        for site in dispatch_sites(src.tree):
            if isinstance(site.worker, ast.Name):
                boundary_of.setdefault(site.worker.id, site.line)
        for name, mutations in summaries.items():
            if not mutations:
                continue
            first = mutations[0]
            line = boundary_of.get(name, first.line)
            origin = first.origin
            steps: List[Dict[str, object]] = []
            if origin is not None:
                steps.extend(origin.steps())
            steps.append(
                {
                    "line": first.line,
                    "col": first.node.col_offset,
                    "text": src.line_text(first.line),
                    "note": f"worker '{name}' {first.what}",
                }
            )
            steps.append(
                {
                    "line": line,
                    "col": 0,
                    "text": src.line_text(line),
                    "note": "worker crosses the process boundary here",
                }
            )
            yield from emit(
                line,
                (
                    f"worker '{name}' mutates state it received across "
                    f"the process boundary ({first.what}, line "
                    f"{first.line}); the write never reaches the parent"
                ),
                tuple(steps),
                src.line_text(first.line),
            )

    # 3. StateOps frontier surfaces.
    for ret, origin in frontier_returns(src):
        root = origin.root()
        yield from emit(
            ret.lineno,
            (
                "frontier state returned by root_state carries "
                f"unserializable components (from {root.note}, line "
                f"{root.line}); it cannot be shipped to a worker"
            ),
            _escape_trace(
                origin,
                ret.lineno,
                src.line_text(ret.lineno),
                "frontier state leaves root_state here",
            ),
            root.text,
        )
