"""REP009 — compiled-variant parity.

The engine dispatcher (:func:`repro.engine.driver.build_search`)
selects a pre-compiled recursion **variant** per configuration shape;
every variant is a partial evaluation of the one shared template
(:func:`repro.engine.driver._search_template`).  That construction is
what makes the specializer safe: the hooked variant provably contains
every REP007/REP008 hook site, and the production variants provably
contain none.  This rule re-renders the whole legal key space on every
lint run and fails when the folding stops delivering that guarantee:

* a **legal key no longer renders/compiles** — the template and the
  spec-flag environment drifted apart (e.g. a flag added to the
  template but not to ``_flag_env``);
* the **fully-featured hooked variant** lost a sanitizer or observer
  hook kind — a hook site was deleted from the template, or moved
  under the wrong fold guard so specialization strips it from hooked
  runs;
* any **hooked variant** grew a hook label outside the template's
  inventory — a hook call was added behind a backend/pivot flag
  instead of the ``HOOKS`` guard, where REP007/REP008 (which anchor on
  the unfolded template) cannot pin its kind;
* an **unhooked variant** still touches ``san``/``obs`` — the
  production closure is paying hook branches it must not have.

The rule is file-scoped: it anchors on the module that defines
``_search_template`` at top level (the engine driver) and stays silent
everywhere else.  Unlike the other rules it is *semantic*, not purely
syntactic — it calls :func:`repro.engine.driver.render_variant` on the
imported engine, which the self-scan test keeps in lockstep with the
committed tree.

Hook extraction is grounded on the translation validator's
guarded-command skeleton (:mod:`repro.analysis.semantics.ir`): the
syntactic :func:`~repro.analysis.fingerprint.hook_labels` walker runs
first as the fast pre-pass, and the normalized-skeleton labels — the
same ones REP013 proves against the template — are authoritative on
top, seeing through closures the scope-bounded walker stops at.  Full
per-statement equivalence of every fold lives in REP013; this rule
keeps the hook-coverage contract that REP007/REP008 depend on.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.fingerprint import hook_labels
from repro.analysis.registry import rule
from repro.analysis.rules import obs as obs_rules
from repro.analysis.rules import sanitizer as san_rules
from repro.analysis.source import SourceFile

#: The template factory whose presence anchors the rule to one file.
_TEMPLATE_FUNC = "_search_template"
#: The recursion closure inside each rendered variant.
_RECURSION_FUNC = "search"

#: The key whose rendering must carry *every* recursion hook kind:
#: generic shape, hooks on, all pruning families enabled.
FULL_HOOKED_KEY = ("generic", True, "color", "improved", False, False)

#: Recursion-level hook inventories, shared with REP007/REP008 so the
#: three rules can never disagree about what "all hook kinds" means.
SAN_RECURSION_HOOKS = san_rules.RECURSION_HOOKS
OBS_RECURSION_HOOKS = obs_rules.RECURSION_HOOKS


def _defines_template(tree: ast.AST) -> bool:
    return any(
        isinstance(node, ast.FunctionDef) and node.name == _TEMPLATE_FUNC
        for node in getattr(tree, "body", [])
    )


def _variant_recursion(module: ast.Module) -> Optional[ast.FunctionDef]:
    """The ``search`` closure of one rendered variant module."""
    for node in module.body:
        if (
            isinstance(node, ast.FunctionDef)
            and node.name == _TEMPLATE_FUNC
        ):
            for inner in node.body:
                if (
                    isinstance(inner, ast.FunctionDef)
                    and inner.name == _RECURSION_FUNC
                ):
                    return inner
    return None


def _hook_sets(func: ast.AST) -> Tuple[set, set]:
    """``(san labels, obs labels)`` of one rendered recursion.

    Syntactic pre-pass first (cheap, scope-bounded), then the semantic
    skeleton's labels on top: the skeleton descends into nested
    closures and uses the exact label convention REP013 validates, so
    a hook the walker cannot see still fails parity here.
    """
    from repro.analysis.semantics.ir import (
        hook_labels_of,
        normalize_function,
    )

    san = set(hook_labels(func, hook_root="san"))
    obs = set(hook_labels(func, hook_root="obs", detail=True))
    for label in hook_labels_of(normalize_function(func, {})):
        root, _, rest = label.partition(":")
        if root == "san":
            san.add(":".join(rest.split(":")[:2]))
        elif root == "obs":
            obs.add(rest)
    return san, obs


@rule(
    "REP009",
    "variant-parity",
    Severity.ERROR,
    "every compiled recursion variant must fold from the shared "
    "template: hooked variants keep all hook kinds, production "
    "variants keep none",
)
def check_variant_parity(src: SourceFile) -> Iterator[Finding]:
    if not _defines_template(src.tree):
        return
    # Imported lazily: only the one anchored file pays for rendering
    # the 50+ key space, and non-engine scans never import the engine.
    from repro.engine import driver

    def finding(message: str) -> Finding:
        return Finding(
            path=src.path,
            line=1,
            col=0,
            rule="REP009",
            severity=Severity.ERROR,
            message=message,
            line_text=src.line_text(1),
        )

    san_full = set(SAN_RECURSION_HOOKS)
    obs_full = set(OBS_RECURSION_HOOKS)
    for key in driver.legal_variant_keys():
        try:
            module = driver.render_variant(key)
            compile(module, "<repro-lint variant probe>", "exec")
        except Exception as error:  # noqa: BLE001 - any failure is the finding
            yield finding(
                f"variant {key} no longer renders from the shared "
                f"template ({error!r}) — the spec-flag environment and "
                "the template drifted apart (see docs/architecture.md)"
            )
            continue
        recursion = _variant_recursion(module)
        if recursion is None:
            yield finding(
                f"variant {key} lost its nested '{_RECURSION_FUNC}' "
                "closure — the template shape changed out from under "
                "the specializer"
            )
            continue
        san_hooks, obs_hooks = _hook_sets(recursion)
        hooked = bool(key[1])
        if not hooked and (san_hooks or obs_hooks):
            yield finding(
                f"production variant {driver.variant_id(key)} {key} "
                f"still calls {', '.join(sorted(san_hooks | obs_hooks))}"
                " — hook branches must fold away entirely when hooks "
                "are off"
            )
        if hooked:
            extra = (san_hooks - san_full) | (obs_hooks - obs_full)
            if extra:
                yield finding(
                    f"hooked variant {key} calls "
                    f"{', '.join(sorted(extra))} which is outside the "
                    "REP007/REP008 inventories — add the hook kind to "
                    "the coverage rules or move the call site"
                )
    try:
        module = driver.render_variant(FULL_HOOKED_KEY)
    except Exception:  # noqa: BLE001 - already reported by the key loop
        return
    recursion = _variant_recursion(module)
    if recursion is not None:
        san_hooks, obs_hooks = _hook_sets(recursion)
        missing = (san_full - san_hooks) | (obs_full - obs_hooks)
        if missing:
            yield finding(
                f"the fully-featured hooked variant {FULL_HOOKED_KEY} "
                f"no longer calls {', '.join(sorted(missing))} — a "
                "hook site was deleted or sits under a fold guard "
                "other than HOOKS, so specialization strips it from "
                "hooked runs"
            )
