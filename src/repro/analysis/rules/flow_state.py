"""REP012 — unrestored interpreter/global state.

A mutation of process-wide state — ``sys.setrecursionlimit``, an
``os.environ`` write, or an assignment to a ``global`` — leaks out of
its function whenever an exception can escape before the state is put
back.  PR 6 fixed exactly this bug by hand in the engine driver
(statements between ``sys.setrecursionlimit(needed)`` and the
``try`` could raise and leave the limit raised); this rule makes the
check mechanical.

For every mutation site the rule asks the CFG: *can execution reach
the exceptional exit without first entering the* ``finally`` *body of
a try whose* ``finally`` *restores this state?*  Entering the
``finally`` counts as restored even when the restore inside it is
conditional (``if raised: sys.setrecursionlimit(previous)``) — path
sensitivity inside the finally body is the author's responsibility,
the rule checks the structural guarantee that the finally runs.

Deliberately exempt:

* the restore statements themselves (mutations lexically inside a
  restoring ``finally``);
* the memo idiom ``if _CACHE is None: _CACHE = build()`` — an
  idempotent fill-once global never needs unwinding;
* module-level assignments to module globals (that is initialization,
  not mutation of someone else's state).

Findings carry a two-step dataflow trace — the mutation (source) and
the statement whose exception escapes unrestored (sink) — and a
fingerprint over that source/sink pair.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity, flow_fingerprint
from repro.analysis.flow import cfgs_for
from repro.analysis.flow.cfg import CFG, Node
from repro.analysis.registry import rule
from repro.analysis.source import SourceFile, root_name, terminal_name

#: ``os.environ`` methods that mutate the process environment.
_ENV_MUTATORS = {
    "update", "pop", "setdefault", "clear", "popitem", "__setitem__",
}
_SCOPE_BARRIERS = (
    ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda,
)

#: A mutation key: ``("reclimit", "sys")``, ``("environ", "environ")``
#: or ``("global", <name>)``.
Key = Tuple[str, str]


def _walk_shallow(node: ast.AST, include_root: bool = True):
    if include_root:
        yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, _SCOPE_BARRIERS):
            continue
        yield from _walk_shallow(child)


def _global_names(func: Optional[ast.AST]) -> Set[str]:
    """Names declared ``global`` in this function (not nested ones)."""
    if func is None:
        return set()
    names: Set[str] = set()
    for stmt in func.body:
        for sub in _walk_shallow(stmt):
            if isinstance(sub, ast.Global):
                names.update(sub.names)
    return names


def _stmt_mutations(stmt: ast.AST, global_names: Set[str]) -> List[Key]:
    """Every state mutation one simple statement performs."""
    keys: List[Key] = []
    for sub in _walk_shallow(stmt):
        if isinstance(sub, ast.Call):
            callee = terminal_name(sub.func)
            if callee == "setrecursionlimit":
                keys.append(("reclimit", "sys"))
            elif callee == "putenv":
                keys.append(("environ", "environ"))
            elif (
                isinstance(sub.func, ast.Attribute)
                and terminal_name(sub.func.value) == "environ"
                and sub.func.attr in _ENV_MUTATORS
            ):
                keys.append(("environ", "environ"))
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for target in targets:
        if (
            isinstance(target, ast.Subscript)
            and terminal_name(target.value) == "environ"
        ):
            keys.append(("environ", "environ"))
        elif isinstance(target, ast.Name) and target.id in global_names:
            keys.append(("global", target.id))
    return keys


def _restoring_trys(
    func_body: List[ast.stmt], key: Key
) -> Set[int]:
    """``id(Try)`` for every try whose ``finally`` restores ``key``.

    The restore test is "the finalbody lexically contains a compatible
    mutation of the same state" — which covers unconditional restores,
    conditional ``if raised:`` restores, and counter decrements alike.
    """
    out: Set[int] = set()
    kind, name = key
    for stmt in func_body:
        for sub in _walk_shallow(stmt):
            if not (isinstance(sub, ast.Try) and sub.finalbody):
                continue
            for final_stmt in sub.finalbody:
                for inner in _walk_shallow(final_stmt):
                    if _restores(inner, kind, name):
                        out.add(id(sub))
                        break
    return out


def _restores(node: ast.AST, kind: str, name: str) -> bool:
    if kind == "reclimit":
        return (
            isinstance(node, ast.Call)
            and terminal_name(node.func) == "setrecursionlimit"
        )
    if kind == "environ":
        if isinstance(node, ast.Call):
            callee = terminal_name(node.func)
            if callee in ("putenv", "unsetenv"):
                return True
            return (
                isinstance(node.func, ast.Attribute)
                and terminal_name(node.func.value) == "environ"
                and node.func.attr in _ENV_MUTATORS
            )
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.Delete)):
            targets = (
                [node.target] if isinstance(node, ast.AugAssign)
                else list(node.targets)
            )
        return any(
            isinstance(t, ast.Subscript)
            and terminal_name(t.value) == "environ"
            for t in targets
        )
    # kind == "global"
    if isinstance(node, ast.Assign):
        return any(
            isinstance(t, ast.Name) and t.id == name for t in node.targets
        )
    if isinstance(node, ast.AugAssign):
        return isinstance(node.target, ast.Name) and node.target.id == name
    return False


def _is_memo_fill(src: SourceFile, stmt: ast.AST, name: str) -> bool:
    """``if NAME is None: NAME = ...`` — fill-once memo, exempt."""
    node: Optional[ast.AST] = stmt
    while node is not None and not isinstance(node, _SCOPE_BARRIERS):
        parent = src.parent(node)
        if isinstance(parent, ast.If):
            test = parent.test
            if (
                isinstance(test, ast.Compare)
                and isinstance(test.left, ast.Name)
                and test.left.id == name
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Is)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None
            ):
                return True
        node = parent
    return False


def _escape_path(
    cfg: CFG, start: Node, blocked_trys: Set[int]
) -> Optional[List[Node]]:
    """A path from ``start`` to the exceptional exit that never enters
    the finally body of a restoring try; None when no such path exists.

    The start node's *own* exception edges do not count: if the
    mutating statement itself raises mid-evaluation, the state was
    never changed.
    """
    parent: Dict[int, Node] = {}
    work = deque([start])
    seen = {start.index}
    first_hop = True
    while work:
        node = work.popleft()
        for succ in node.succ:
            if first_hop and (
                succ is cfg.raise_exit or succ.kind == "handler"
            ):
                continue
            if succ.index in seen:
                continue
            seen.add(succ.index)
            parent[succ.index] = node
            if succ is cfg.raise_exit:
                path = [succ]
                walk = node
                while walk is not start:
                    path.append(walk)
                    walk = parent[walk.index]
                path.append(start)
                path.reverse()
                return path
            if succ is cfg.exit:
                continue
            if (
                succ.finally_of is not None
                and id(succ.finally_of) in blocked_trys
            ):
                continue
            work.append(succ)
        first_hop = False
    return None


_KIND_LABEL = {
    "reclimit": "sys.setrecursionlimit",
    "environ": "os.environ",
}


@rule(
    "REP012",
    "unrestored-global-state",
    Severity.ERROR,
    "interpreter/global state mutated on a path that can raise must "
    "be restored in a finally block",
)
def check_unrestored_state(src: SourceFile) -> Iterator[Finding]:
    for func, cfg in cfgs_for(src).values():
        global_names = _global_names(func)
        body = func.body if func is not None else src.tree.body
        restoring_cache: Dict[Key, Set[int]] = {}
        for node in cfg.nodes:
            stmt = node.stmt
            if stmt is None or node.kind not in ("stmt", "iter"):
                continue
            for key in _stmt_mutations(stmt, global_names):
                kind, name = key
                if kind == "global" and _is_memo_fill(src, stmt, name):
                    continue
                if key not in restoring_cache:
                    restoring_cache[key] = _restoring_trys(body, key)
                blocked = restoring_cache[key]
                # The restore itself lives inside a restoring finally.
                if (
                    node.finally_of is not None
                    and id(node.finally_of) in blocked
                ):
                    continue
                path = _escape_path(cfg, node, blocked)
                if path is None:
                    continue
                escape = next(
                    (n for n in reversed(path) if n.stmt is not None),
                    node,
                )
                what = _KIND_LABEL.get(kind, f"global `{name}`")
                source_text = src.line_text(node.line)
                sink_text = src.line_text(escape.line)
                yield Finding(
                    path=src.path,
                    line=node.line,
                    col=getattr(stmt, "col_offset", 0),
                    rule="REP012",
                    severity=Severity.ERROR,
                    message=(
                        f"{what} mutated here but an exception "
                        f"escaping via line {escape.line} leaves it "
                        "unrestored; wrap the mutation in try/finally "
                        "with the restore in the finally body"
                    ),
                    line_text=source_text,
                    trace=(
                        {
                            "line": node.line,
                            "col": getattr(stmt, "col_offset", 0),
                            "text": source_text,
                            "note": f"{what} mutated",
                        },
                        {
                            "line": escape.line,
                            "col": getattr(escape.stmt, "col_offset", 0),
                            "text": sink_text,
                            "note": "exception can escape here with "
                                    "state still mutated",
                        },
                    ),
                    fingerprint=flow_fingerprint(
                        "REP012", source_text, sink_text
                    ),
                )
                break  # one finding per statement is plenty
