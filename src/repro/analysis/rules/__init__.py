"""The repro-lint rule catalog.

Importing this package registers every rule with
:mod:`repro.analysis.registry`.  Rules live one concern per module:

* :mod:`~repro.analysis.rules.determinism` — REP001, REP002
* :mod:`~repro.analysis.rules.numeric` — REP003, REP004
* :mod:`~repro.analysis.rules.conformance` — REP005
* :mod:`~repro.analysis.rules.parallel` — REP006
* :mod:`~repro.analysis.rules.sanitizer` — REP007
* :mod:`~repro.analysis.rules.obs` — REP008
* :mod:`~repro.analysis.rules.variants` — REP009
"""

from repro.analysis.rules import (
    conformance,
    determinism,
    numeric,
    obs,
    parallel,
    sanitizer,
    variants,
)

__all__ = [
    "conformance",
    "determinism",
    "numeric",
    "obs",
    "parallel",
    "sanitizer",
    "variants",
]
