"""The repro-lint rule catalog.

Importing this package registers every rule with
:mod:`repro.analysis.registry`.  Rules live one concern per module:

* :mod:`~repro.analysis.rules.determinism` — REP001, REP002
* :mod:`~repro.analysis.rules.numeric` — REP003, REP004
* :mod:`~repro.analysis.rules.conformance` — REP005
* :mod:`~repro.analysis.rules.parallel` — REP006
* :mod:`~repro.analysis.rules.sanitizer` — REP007
* :mod:`~repro.analysis.rules.obs` — REP008
* :mod:`~repro.analysis.rules.variants` — REP009
* :mod:`~repro.analysis.rules.flow_domains` — REP010, REP011
* :mod:`~repro.analysis.rules.flow_state` — REP012
* :mod:`~repro.analysis.rules.translation` — REP013, REP014
* :mod:`~repro.analysis.rules.store` — REP015
"""

from repro.analysis.rules import (
    conformance,
    determinism,
    flow_domains,
    flow_state,
    numeric,
    obs,
    parallel,
    sanitizer,
    store,
    translation,
    variants,
)

#: Bumped whenever rule semantics change in a way that invalidates
#: cached per-file results (see :mod:`repro.analysis.cache`).  The
#: cache key also folds in the analysis package sources, so this is a
#: human-readable escape hatch, not the only invalidation mechanism.
RULESET_VERSION = "2026.08-store-1"

__all__ = [
    "conformance",
    "determinism",
    "flow_domains",
    "flow_state",
    "numeric",
    "obs",
    "parallel",
    "sanitizer",
    "store",
    "translation",
    "variants",
    "RULESET_VERSION",
]
