"""Numeric-safety and API-hygiene rules.

REP003 — float equality.  Probabilities and thresholds in this
codebase are accumulated products (or log-domain sums) of floats;
``==`` / ``!=`` against them is at best an exact-sentinel check and at
worst a latent order-of-evaluation bug.  Every such comparison must be
rewritten with an epsilon / ``math.isclose`` guard or explicitly
recorded (suppression or baseline) as an intentional sentinel.

REP004 — mutable default arguments and bare ``except:``.  The two
classic correctness traps: a shared mutable default leaks state across
calls, and a bare except swallows ``KeyboardInterrupt`` /
``SystemExit`` along with the error it meant to catch.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule
from repro.analysis.source import SourceFile, terminal_name

#: Identifiers that (by this repo's conventions) carry probabilities,
#: thresholds or log-domain values.
_PROB_NAME = re.compile(
    r"""(?x)
    ^(
        p | q | eta | gamma | epsilon | eps | weight | threshold
      | similarity | prob | probability | reliability | density
    )\d*$
    | ^(p|q|log|nl)_       # p_e, q_new, log_prob, nl_eta, ...
    | prob                 # prob, probs, clique_prob, probability, ...
    | _(p|eta|weight|threshold|similarity)\d*$
    """
)


def _is_prob_operand(node: ast.AST) -> Optional[str]:
    """A short description when ``node`` looks probability-valued."""
    name = terminal_name(node)
    if name is not None and _PROB_NAME.search(name):
        return f"'{name}'"
    if isinstance(node, ast.Call):
        callee = terminal_name(node.func)
        if callee is not None and _PROB_NAME.search(callee):
            return f"'{callee}(...)'"
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return f"float literal {node.value!r}"
    return None


def _exact_compares(node: ast.Compare):
    """``(op, left, right)`` for the == / != legs of one comparison,
    skipping ``x == None`` style legs (a different lint's job)."""
    operands = [node.left] + list(node.comparators)
    for op, left, right in zip(node.ops, operands, operands[1:]):
        if not isinstance(op, (ast.Eq, ast.NotEq)):
            continue
        if any(
            isinstance(side, ast.Constant) and side.value is None
            for side in (left, right)
        ):
            continue
        yield op, left, right


@rule(
    "REP003",
    "float-equality",
    Severity.WARNING,
    "== / != on probability- or threshold-valued floats; use an "
    "epsilon guard or record the exact-sentinel intent",
)
def check_float_equality(src: SourceFile) -> Iterator[Finding]:
    direct_hits = set()
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Compare):
            continue
        for op, left, right in _exact_compares(node):
            what = _is_prob_operand(left) or _is_prob_operand(right)
            if what is None:
                continue
            direct_hits.add((node.lineno, node.col_offset))
            sym = "==" if isinstance(op, ast.Eq) else "!="
            yield Finding(
                path=src.path,
                line=node.lineno,
                col=node.col_offset,
                rule="REP003",
                severity=Severity.WARNING,
                message=(
                    f"exact float comparison '{sym}' involving {what}; "
                    "use math.isclose / an inequality, or mark the "
                    "exact-sentinel intent with a suppression or "
                    "baseline entry"
                ),
                line_text=src.line_text(node.lineno),
            )
    # Flow extension: a probability that moved through assignments into
    # an innocently-named variable is still a probability.  The direct
    # (syntactic) check above keeps its exact messages for baseline
    # compatibility; this pass only adds comparisons the name heuristic
    # cannot see, with the provenance chain attached.
    yield from _check_flow_equality(src, direct_hits)


def _check_flow_equality(src: SourceFile, direct_hits) -> Iterator[Finding]:
    from repro.analysis.findings import flow_fingerprint
    from repro.analysis.flow import ModuleSummaries, cfgs_for
    from repro.analysis.rules.flow_domains import (
        _ProbTaint,
        _scan_roots,
        _walk_expr_scope,
    )

    class _ProbEquality(_ProbTaint):
        """Reuses REP010's propagation; sinks are == / != only.

        Float *literals* are deliberately not flow sources — a literal
        only matters when it is compared directly, which the syntactic
        pass already flags.
        """

        def check(self, node, env) -> None:
            for root in _scan_roots(node):
                for expr in _walk_expr_scope(root):
                    if not isinstance(expr, ast.Compare):
                        continue
                    if (expr.lineno, expr.col_offset) in direct_hits:
                        continue
                    for _op, left, right in _exact_compares(expr):
                        for side in (left, right):
                            # Only flow-through-assignment taint: a
                            # name the syntactic heuristic would have
                            # caught itself is not worth a second
                            # finding.
                            if _is_prob_operand(side) is not None:
                                continue
                            tags = self.expr_tags(side, env)
                            origin = tags.get("lin") or tags.get("log")
                            if origin is not None:
                                self.findings.append((expr, side, origin))
                                break

    summaries = ModuleSummaries().compute(
        src, lambda s: _ProbTaint(src.lines, s)
    )
    reported = set()
    for func, cfg in cfgs_for(src).values():
        analysis = _ProbEquality(src.lines, summaries)
        analysis.func_name = func.name if func is not None else None
        analysis.run(cfg)
        for expr, side, origin in analysis.findings:
            anchor = (expr.lineno, expr.col_offset)
            if anchor in reported:
                continue
            reported.add(anchor)
            sink_text = src.line_text(expr.lineno)
            root = origin.root()
            yield Finding(
                path=src.path,
                line=expr.lineno,
                col=expr.col_offset,
                rule="REP003",
                severity=Severity.WARNING,
                message=(
                    "exact float comparison on a value carrying "
                    f"probability taint (from {root.note}, line "
                    f"{root.line}); use math.isclose / an inequality, "
                    "or record the exact-sentinel intent"
                ),
                line_text=sink_text,
                trace=tuple(origin.steps()) + (
                    {
                        "line": expr.lineno,
                        "col": expr.col_offset,
                        "text": sink_text,
                        "note": "compared exactly here",
                    },
                ),
                fingerprint=flow_fingerprint("REP003", root.text, sink_text),
            )


# ----------------------------------------------------------------------
# REP004 — mutable defaults and bare except
# ----------------------------------------------------------------------
def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray")
    return False


@rule(
    "REP004",
    "mutable-default-or-bare-except",
    Severity.ERROR,
    "mutable default argument values and bare except: clauses",
)
def check_mutable_defaults(src: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(src.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield Finding(
                        path=src.path,
                        line=default.lineno,
                        col=default.col_offset,
                        rule="REP004",
                        severity=Severity.ERROR,
                        message=(
                            f"mutable default argument in '{node.name}'; "
                            "default to None and construct inside the "
                            "function"
                        ),
                        line_text=src.line_text(default.lineno),
                    )
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            yield Finding(
                path=src.path,
                line=node.lineno,
                col=node.col_offset,
                rule="REP004",
                severity=Severity.ERROR,
                message=(
                    "bare 'except:' also catches KeyboardInterrupt/"
                    "SystemExit; catch Exception (or narrower) instead"
                ),
                line_text=src.line_text(node.lineno),
            )
