"""REP005 — engine/StateOps conformance.

The backend-agnostic search engine (:mod:`repro.engine`) replaced the
old dict/kernel mirror: there is exactly one recursion, in
:mod:`repro.engine.driver`, and backends plug in through the
``StateOps`` protocol.  Two structural regressions remain possible and
this rule pins both down on every lint run:

* a backend class subclasses ``StateOps`` without implementing the
  full protocol surface.  ``validate_state_ops`` catches that at run
  time, but only on the first run of that backend — the lint catches
  it on every scan, before any test selects the backend;
* someone reintroduces a private copy of the engine recursion outside
  ``src/repro/engine`` — recognized as a self-recursive function that
  carries *both* an M-pivot marker (the ``mpivot_skips`` counter or a
  ``periphery`` rebinding) *and* a K-pivot/size marker
  (``kpivot_stops`` / ``size_prunes``).  Requiring both families keeps
  the hereditary framework (Algorithm 2 — the deliberately general
  periphery search, which has no size accounting) exempt by
  construction while any copy of the engine's combined search trips
  the rule.

The module also hosts :func:`find_engine_anchors`, the shared locator
for the engine's recursion and run lifecycle that the REP007/REP008
hook-coverage rules build on.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule
from repro.analysis.source import SourceFile, terminal_name, walk_functions
from repro.engine.protocol import PROTOCOL_ATTRS, PROTOCOL_METHODS

#: The protocol base class backends subclass.
_BASE = "StateOps"
#: Path component that marks the engine package: the one place the
#: recursion (and its markers) may live.
_ENGINE_COMPONENT = "engine"
#: The recursion anchor: the closure defined by the shared template
#: that every compiled variant is folded from (see
#: ``repro.engine.driver``).
_RECURSION_FUNC = "search"
_RECURSION_BUILDER = "_search_template"
#: The lifecycle anchor: the ``run`` method of the engine class.
_DRIVER_METHOD = "run"
_DRIVER_CLASS = "SearchEngine"

_MPIVOT_COUNTERS = ("mpivot_skips",)
_KPIVOT_COUNTERS = ("kpivot_stops", "size_prunes")


def find_engine_anchors(
    src: SourceFile,
) -> Tuple[Optional[ast.AST], Optional[ast.AST]]:
    """Locate ``(recursion, driver)`` anchor functions in one file.

    The recursion is the ``search`` closure nested directly in
    ``_search_template`` (the shared variant template); the driver is
    the ``run`` method defined directly on ``SearchEngine``.  Either side is None when absent; the first
    match wins, so a file holding exactly one engine — the committed
    layout — is unambiguous.
    """
    recursion = driver = None
    for func, stack in walk_functions(src.tree):
        if (
            recursion is None
            and func.name == _RECURSION_FUNC
            and stack
            and isinstance(stack[-1], ast.FunctionDef)
            and stack[-1].name == _RECURSION_BUILDER
        ):
            recursion = func
        if (
            driver is None
            and func.name == _DRIVER_METHOD
            and stack
            and isinstance(stack[-1], ast.ClassDef)
            and stack[-1].name == _DRIVER_CLASS
        ):
            driver = func
    return recursion, driver


def _is_stateops_subclass(cls: ast.ClassDef) -> bool:
    if cls.name == _BASE:
        return False  # the protocol base itself defines the surface
    return any(terminal_name(base) == _BASE for base in cls.bases)


def _class_surface(cls: ast.ClassDef) -> Tuple[set, set]:
    """``(method names, class-attribute names)`` defined in the body."""
    methods = set()
    attrs = set()
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                name = terminal_name(target)
                if name:
                    attrs.add(name)
        elif isinstance(stmt, ast.AnnAssign):
            name = terminal_name(stmt.target)
            if name:
                attrs.add(name)
    return methods, attrs


def _in_engine_package(path: str) -> bool:
    return _ENGINE_COMPONENT in re.split(r"[\\/]", path)


def _is_self_recursive(func: ast.AST) -> bool:
    return any(
        isinstance(node, ast.Call)
        and terminal_name(node.func) == func.name
        for node in ast.walk(func)
    )


def _search_markers(func: ast.AST) -> Tuple[bool, bool]:
    """``(mpivot, kpivot)`` marker presence inside ``func``."""
    mpivot = kpivot = False
    for node in ast.walk(func):
        if isinstance(node, ast.AugAssign):
            name = terminal_name(node.target)
            if name in _MPIVOT_COUNTERS:
                mpivot = True
            elif name in _KPIVOT_COUNTERS:
                kpivot = True
        elif isinstance(node, ast.Assign):
            if any(
                terminal_name(t) == "periphery" for t in node.targets
            ):
                mpivot = True
    return mpivot, kpivot


@rule(
    "REP005",
    "engine-conformance",
    Severity.ERROR,
    "backend StateOps classes must implement the full engine protocol, "
    "and the engine recursion must not be copied outside repro.engine",
)
def check_engine_conformance(src: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not _is_stateops_subclass(node):
            continue
        methods, attrs = _class_surface(node)
        missing = [m for m in PROTOCOL_METHODS if m not in methods]
        missing += [a for a in PROTOCOL_ATTRS if a not in attrs]
        if missing:
            yield Finding(
                path=src.path,
                line=node.lineno,
                col=node.col_offset,
                rule="REP005",
                severity=Severity.ERROR,
                message=(
                    f"class {node.name} subclasses StateOps but does "
                    f"not define {', '.join(missing)} — a backend must "
                    "implement the complete engine protocol (see "
                    "docs/architecture.md for the recipe)"
                ),
                line_text=src.line_text(node.lineno),
            )
    if _in_engine_package(src.path):
        return
    for func, _stack in walk_functions(src.tree):
        if not _is_self_recursive(func):
            continue
        mpivot, kpivot = _search_markers(func)
        if mpivot and kpivot:
            yield Finding(
                path=src.path,
                line=func.lineno,
                col=func.col_offset,
                rule="REP005",
                severity=Severity.ERROR,
                message=(
                    f"function {func.name} is a self-recursive search "
                    "carrying both M-pivot and K-pivot/size markers — "
                    "a private copy of the engine recursion.  The "
                    "search tree driver lives exactly once, in "
                    "repro.engine.driver; add a StateOps backend "
                    "instead of a second recursion (see "
                    "docs/architecture.md)"
                ),
                line_text=src.line_text(func.lineno),
            )
