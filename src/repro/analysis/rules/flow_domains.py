"""Flow-sensitive domain rules: REP010 (probability domains) and
REP011 (bitset escape).

Both are taint analyses on the :mod:`repro.analysis.flow` core.

**REP010 — log/linear probability-domain mixing.**  The kernel carries
probabilities as negative-log values (``sv[w] = -log Pr(R∪{w})/Pr(R)``,
``nlq = -log Pr(R)``) while the dict backend and the exact oracle work
in linear probabilities.  A value is *log-tainted* when it originates
from ``-log(p)`` / ``log(p)`` or from a name the kernel reserves for
the log domain (``sv``, ``nlq``, ``nlogr``, ``nl_*``, ``hi_base``…);
it is *linear-tainted* when it originates from a probability-named
value (``p``, ``eta``, ``prob*``…).  Taint flows through assignments,
tuple unpacking, container round-trips and module-local helper calls;
``math.exp`` / ``math.log`` are the blessed conversions and reset the
tag.  The sink is any arithmetic or ordering/equality comparison whose
operands are *definitely* log and *definitely* linear — a domain mix
no rounding argument can save.

**REP011 — bitset-domain escape.**  Bit-parallel candidate sets (big
ints built from ``bit_at`` / ``*_bits`` masks) must stay in
int/popcount operations on the hot path.  Sinks: materializing a
tainted bitset via ``set()``/``list()``/``sorted()``…, per-index
membership scans (``B >> w & 1`` with ``w`` a surrounding
``range()``-loop variable, where the ``while xb: w = xb.bit_length() -
1; xb ^= bit_at[w]`` extraction idiom stays in the domain), string
round-trips via ``bin()``/``format()``, and direct ``for w in B``
iteration.

In the engine-driver file (the module defining ``_search_template``)
the unfolded template is skipped and every distinct AST-folded variant
is analyzed instead — exactly the closures production runs execute —
with findings anchored to the template's real source lines and
de-duplicated across variants.
"""

from __future__ import annotations

import ast
import copy
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity, flow_fingerprint
from repro.analysis.flow import (
    ModuleSummaries,
    Origin,
    TaintAnalysis,
    Tags,
    build_cfg,
    cfgs_for,
    merge_tags,
    origin_for,
)
from repro.analysis.flow.cfg import CFG, Node
from repro.analysis.registry import rule
from repro.analysis.source import SourceFile, terminal_name

_TEMPLATE_FUNC = "_search_template"

#: Names reserved (by kernel convention) for negative-log values.
_LOG_NAME = re.compile(r"^_?(sv|nlq|nlogr|nlog\w*|nl_\w+|hi_base)$")
#: Names that carry linear probabilities.  Bare ``q`` is deliberately
#: absent: the codebase uses it for both Pr(R) (linear, dict backend)
#: and generic quantities, so it is too ambiguous to be a source.
_LIN_NAME = re.compile(
    r"^_?(p|eta|prob\w*|probability|reliability|r_val|p_[a-z]\w*)$"
)
#: ``log``-family callees.  A *plain* ``log(p)`` is ordinary math
#: (entropy terms, Hoeffding bounds) and stays domain-free; only the
#: negated form ``-log(p)`` — the kernel's nlog encoding — and the
#: ``nlog*``-named helpers produce log-domain values.
_LOG_CALLS = {"log", "log1p", "log2", "log10"}
_NLOG_CALL = re.compile(r"^_?nlog\w*$")
_TO_LIN_CALLS = {"exp", "expm1"}
#: Calls whose result is domain-free (booleans, indices, counts,
#: vertex lists) even when their arguments are tainted.
_NEUTRAL_CALLS = {
    "len", "bool", "int", "range", "popcount", "bit_length", "id",
    "isclose", "exact_accept", "exact_x_member", "label_of",
    "select_pivot", "wide_scan", "normalize_pair", "normalize_edge",
}
#: Callees whose *name* says they return counts, ranks or clique
#: structures: their result is not a probability (or bitset) no matter
#: what domain values went in.  Complements the module-local summary
#: mechanism for helpers imported from sibling modules.
_NEUTRAL_CALL_RE = re.compile(
    r"(^|_)(count|degree|deg|rank|size|len|enumerate|clique)"
)

#: Bit-domain names: the big-int candidate sets and the mask tables
#: they are built from.
_BITS_NAME = re.compile(r"^_?(\w*_)?bits$|^bit_at$|^\w*_mask$|^mask\w*$")
#: Materializing one of these from a bitset leaves the bit domain.
_MATERIALIZERS = {"set", "list", "sorted", "tuple", "frozenset"}
_STRINGIFIERS = {"bin", "format"}

_ARITH_OPS = (
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
)
_SCOPE_BARRIERS = (
    ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda,
)


def _walk_expr_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function scopes."""
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, _SCOPE_BARRIERS):
            continue
        yield from _walk_expr_scope(child)


def _scan_roots(node: Node) -> List[ast.AST]:
    """The expressions a sink check should walk for this CFG node.

    Compound statements contribute only their header expressions —
    their bodies have CFG nodes of their own and would otherwise be
    scanned twice (with the wrong environment).
    """
    stmt = node.stmt
    if node.kind == "iter":
        return [stmt.iter]
    if node.kind == "handler":
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, _SCOPE_BARRIERS):
        return []
    return [stmt]


def _call_terminal(call: ast.Call) -> Optional[str]:
    return terminal_name(call.func)


# ----------------------------------------------------------------------
# shared analysis skeleton for both rules
# ----------------------------------------------------------------------
class _DomainTaint(TaintAnalysis):
    """Common propagation; subclasses define sources and sinks."""

    def __init__(
        self,
        lines: List[str],
        summaries: Optional[ModuleSummaries] = None,
    ):
        super().__init__(lines)
        self.summaries = summaries
        self.findings: List[Tuple] = []
        #: Name of the function under analysis.  Recursive self-calls
        #: use the module summary *instead of* argument passthrough:
        #: blindly forwarding argument taint to the result of a
        #: recursion is a gross over-approximation (the engine's
        #: ``search`` takes bitsets and returns a vertex list).
        self.func_name: Optional[str] = None

    def name_tags(self, name: str, node: ast.AST) -> Tags:
        raise NotImplementedError

    def source_tags(self, expr: ast.expr, env) -> Tags:
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return {}  # a flow binding overrides the name heuristic
            return self.name_tags(expr.id, expr)
        if isinstance(expr, ast.Attribute):
            return self.name_tags(expr.attr, expr)
        return {}

    def call_tags(self, call: ast.Call, env) -> Tags:
        callee = _call_terminal(call)
        if callee is not None and _NEUTRAL_CALL_RE.search(callee):
            return {}
        if callee is not None and callee == self.func_name:
            if self.summaries is not None:
                return dict(self.summaries.return_tags(callee))
            return {}
        if (
            callee is not None
            and self.summaries is not None
            and self.summaries.is_local(callee)
        ):
            # Module-local callee: its summary already states what the
            # return value carries.  Argument passthrough on top would
            # poison count-returning helpers (``_top_degree(tri, p,
            # eta)`` returns an *int*).  Known limitation: a local
            # identity helper (``return p``) summarizes as untainted.
            return dict(self.summaries.return_tags(callee))
        tags = super().call_tags(call, env)
        if callee and self.summaries is not None:
            merge_tags(tags, self.summaries.return_tags(callee))
        return tags

    def unpack_tags(self, value, tags, index, total):
        # ``for k, v in container.items():`` — only the values carry
        # the container's domain; dict *keys* are vertices/indices.
        if (
            total == 2
            and isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "items"
            and index == 0
        ):
            return {}
        return tags


class _ProbTaint(_DomainTaint):
    """REP010: tags ``log`` and ``lin``."""

    def name_tags(self, name: str, node: ast.AST) -> Tags:
        if _LOG_NAME.match(name):
            return {
                "log": origin_for(
                    node, self.lines, "log-domain name `%s`" % name
                )
            }
        if _LIN_NAME.match(name):
            return {
                "lin": origin_for(
                    node, self.lines, "linear-probability name `%s`" % name
                )
            }
        return {}

    def source_tags(self, expr: ast.expr, env) -> Tags:
        # ``-log(p)``: the nlog encoding itself.
        if (
            isinstance(expr, ast.UnaryOp)
            and isinstance(expr.op, ast.USub)
            and isinstance(expr.operand, ast.Call)
            and _call_terminal(expr.operand) in _LOG_CALLS
        ):
            return {
                "log": origin_for(
                    expr, self.lines,
                    "`-%s(...)` nlog encoding"
                    % _call_terminal(expr.operand),
                )
            }
        return super().source_tags(expr, env)

    def call_tags(self, call: ast.Call, env) -> Tags:
        callee = _call_terminal(call)
        if callee in _LOG_CALLS:
            # Plain log() is ordinary math: it consumes the argument's
            # domain and produces a domain-free scalar.  (The *negated*
            # form is tagged in :meth:`source_tags`.)
            return {}
        if callee is not None and _NLOG_CALL.match(callee):
            return {
                "log": origin_for(
                    call, self.lines, "`%s(...)` conversion" % callee
                )
            }
        if callee in _TO_LIN_CALLS:
            return {
                "lin": origin_for(
                    call, self.lines, "`%s(...)` conversion" % callee
                )
            }
        if callee in _NEUTRAL_CALLS:
            return {}
        return super().call_tags(call, env)

    # -- sinks --------------------------------------------------------
    def check(self, node: Node, env) -> None:
        for root in _scan_roots(node):
            for expr in _walk_expr_scope(root):
                if isinstance(expr, ast.BinOp) and isinstance(
                    expr.op, _ARITH_OPS
                ):
                    self._check_pair(
                        expr, expr.left, expr.right, env, "arithmetic"
                    )
                elif isinstance(expr, ast.Compare):
                    operands = [expr.left] + list(expr.comparators)
                    for left, right in zip(operands, operands[1:]):
                        self._check_pair(expr, left, right, env, "comparison")

    def _check_pair(self, where, left, right, env, what: str) -> None:
        lt = self.expr_tags(left, env)
        rt = self.expr_tags(right, env)

        def definite(tags: Tags, tag: str, other: str) -> Optional[Origin]:
            return tags[tag] if tag in tags and other not in tags else None

        for log_side, lin_side in ((lt, rt), (rt, lt)):
            log_origin = definite(log_side, "log", "lin")
            lin_origin = definite(lin_side, "lin", "log")
            if log_origin is not None and lin_origin is not None:
                self.findings.append(
                    (where, what, log_origin, lin_origin)
                )
                return


class _BitsTaint(_DomainTaint):
    """REP011: tag ``bits``."""

    def __init__(self, lines, summaries=None, range_vars=None):
        super().__init__(lines, summaries)
        #: ``id(ast node) -> frozenset of surrounding range()-loop and
        #: range()-comprehension variables`` (see :func:`_range_vars`).
        self.range_vars: Dict[int, frozenset] = range_vars or {}

    def name_tags(self, name: str, node: ast.AST) -> Tags:
        if _BITS_NAME.match(name):
            return {
                "bits": origin_for(
                    node, self.lines, "bit-domain name `%s`" % name
                )
            }
        return {}

    def call_tags(self, call: ast.Call, env) -> Tags:
        callee = _call_terminal(call)
        if callee in _MATERIALIZERS or callee in _NEUTRAL_CALLS:
            return {}
        return super().call_tags(call, env)

    def _bits(self, expr, env) -> Optional[Origin]:
        return self.expr_tags(expr, env).get("bits")

    # -- sinks --------------------------------------------------------
    def check(self, node: Node, env) -> None:
        stmt = node.stmt
        if node.kind == "iter" and isinstance(stmt, (ast.For, ast.AsyncFor)):
            origin = None
            if (
                not isinstance(stmt.iter, ast.Call)
                # Iterating the mask *table* itself is bit-domain setup,
                # not an escape.
                and terminal_name(stmt.iter) != "bit_at"
            ):  # `for w in B` over a raw tainted value
                origin = self._bits(stmt.iter, env)
            if origin is not None:
                self.findings.append(
                    (stmt.iter, "iterated element-by-element", origin)
                )
            return
        for root in _scan_roots(node):
            self._check_exprs(root, env)

    def _check_exprs(self, root: ast.AST, env) -> None:
        for expr in _walk_expr_scope(root):
            if isinstance(expr, ast.Call):
                callee = _call_terminal(expr)
                if callee in _MATERIALIZERS | _STRINGIFIERS:
                    for arg in expr.args:
                        origin = self._bits(arg, env)
                        if origin is not None:
                            verb = (
                                "stringified via `%s(...)`"
                                if callee in _STRINGIFIERS
                                else "materialized via `%s(...)`"
                            ) % callee
                            self.findings.append((expr, verb, origin))
                            break
            elif isinstance(expr, ast.BinOp) and isinstance(
                expr.op, ast.BitAnd
            ):
                self._check_membership(expr, env)

    def _check_membership(self, expr: ast.BinOp, env) -> None:
        """``B >> w & 1`` / ``B & (1 << w)`` / ``B & bit_at[w]`` with
        ``w`` a surrounding ``range()`` loop variable: a per-index scan
        of the whole universe, the exact pattern the bit-parallel
        extraction loop exists to avoid.  Constant indices (flag
        probes) stay silent."""
        loop_vars = self.range_vars.get(id(expr), frozenset())
        if not loop_vars:
            return

        def index_var(node) -> Optional[str]:
            return node.id if isinstance(node, ast.Name) else None

        for a, b in ((expr.left, expr.right), (expr.right, expr.left)):
            # B >> w & 1
            if (
                isinstance(a, ast.BinOp)
                and isinstance(a.op, ast.RShift)
                and index_var(a.right) in loop_vars
            ):
                origin = self._bits(a.left, env)
                if origin is not None:
                    self.findings.append(
                        (expr, "probed per-index with `>> %s & 1`"
                         % index_var(a.right), origin)
                    )
                    return
            # B & (1 << w)  /  B & bit_at[w]
            mask_var = None
            if (
                isinstance(b, ast.BinOp)
                and isinstance(b.op, ast.LShift)
                and index_var(b.right) in loop_vars
            ):
                mask_var = index_var(b.right)
            elif (
                isinstance(b, ast.Subscript)
                and terminal_name(b.value) == "bit_at"
                and index_var(_subscript_index(b)) in loop_vars
            ):
                mask_var = index_var(_subscript_index(b))
            if mask_var is not None:
                origin = self._bits(a, env)
                if origin is not None:
                    self.findings.append(
                        (expr, "probed per-index at `%s`" % mask_var, origin)
                    )
                    return


def _subscript_index(node: ast.Subscript) -> ast.AST:
    index = node.slice
    # py3.8 wraps simple indices in ast.Index; 3.9+ does not.
    return getattr(index, "value", index)


def _range_vars(root: ast.AST) -> Dict[int, frozenset]:
    """``id(node) -> surrounding range()-loop variables`` for every
    node under ``root`` (for-loops over ``range(...)`` and
    comprehension generators over ``range(...)``)."""
    out: Dict[int, frozenset] = {}

    def is_range(expr) -> bool:
        return (
            isinstance(expr, ast.Call) and _call_terminal(expr) == "range"
        )

    def visit(node: ast.AST, vars_: frozenset) -> None:
        extended = vars_
        if (
            isinstance(node, (ast.For, ast.AsyncFor))
            and is_range(node.iter)
            and isinstance(node.target, ast.Name)
        ):
            extended = vars_ | {node.target.id}
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            names = {
                gen.target.id
                for gen in node.generators
                if is_range(gen.iter) and isinstance(gen.target, ast.Name)
            }
            extended = vars_ | names
        out[id(node)] = extended
        for child in ast.iter_child_nodes(node):
            visit(child, extended)

    visit(root, frozenset())
    return out


# ----------------------------------------------------------------------
# per-file orchestration (shared by REP010/REP011)
# ----------------------------------------------------------------------
def _defines_template(tree: ast.AST) -> bool:
    return any(
        isinstance(node, ast.FunctionDef) and node.name == _TEMPLATE_FUNC
        for node in getattr(tree, "body", [])
    )


def _folded_variants(src: SourceFile) -> List[ast.Module]:
    """Every distinct AST-folded variant of this file's own template.

    Folding the template *from the file's AST* (rather than through
    ``render_variant``, which re-parses ``inspect.getsource``) keeps
    the original line numbers, so findings anchor to real source lines
    and inline suppressions keep working.
    """
    from repro.engine import driver

    template = next(
        node
        for node in src.tree.body
        if isinstance(node, ast.FunctionDef) and node.name == _TEMPLATE_FUNC
    )
    seen: Set[Tuple] = set()
    variants: List[ast.Module] = []
    for key in driver.legal_variant_keys():
        env = driver._flag_env(key)
        profile = tuple(sorted(env.items()))
        if profile in seen:
            continue
        seen.add(profile)
        module = ast.Module(
            body=[copy.deepcopy(template)], type_ignores=[]
        )
        driver._Specializer(env).visit(module)
        ast.fix_missing_locations(module)
        variants.append(module)
    return variants


def _function_units(src: SourceFile) -> List[Tuple[Optional[ast.AST], CFG]]:
    """The (function, cfg) units a domain rule analyzes in this file.

    Ordinary files: the module body and every function.  The driver
    file: the same, minus the unfolded template (and its closures),
    plus every folded variant's functions.
    """
    units = list(cfgs_for(src).values())
    if not _defines_template(src.tree):
        return units
    template = next(
        node
        for node in src.tree.body
        if isinstance(node, ast.FunctionDef) and node.name == _TEMPLATE_FUNC
    )
    inside_template = {
        id(sub)
        for sub in ast.walk(template)
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    units = [
        (func, cfg)
        for func, cfg in units
        if func is None or id(func) not in inside_template
    ]
    for module in _folded_variants(src):
        for node in ast.walk(module):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                units.append((node, build_cfg(node.body)))
    return units


def _trace(*origins: Origin, sink_step: Dict[str, object]) -> Tuple:
    steps: List[Dict[str, object]] = []
    seen = set()
    for origin in origins:
        for step in origin.steps():
            key = (step["line"], step["col"], step["note"])
            if key not in seen:
                seen.add(key)
                steps.append(step)
    steps.append(sink_step)
    return tuple(steps)


@rule(
    "REP010",
    "probability-domain-mixing",
    Severity.ERROR,
    "negative-log and linear probability values must never meet in "
    "arithmetic or comparison except through log/exp conversions",
)
def check_probability_domains(src: SourceFile) -> Iterator[Finding]:
    summaries = ModuleSummaries().compute(
        src, lambda s: _ProbTaint(src.lines, s)
    )
    reported: Set[Tuple[int, int]] = set()
    for func, cfg in _function_units(src):
        analysis = _ProbTaint(src.lines, summaries)
        analysis.func_name = func.name if func is not None else None
        analysis.run(cfg)
        for where, what, log_origin, lin_origin in analysis.findings:
            anchor = (where.lineno, where.col_offset)
            if anchor in reported:
                continue
            reported.add(anchor)
            sink_text = src.line_text(where.lineno)
            source_root = log_origin.root()
            yield Finding(
                path=src.path,
                line=where.lineno,
                col=where.col_offset,
                rule="REP010",
                severity=Severity.ERROR,
                message=(
                    f"log-domain value (from {source_root.note}, line "
                    f"{source_root.line}) meets linear-probability value "
                    f"(from {lin_origin.root().note}, line "
                    f"{lin_origin.root().line}) in {what}; convert with "
                    "exp()/-log() first"
                ),
                line_text=sink_text,
                trace=_trace(
                    log_origin,
                    lin_origin,
                    sink_step={
                        "line": where.lineno,
                        "col": where.col_offset,
                        "text": sink_text,
                        "note": f"domains meet in {what}",
                    },
                ),
                fingerprint=flow_fingerprint(
                    "REP010", source_root.text, sink_text
                ),
            )


@rule(
    "REP011",
    "bitset-domain-escape",
    Severity.ERROR,
    "big-int candidate bitsets must stay in int/popcount operations; "
    "set materialization and per-index membership scans leave the "
    "bit-parallel domain",
)
def check_bitset_escape(src: SourceFile) -> Iterator[Finding]:
    summaries = ModuleSummaries().compute(
        src, lambda s: _BitsTaint(src.lines, s)
    )
    reported: Set[Tuple[int, int]] = set()
    for func, cfg in _function_units(src):
        scope_root = func if func is not None else src.tree
        analysis = _BitsTaint(
            src.lines, summaries, range_vars=_range_vars(scope_root)
        )
        analysis.func_name = func.name if func is not None else None
        analysis.run(cfg)
        for where, what, origin in analysis.findings:
            anchor = (where.lineno, where.col_offset)
            if anchor in reported:
                continue
            reported.add(anchor)
            sink_text = src.line_text(where.lineno)
            source_root = origin.root()
            yield Finding(
                path=src.path,
                line=where.lineno,
                col=where.col_offset,
                rule="REP011",
                severity=Severity.ERROR,
                message=(
                    f"bitset value (from {source_root.note}, line "
                    f"{source_root.line}) {what}; stay in the bit domain "
                    "with the `while bits: w = bits.bit_length() - 1; "
                    "bits ^= bit_at[w]` extraction idiom"
                ),
                line_text=sink_text,
                trace=_trace(
                    origin,
                    sink_step={
                        "line": where.lineno,
                        "col": where.col_offset,
                        "text": sink_text,
                        "note": f"bitset {what}",
                    },
                ),
                fingerprint=flow_fingerprint(
                    "REP011", source_root.text, sink_text
                ),
            )
