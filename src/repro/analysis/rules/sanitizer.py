"""REP007 — engine sanitizer-hook coverage.

The runtime sanitizer (:mod:`repro.sanitize`) only sees what the
engine tells it: the single recursion calls ``san.on_node`` /
``san.on_emit`` / ``san.on_cover`` and the run lifecycle calls
``san.on_reduced`` / ``san.on_context`` / ``san.on_finish``.  Before
the backend unification this was a *parity* rule (the same hook had to
exist in both recursions); with one recursion left, the check becomes
*coverage*: every hook the sanitizer's checks depend on must still be
called from the engine.  A deleted hook site silently weakens S1–S5 on
every backend at once — worse than the old one-sided drift, and just
as invisible to tests that only assert on clique output.

The rule is file-scoped and anchors on the engine definitions
(:func:`~repro.analysis.rules.conformance.find_engine_anchors`), so it
stays silent on every other file; the self-scan test asserts the
committed tree actually contains the anchors, closing the
"anchor went missing" hole.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.fingerprint import hook_labels
from repro.analysis.registry import rule
from repro.analysis.rules.conformance import find_engine_anchors
from repro.analysis.source import SourceFile

#: Hooks the recursion must call (S1/S2/S4 run from ``on_node`` /
#: ``on_emit``; S3 needs the M-pivot cover handed over via
#: ``on_cover``).
RECURSION_HOOKS = ("hook:on_node", "hook:on_emit", "hook:on_cover")
#: Hooks the run lifecycle must call (S5 needs the reduced vertex set
#: and the coloring/backbone context up front, and the completeness
#: flag at the end).
DRIVER_HOOKS = ("hook:on_reduced", "hook:on_context", "hook:on_finish")


@rule(
    "REP007",
    "sanitizer-hook-coverage",
    Severity.ERROR,
    "the engine must call every sanitizer hook the runtime checks "
    "depend on",
)
def check_sanitizer_coverage(src: SourceFile) -> Iterator[Finding]:
    recursion, driver = find_engine_anchors(src)
    for func, required, where in (
        (recursion, RECURSION_HOOKS, "recursion"),
        (driver, DRIVER_HOOKS, "run lifecycle"),
    ):
        if func is None:
            continue
        present = set(hook_labels(func, hook_root="san"))
        missing = [h for h in required if h not in present]
        if missing:
            yield Finding(
                path=src.path,
                line=func.lineno,
                col=func.col_offset,
                rule="REP007",
                severity=Severity.ERROR,
                message=(
                    f"the engine {where} ({func.name}) no longer calls "
                    f"{', '.join(missing)} — every sanitizer hook site "
                    "must stay wired or the runtime checks silently "
                    "weaken on all backends (see docs/analysis.md)"
                ),
                line_text=src.line_text(func.lineno),
            )
