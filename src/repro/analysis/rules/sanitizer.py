"""REP007 — sanitizer hook parity between the enumeration backends.

The runtime sanitizer (:mod:`repro.sanitize`) only sees what the
recursions tell it: each backend calls ``san.on_node`` /
``san.on_emit`` / ``san.on_cover`` from inside its recursion.  A hook
added to one backend but not the other makes the sanitizer silently
weaker on the unhooked backend — exactly the class of drift REP005
guards the *counters* against, recreated one level up.  This rule
reuses the REP005 anchors and fingerprint extractor in a hooks-only
mode: the normalized ``hook:*``/``recurse``/loop sequences of
``PivotEnumerator._pmuce`` and the kernel ``rec`` closure must be
identical.

Like REP005 the rule has project scope and stays silent when either
anchor is missing from the scan set; the self-scan test additionally
asserts that the committed pair carries a non-empty hook fingerprint,
so "no hooks anywhere" cannot pass silently.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.analysis.findings import Finding, Severity
from repro.analysis.fingerprint import (
    first_divergence,
    hook_fingerprint_function,
    labels,
)
from repro.analysis.registry import rule
from repro.analysis.rules.mirror import (
    _DICT_METHOD,
    _KERNEL_BUILDER,
    _KERNEL_FUNC,
    _show,
    find_mirror_anchors,
)
from repro.analysis.source import SourceFile


@rule(
    "REP007",
    "sanitizer-hook-parity",
    Severity.ERROR,
    "the dict and kernel recursions call different sanitizer hook "
    "sequences",
    scope="project",
)
def check_hook_parity(files: List[SourceFile]) -> Iterator[Finding]:
    dict_anchor, kernel_anchor = find_mirror_anchors(files)
    if dict_anchor is None or kernel_anchor is None:
        return
    dict_src, dict_func = dict_anchor
    kernel_src, kernel_func = kernel_anchor
    dict_fp = hook_fingerprint_function(dict_func)
    kernel_fp = hook_fingerprint_function(kernel_func)
    divergence = first_divergence(dict_fp, kernel_fp)
    if divergence is None:
        return
    index, dict_event, kernel_event = divergence
    yield Finding(
        path=kernel_src.path,
        line=kernel_func.lineno,
        col=kernel_func.col_offset,
        rule="REP007",
        severity=Severity.ERROR,
        message=(
            "sanitizer hook drift between "
            f"{dict_src.path}::{_DICT_METHOD} and "
            f"{kernel_src.path}::{_KERNEL_BUILDER}.{_KERNEL_FUNC}: "
            f"hook fingerprints diverge at event {index} "
            f"(dict: {_show(dict_event, dict_src)}, "
            f"kernel: {_show(kernel_event, kernel_src)}); "
            f"dict hooks {labels(dict_fp)} vs "
            f"kernel hooks {labels(kernel_fp)} — every sanitizer hook "
            "site must exist in both backends (see docs/analysis.md)"
        ),
        line_text=kernel_src.line_text(kernel_func.lineno),
    )
