"""Determinism rules.

REP001 — nondeterministic iteration.  Iterating a ``set`` /
``frozenset`` (hash order; varies with ``PYTHONHASHSEED`` for strings)
or a ``Graph.neighbors(...)`` mapping (insertion order; varies with
construction history) is only reproducible when the consumer is
order-insensitive.  The rule flags the three shapes that have actually
produced irreproducible output in this repo's history:

* an ordered comprehension (``[x for x in some_set]``) whose result is
  not immediately re-sorted or re-hashed;
* a ``for`` loop over an unordered iterable whose body feeds an
  *ordered* sink (``.append`` / ``.extend`` / ``.insert`` / ``yield``);
* a ``for`` loop over an unordered iterable containing a ``break`` —
  first-match selection, where *which* element wins depends on hash
  order.

REP002 — module-level randomness.  ``random.random()`` and friends
mutate interpreter-global state; any run-order change reshuffles every
downstream draw.  All randomness must flow through an injected
``random.Random(seed)`` (or numpy ``Generator``) instance.
"""

from __future__ import annotations

import ast
from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.findings import Finding, Severity, flow_fingerprint
from repro.analysis.registry import rule
from repro.analysis.source import SourceFile, call_name

#: Callables whose result does not depend on the iteration order of
#: their argument: feeding them an unordered comprehension is fine.
_ORDER_INSENSITIVE_CONSUMERS = {
    "sorted",
    "set",
    "frozenset",
    "sum",
    "min",
    "max",
    "len",
    "any",
    "all",
    "Counter",
    "dict",
    "update",
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
}

#: Set-valued methods: ``s.union(t)`` is set-typed when ``s`` is.
_SET_METHODS = {
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
    "copy",
}

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)

#: Ordered sinks: calling one of these inside a loop over an unordered
#: iterable bakes hash order into an ordered collection.
_ORDERED_SINKS = {"append", "extend", "insert"}


class _SetTypes:
    """Per-scope best-effort inference of set-typed local names."""

    def __init__(self) -> None:
        self.names: Set[str] = set()
        #: Names of containers whose *items* are sets (``similar[v]``
        #: is unordered when ``similar`` maps to sets).
        self.set_containers: Set[str] = set()

    def observe(self, stmt: ast.stmt) -> None:
        """Update the environment from one assignment statement."""
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            self._observe_one(stmt.targets[0], stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._observe_one(stmt.target, stmt.value)

    def _observe_one(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if self.is_unordered(value, include_neighbors=False):
                self.names.add(target.id)
            else:
                self.names.discard(target.id)
            # dict/list displays and comprehensions with set values
            # make the assigned name a set container.
            if _container_of_sets(value, self):
                self.set_containers.add(target.id)
        elif isinstance(target, ast.Subscript):
            root = target.value
            if isinstance(root, ast.Name) and self.is_unordered(
                value, include_neighbors=False
            ):
                self.set_containers.add(root.id)

    def is_unordered(self, node: ast.AST, include_neighbors: bool = True) -> bool:
        """True when ``node`` evaluates to an unordered iterable."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute):
                if func.attr in _SET_METHODS and self.is_unordered(func.value):
                    return True
                if include_neighbors and func.attr == "neighbors":
                    return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_unordered(node.left) or self.is_unordered(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Subscript):
            root = node.value
            return isinstance(root, ast.Name) and root.id in self.set_containers
        return False


def _container_of_sets(value: ast.AST, env: "_SetTypes") -> bool:
    """Does ``value`` build a dict/list whose items are sets?"""
    if isinstance(value, ast.Dict):
        return any(
            v is not None and env.is_unordered(v, include_neighbors=False)
            for v in value.values
        )
    if isinstance(value, ast.List):
        return any(
            env.is_unordered(v, include_neighbors=False) for v in value.elts
        )
    if isinstance(value, ast.DictComp):
        return env.is_unordered(value.value, include_neighbors=False)
    if isinstance(value, ast.ListComp):
        return env.is_unordered(value.elt, include_neighbors=False)
    return False


_SCOPE_BARRIERS = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.Lambda,
)


def _walk_scope(stmts: List[ast.stmt]) -> Iterator[ast.AST]:
    """Document-order walk that does not enter nested scopes."""

    def visit(node: ast.AST) -> Iterator[ast.AST]:
        yield node
        if isinstance(node, _SCOPE_BARRIERS):
            return
        for child in ast.iter_child_nodes(node):
            yield from visit(child)

    for stmt in stmts:
        yield from visit(stmt)


def _loop_has_ordered_sink(loop: ast.For) -> bool:
    """Does the loop body feed an ordered collection or a yield?"""
    for stmt in loop.body + loop.orelse:
        for node in _walk_scope([stmt]):
            if isinstance(node, ast.Call):
                if call_name(node) in _ORDERED_SINKS:
                    return True
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
    return False


def _loop_has_toplevel_break(loop: ast.For) -> bool:
    """A ``break`` belonging to this loop (not to a nested one)."""

    def scan(stmts: List[ast.stmt]) -> bool:
        for stmt in stmts:
            if isinstance(stmt, ast.Break):
                return True
            if isinstance(stmt, (ast.For, ast.While)):
                continue  # break inside belongs to the inner loop
            for field in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field, None)
                if inner and scan(inner):
                    return True
            handlers = getattr(stmt, "handlers", None)
            if handlers:
                for handler in handlers:
                    if scan(handler.body):
                        return True
        return False

    return scan(loop.body)


def _describe(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expression>"


# ----------------------------------------------------------------------
# REP001 as a flow analysis
# ----------------------------------------------------------------------
# The dataflow state maps ``("s", name)`` (name is set-typed) and
# ``("c", name)`` (name is a container of sets) to the (line, col) of
# the assignment that established the fact.  Strong updates kill the
# "s" entries (``x = []`` after ``x = set()`` un-taints ``x`` exactly
# like the old linear walk did); container facts persist, matching the
# old ``_SetTypes`` semantics.  The join at control-flow merges is a
# union (*may* be unordered), which is what the old document-order
# walk could not see: a set assigned on one branch stays tracked after
# the merge, and order-taint survives loops and try/except paths.
_FlowState = dict


def _set_view(state: _FlowState) -> _SetTypes:
    env = _SetTypes()
    env.names = {name for kind, name in state if kind == "s"}
    env.set_containers = {name for kind, name in state if kind == "c"}
    return env


def _order_transfer(node, state: _FlowState) -> _FlowState:
    stmt = node.stmt
    if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        return state
    env = _set_view(state)
    out = dict(state)
    where = (stmt.lineno, stmt.col_offset)
    targets = (
        stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
    )
    if isinstance(stmt, ast.AnnAssign) and stmt.value is None:
        return state
    value = stmt.value
    for target in targets:
        if isinstance(target, ast.Name):
            if env.is_unordered(value, include_neighbors=False):
                out[("s", target.id)] = where
            else:
                out.pop(("s", target.id), None)
            if _container_of_sets(value, env):
                out[("c", target.id)] = where
        elif isinstance(target, ast.Subscript):
            root = target.value
            if isinstance(root, ast.Name) and env.is_unordered(
                value, include_neighbors=False
            ):
                out[("c", root.id)] = where
    return out if out != state else state


def _order_join(a: _FlowState, b: _FlowState) -> _FlowState:
    if a == b:
        return a
    out = dict(a)
    for key, where in b.items():
        if key not in out or where < out[key]:
            out[key] = where
    return out


def _order_source(
    src: SourceFile, state: _FlowState, iterable: ast.AST
) -> Optional[Dict[str, object]]:
    """The trace step for the assignment that made ``iterable``
    unordered, when it flowed through a tracked name."""
    name = None
    if isinstance(iterable, ast.Name):
        name = ("s", iterable.id)
    elif isinstance(iterable, ast.Subscript) and isinstance(
        iterable.value, ast.Name
    ):
        name = ("c", iterable.value.id)
    where = state.get(name) if name is not None else None
    if where is None:
        return None
    return {
        "line": where[0],
        "col": where[1],
        "text": src.line_text(where[0]),
        "note": "unordered iterable assigned here",
    }


def _with_flow_meta(
    finding: Finding, src: SourceFile, state: _FlowState, iterable: ast.AST
) -> Finding:
    """Attach the dataflow trace + source/sink fingerprint."""
    source = _order_source(src, state, iterable)
    sink = {
        "line": finding.line,
        "col": finding.col,
        "text": finding.line_text,
        "note": "hash order leaks into ordered output",
    }
    steps = (source, sink) if source is not None else (sink,)
    source_text = source["text"] if source is not None else finding.line_text
    return replace(
        finding,
        trace=steps,
        fingerprint=flow_fingerprint(
            finding.rule, str(source_text), finding.line_text
        ),
    )


@rule(
    "REP001",
    "nondeterministic-iteration",
    Severity.ERROR,
    "iteration order of a set/frozenset/neighbors() result leaks into "
    "an ordered output",
)
def check_nondeterministic_iteration(src: SourceFile) -> Iterator[Finding]:
    from repro.analysis.flow import cfgs_for, fixpoint
    from repro.analysis.rules.flow_domains import (
        _scan_roots,
        _walk_expr_scope,
    )

    for _func, cfg in cfgs_for(src).values():
        before = fixpoint(cfg, {}, _order_transfer, _order_join)
        for node in cfg.nodes:
            state = before.get(node.index)
            if state is None or node.stmt is None:
                continue
            env = _set_view(state)
            if node.kind == "iter" and isinstance(node.stmt, ast.For):
                for finding in _check_for_loop(src, node.stmt, env):
                    yield _with_flow_meta(finding, src, state, node.stmt.iter)
                continue
            for root in _scan_roots(node):
                for sub in _walk_expr_scope(root):
                    if isinstance(sub, (ast.ListComp, ast.GeneratorExp)):
                        for finding in _check_comprehension(src, sub, env):
                            yield _with_flow_meta(
                                finding, src, state, sub.generators[0].iter
                            )


def _check_comprehension(
    src: SourceFile, node: ast.AST, env: _SetTypes
) -> Iterator[Finding]:
    first = node.generators[0]
    if not env.is_unordered(first.iter):
        return
    parent = src.parent(node)
    if isinstance(parent, ast.Call) and call_name(parent) in (
        _ORDER_INSENSITIVE_CONSUMERS
    ):
        return
    kind = "generator" if isinstance(node, ast.GeneratorExp) else "list"
    yield Finding(
        path=src.path,
        line=node.lineno,
        col=node.col_offset,
        rule="REP001",
        severity=Severity.ERROR,
        message=(
            f"{kind} comprehension over unordered iterable "
            f"'{_describe(first.iter)}' produces a hash-order-dependent "
            "sequence; wrap the iterable in sorted(...) or feed an "
            "order-insensitive consumer"
        ),
        line_text=src.line_text(node.lineno),
    )


def _check_for_loop(
    src: SourceFile, node: ast.For, env: _SetTypes
) -> Iterator[Finding]:
    if not env.is_unordered(node.iter):
        return
    reasons = []
    if _loop_has_ordered_sink(node):
        reasons.append("feeds an ordered sink (append/extend/insert/yield)")
    if _loop_has_toplevel_break(node):
        reasons.append("selects a first match via break")
    if not reasons:
        return
    yield Finding(
        path=src.path,
        line=node.lineno,
        col=node.col_offset,
        rule="REP001",
        severity=Severity.ERROR,
        message=(
            f"loop over unordered iterable '{_describe(node.iter)}' "
            + " and ".join(reasons)
            + "; iterate sorted(...) instead or justify with a suppression"
        ),
        line_text=src.line_text(node.lineno),
    )


# ----------------------------------------------------------------------
# REP002 — unseeded / module-level randomness
# ----------------------------------------------------------------------
#: Module-level ``random`` functions that read/write the hidden global
#: Mersenne state.
_GLOBAL_RANDOM_FUNCS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "seed",
    "getrandbits",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "triangular",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
    "lognormvariate",
}

#: ``np.random`` members that *construct* an explicit generator and are
#: therefore fine; everything else on ``np.random`` is legacy global
#: state.
_NP_RANDOM_OK = {"Generator", "default_rng", "RandomState", "SeedSequence"}


@rule(
    "REP002",
    "module-level-randomness",
    Severity.ERROR,
    "randomness must come from an injected random.Random / numpy "
    "Generator, never the module-level global state",
)
def check_module_randomness(src: SourceFile) -> Iterator[Finding]:
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            func = node.func
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id == "random"
                and func.attr in _GLOBAL_RANDOM_FUNCS
            ):
                yield _random_finding(
                    src, node, f"random.{func.attr}() uses the interpreter-"
                    "global RNG state"
                )
            elif (
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in ("np", "numpy")
                and func.attr not in _NP_RANDOM_OK
            ):
                yield _random_finding(
                    src, node, f"{base.value.id}.random.{func.attr}() uses "
                    "numpy's legacy global RNG state"
                )
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            bad = sorted(
                alias.name
                for alias in node.names
                if alias.name in _GLOBAL_RANDOM_FUNCS
            )
            if bad:
                yield _random_finding(
                    src,
                    node,
                    "importing module-level RNG functions "
                    f"({', '.join(bad)}) from random",
                )


def _random_finding(src: SourceFile, node: ast.AST, what: str) -> Finding:
    return Finding(
        path=src.path,
        line=node.lineno,
        col=node.col_offset,
        rule="REP002",
        severity=Severity.ERROR,
        message=(
            f"{what}; thread an explicit seeded random.Random / "
            "numpy Generator through the call instead"
        ),
        line_text=src.line_text(node.lineno),
    )
