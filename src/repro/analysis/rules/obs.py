"""REP008 — observer hook parity between the enumeration backends.

The observability layer (:mod:`repro.obs`) only sees what the
enumerators tell it: each backend calls ``obs.on_node`` /
``obs.on_emit`` / ``obs.on_expand`` / ``obs.on_prune`` from inside its
recursion and ``obs.on_gauge`` / ``obs.on_phase`` / ``obs.on_finish``
from its driver.  A hook present in one backend but not the other makes
every metric, per-depth histogram, and trace silently wrong on the
unhooked backend — the REP007 drift class, recreated for the observer.

The rule reuses the REP005/REP007 anchors plus a second anchor pair
for the drivers (the ``run`` methods of the two enumerator classes),
and compares:

* the **recursion** fingerprints (``hook:*``/``recurse``/loop
  sequences, inlined-leaf fold, adjacent dedupe of identical
  discriminator-detailed hooks);
* the **driver** hook streams (bare ``hook:*`` labels in source
  order — gauges and the fixed phase sequence).

Like REP005/REP007 the rule has project scope and stays silent when an
anchor pair is incomplete; the self-scan test asserts the committed
pairs carry non-empty fingerprints.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.fingerprint import (
    driver_obs_fingerprint_function,
    first_divergence,
    labels,
    obs_fingerprint_function,
)
from repro.analysis.registry import rule
from repro.analysis.rules.mirror import (
    _DICT_METHOD,
    _KERNEL_BUILDER,
    _KERNEL_FUNC,
    _show,
    find_mirror_anchors,
)
from repro.analysis.source import SourceFile, walk_functions

#: Driver anchors: the ``run`` method of the class that also defines
#: the matching recursion (``_pmuce`` for the dict backend,
#: ``_build_rec`` for the kernel backend).
_DRIVER_METHOD = "run"


def _class_defines(cls: ast.ClassDef, name: str) -> bool:
    return any(
        isinstance(stmt, ast.FunctionDef) and stmt.name == name
        for stmt in cls.body
    )


def find_driver_anchors(
    files: List[SourceFile],
) -> Tuple[
    Optional[Tuple[SourceFile, ast.AST]],
    Optional[Tuple[SourceFile, ast.AST]],
]:
    """Locate the (dict, kernel) driver ``run`` methods in the scan set."""
    dict_anchor = kernel_anchor = None
    for src in files:
        for func, stack in walk_functions(src.tree):
            if (
                func.name != _DRIVER_METHOD
                or not stack
                or not isinstance(stack[-1], ast.ClassDef)
            ):
                continue
            cls = stack[-1]
            if dict_anchor is None and _class_defines(cls, _DICT_METHOD):
                dict_anchor = (src, func)
            if kernel_anchor is None and _class_defines(
                cls, _KERNEL_BUILDER
            ):
                kernel_anchor = (src, func)
    return dict_anchor, kernel_anchor


@rule(
    "REP008",
    "observer-hook-parity",
    Severity.ERROR,
    "the dict and kernel backends call different observer hook "
    "sequences",
    scope="project",
)
def check_obs_parity(files: List[SourceFile]) -> Iterator[Finding]:
    rec_dict, rec_kernel = find_mirror_anchors(files)
    if rec_dict is not None and rec_kernel is not None:
        dict_src, dict_func = rec_dict
        kernel_src, kernel_func = rec_kernel
        dict_fp = obs_fingerprint_function(dict_func)
        kernel_fp = obs_fingerprint_function(kernel_func)
        divergence = first_divergence(dict_fp, kernel_fp)
        if divergence is not None:
            index, dict_event, kernel_event = divergence
            yield Finding(
                path=kernel_src.path,
                line=kernel_func.lineno,
                col=kernel_func.col_offset,
                rule="REP008",
                severity=Severity.ERROR,
                message=(
                    "observer hook drift between "
                    f"{dict_src.path}::{_DICT_METHOD} and "
                    f"{kernel_src.path}::{_KERNEL_BUILDER}."
                    f"{_KERNEL_FUNC}: "
                    f"hook fingerprints diverge at event {index} "
                    f"(dict: {_show(dict_event, dict_src)}, "
                    f"kernel: {_show(kernel_event, kernel_src)}); "
                    f"dict hooks {labels(dict_fp)} vs "
                    f"kernel hooks {labels(kernel_fp)} — every observer "
                    "hook site must exist in both backends (see "
                    "docs/analysis.md)"
                ),
                line_text=kernel_src.line_text(kernel_func.lineno),
            )
    drv_dict, drv_kernel = find_driver_anchors(files)
    if drv_dict is not None and drv_kernel is not None:
        dict_src, dict_func = drv_dict
        kernel_src, kernel_func = drv_kernel
        dict_fp = driver_obs_fingerprint_function(dict_func)
        kernel_fp = driver_obs_fingerprint_function(kernel_func)
        divergence = first_divergence(dict_fp, kernel_fp)
        if divergence is not None:
            index, dict_event, kernel_event = divergence
            yield Finding(
                path=kernel_src.path,
                line=kernel_func.lineno,
                col=kernel_func.col_offset,
                rule="REP008",
                severity=Severity.ERROR,
                message=(
                    "observer driver-hook drift between "
                    f"{dict_src.path}::{_DRIVER_METHOD} and "
                    f"{kernel_src.path}::{_DRIVER_METHOD}: "
                    f"hook streams diverge at event {index} "
                    f"(dict: {_show(dict_event, dict_src)}, "
                    f"kernel: {_show(kernel_event, kernel_src)}); "
                    f"dict hooks {labels(dict_fp)} vs "
                    f"kernel hooks {labels(kernel_fp)} — the gauge and "
                    "phase hook sequences of the two drivers must be "
                    "identical (see docs/analysis.md)"
                ),
                line_text=kernel_src.line_text(kernel_func.lineno),
            )
