"""REP008 — engine observer-hook coverage.

The observability layer (:mod:`repro.obs`) only sees what the engine
tells it: the single recursion calls ``obs.on_node`` / ``obs.on_emit``
/ ``obs.on_expand`` / ``obs.on_prune`` and the run lifecycle calls
``obs.on_gauge`` / ``obs.on_phase`` / ``obs.on_finish``.  Like REP007
this was a backend-parity rule before the unification; with one
recursion left it becomes coverage: a deleted hook site makes every
metric, per-depth histogram, and trace silently wrong on all backends
at once.

Hook labels carry their string discriminator
(``obs.on_prune("kpivot", ...)`` -> ``hook:on_prune:kpivot``), so the
rule requires each prune kind, each gauge, and each phase span
individually — losing the single ``mpivot`` prune site cannot hide
behind a surviving ``kpivot`` one.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.fingerprint import hook_labels
from repro.analysis.registry import rule
from repro.analysis.rules.conformance import find_engine_anchors
from repro.analysis.source import SourceFile

#: Hooks the recursion must call, one label per discriminator kind.
RECURSION_HOOKS = (
    "hook:on_node",
    "hook:on_emit",
    "hook:on_expand",
    "hook:on_prune:kpivot",
    "hook:on_prune:mpivot",
    "hook:on_prune:size",
)
#: Hooks the run lifecycle must call: both gauges, the fixed phase
#: sequence, the per-seed progress tick, and the final stats handover.
#: ``on_root`` is deliberately a *lifecycle* hook (the seed loop of
#: ``SearchEngine.run``), not a template hook: the folded hooks-off
#: recursion variants stay zero-branch (REP009) while progress/flight
#: telemetry still sees every root.
DRIVER_HOOKS = (
    "hook:on_gauge:vertices_input",
    "hook:on_gauge:vertices_search",
    "hook:on_phase:reduction",
    "hook:on_phase:ordering",
    "hook:on_phase:recursion",
    "hook:on_phase:sanitize",
    "hook:on_root",
    "hook:on_finish",
)


@rule(
    "REP008",
    "observer-hook-coverage",
    Severity.ERROR,
    "the engine must call every observer hook the metrics and traces "
    "depend on",
)
def check_observer_coverage(src: SourceFile) -> Iterator[Finding]:
    recursion, driver = find_engine_anchors(src)
    for func, required, where in (
        (recursion, RECURSION_HOOKS, "recursion"),
        (driver, DRIVER_HOOKS, "run lifecycle"),
    ):
        if func is None:
            continue
        present = set(hook_labels(func, hook_root="obs", detail=True))
        missing = [h for h in required if h not in present]
        if missing:
            yield Finding(
                path=src.path,
                line=func.lineno,
                col=func.col_offset,
                rule="REP008",
                severity=Severity.ERROR,
                message=(
                    f"the engine {where} ({func.name}) no longer calls "
                    f"{', '.join(missing)} — every observer hook site "
                    "must stay wired or metrics and traces go silently "
                    "wrong on all backends (see docs/analysis.md)"
                ),
                line_text=src.line_text(func.lineno),
            )
