"""REP006 — cross-process state mutation in parallel worker paths.

``repro.core.partition.enumerate_parallel`` ships work to a spawn
``multiprocessing`` pool.  Anything a worker function writes to shared-
looking state — module globals, attributes of the objects it received
in its pickled arguments, ``os.environ`` — is silently confined to the
worker process: the parent never sees it, and whether *tests* see it
depends on which backend/platform ran the job.  The rule finds worker
entry points syntactically (functions dispatched through ``Pool.map``
and friends or ``Process(target=...)``) and flags mutation of
non-local state inside them.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import rule
from repro.analysis.source import SourceFile, root_name

#: Pool methods whose first positional argument is a worker function.
_DISPATCH_METHODS = {
    "map",
    "map_async",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
    "apply",
    "apply_async",
}


def _worker_names(tree: ast.Module) -> Set[str]:
    """Names of functions dispatched to another process in this module."""
    workers: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _DISPATCH_METHODS
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            workers.add(node.args[0].id)
        if isinstance(func, ast.Name) and func.id in ("Process", "Thread"):
            for kw in node.keywords:
                if kw.arg == "target" and isinstance(kw.value, ast.Name):
                    workers.add(kw.value.id)
    return workers


def _function_defs(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    """Top-level function definitions by name."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


@rule(
    "REP006",
    "cross-process-mutation",
    Severity.ERROR,
    "multiprocessing workers mutating globals, self, or argument "
    "attributes — the writes never reach the parent process",
)
def check_cross_process_mutation(src: SourceFile) -> Iterator[Finding]:
    workers = _worker_names(src.tree)
    if not workers:
        return
    defs = _function_defs(src.tree)
    for name in sorted(workers):
        func = defs.get(name)
        if func is None:
            continue
        yield from _check_worker(src, func)


def _check_worker(
    src: SourceFile, func: ast.FunctionDef
) -> Iterator[Finding]:
    params = {
        arg.arg
        for arg in (
            func.args.posonlyargs + func.args.args + func.args.kwonlyargs
        )
    }
    #: Names rebound from the arguments (tuple-unpacked jobs); mutating
    #: their attributes is equally lost on return.
    arg_aliases = set(params)
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            yield _mutation_finding(
                src,
                node,
                func.name,
                f"declares global {', '.join(node.names)}",
            )
        elif isinstance(node, ast.Assign):
            # Track job unpacking: x, y = job  /  x = job[0]
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], (ast.Tuple, ast.Name))
                and root_name(node.value) in arg_aliases
            ):
                target = node.targets[0]
                names = (
                    [target]
                    if isinstance(target, ast.Name)
                    else list(target.elts)
                )
                for elt in names:
                    if isinstance(elt, ast.Name):
                        arg_aliases.add(elt.id)
                continue
            yield from _attribute_writes(
                src, func, node.targets, arg_aliases
            )
        elif isinstance(node, ast.AugAssign):
            yield from _attribute_writes(src, func, [node.target], arg_aliases)
    return


def _attribute_writes(
    src: SourceFile,
    func: ast.FunctionDef,
    targets: List[ast.AST],
    arg_aliases: Set[str],
) -> Iterator[Finding]:
    for target in targets:
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            continue
        base = target.value
        root = root_name(base)
        if root == "self" and isinstance(target, ast.Attribute):
            yield _mutation_finding(
                src, target, func.name, f"assigns self.{target.attr}"
            )
        elif (
            isinstance(target, ast.Attribute)
            and root in arg_aliases
            and isinstance(base, ast.Name)
        ):
            yield _mutation_finding(
                src,
                target,
                func.name,
                f"mutates attribute '{target.attr}' of argument "
                f"'{root}' (a pickled copy)",
            )
        elif root == "environ" or (
            isinstance(base, ast.Attribute) and base.attr == "environ"
        ):
            yield _mutation_finding(
                src, target, func.name, "writes os.environ"
            )


def _mutation_finding(
    src: SourceFile, node: ast.AST, worker: str, what: str
) -> Finding:
    return Finding(
        path=src.path,
        line=node.lineno,
        col=node.col_offset,
        rule="REP006",
        severity=Severity.ERROR,
        message=(
            f"worker function '{worker}' {what}; workers run in spawned "
            "processes, so the mutation never reaches the parent — "
            "return the data instead"
        ),
        line_text=src.line_text(node.lineno),
    )
