"""REP006 — cross-process state mutation in parallel worker paths.

``repro.core.partition.enumerate_parallel`` ships work to a spawn
``multiprocessing`` pool.  Anything a worker function writes to shared-
looking state — module globals, attributes of the objects it received
in its pickled arguments, ``os.environ`` — is silently confined to the
worker process: the parent never sees it, and whether *tests* see it
depends on which backend/platform ran the job.

The rule is grounded on the interprocedural escape summaries of
:mod:`repro.analysis.semantics.escape`: every parameter of a
dispatched worker enters the flow analysis tainted as parent-owned,
and a write whose base still carries the taint at the store is a
cross-process mutation.  A base that was re-created locally
(``stats = Stats()``) sheds the taint through the flow core's strong
update, so workers that build and return their own results stay
silent — the old syntactic alias walk could not distinguish the two.
Findings now carry an argument-to-write trace and a structural
fingerprint.  REP014 reports the same summaries at the dispatch
boundary; this rule keeps the per-write findings inside the worker.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List

from repro.analysis.findings import Finding, Severity, flow_fingerprint
from repro.analysis.registry import rule
from repro.analysis.source import SourceFile


def _function_defs(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    """Top-level function definitions by name."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


@rule(
    "REP006",
    "cross-process-mutation",
    Severity.ERROR,
    "multiprocessing workers mutating globals, self, or argument "
    "attributes — the writes never reach the parent process",
)
def check_cross_process_mutation(src: SourceFile) -> Iterator[Finding]:
    from repro.analysis.semantics.escape import (
        worker_mutations,
        worker_names,
    )

    workers = worker_names(src.tree)
    if not workers:
        return
    defs = _function_defs(src.tree)
    for name in sorted(workers):
        func = defs.get(name)
        if func is None:
            continue
        for mutation in worker_mutations(src, func):
            yield _mutation_finding(src, name, mutation)


def _mutation_finding(
    src: SourceFile, worker: str, mutation
) -> Finding:
    node = mutation.node
    sink_text = src.line_text(node.lineno)
    trace: List[Dict[str, object]] = []
    source_text = sink_text
    if mutation.origin is not None:
        trace.extend(mutation.origin.steps())
        source_text = mutation.origin.root().text
    trace.append(
        {
            "line": node.lineno,
            "col": node.col_offset,
            "text": sink_text,
            "note": "the write is confined to the worker process",
        }
    )
    return Finding(
        path=src.path,
        line=node.lineno,
        col=node.col_offset,
        rule="REP006",
        severity=Severity.ERROR,
        message=(
            f"worker function '{worker}' {mutation.what}; workers run "
            "in spawned processes, so the mutation never reaches the "
            "parent — return the data instead"
        ),
        line_text=sink_text,
        trace=tuple(trace),
        fingerprint=flow_fingerprint("REP006", source_text, sink_text),
    )
