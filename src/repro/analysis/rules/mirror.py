"""REP005 — dict/kernel mirror drift.

PR 1 introduced ``repro.kernel.enumerate.KernelEnumerator`` as a
statement-for-statement mirror of
``repro.core.pmuc.PivotEnumerator._pmuce``; the runtime parity tests
(``tests/test_kernel_parity.py``) can only catch a divergence that
changes the output *on the inputs they run*.  This rule checks the
contract structurally on every lint run: the normalized control-flow
fingerprints (see :mod:`repro.analysis.fingerprint`) of the two
recursions must be identical.

The rule has project scope — it needs both backends in the scanned
set.  When only one anchor is present (e.g. a single-file scan) the
rule stays silent; the self-scan test asserts that a full ``src/repro``
scan finds both.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.fingerprint import (
    Event,
    fingerprint_function,
    first_divergence,
    labels,
)
from repro.analysis.registry import rule
from repro.analysis.source import SourceFile, walk_functions

#: The dict-backend anchor: a method named ``_pmuce`` defined directly
#: inside a class.
_DICT_METHOD = "_pmuce"
#: The kernel-backend anchor: a function named ``rec`` nested inside a
#: function named ``_build_rec``.
_KERNEL_FUNC = "rec"
_KERNEL_BUILDER = "_build_rec"


def find_mirror_anchors(
    files: List[SourceFile],
) -> Tuple[Optional[Tuple[SourceFile, ast.AST]], Optional[Tuple[SourceFile, ast.AST]]]:
    """Locate the (dict, kernel) recursion definitions in the scan set.

    Files are searched in scan order and the first match on each side
    wins, so a project containing exactly one backend pair — the normal
    case — is unambiguous.
    """
    dict_anchor = kernel_anchor = None
    for src in files:
        for func, stack in walk_functions(src.tree):
            if (
                dict_anchor is None
                and func.name == _DICT_METHOD
                and stack
                and isinstance(stack[-1], ast.ClassDef)
            ):
                dict_anchor = (src, func)
            if (
                kernel_anchor is None
                and func.name == _KERNEL_FUNC
                and stack
                and isinstance(stack[-1], ast.FunctionDef)
                and stack[-1].name == _KERNEL_BUILDER
            ):
                kernel_anchor = (src, func)
    return dict_anchor, kernel_anchor


@rule(
    "REP005",
    "mirror-drift",
    Severity.ERROR,
    "the dict and kernel enumeration recursions have diverging "
    "control-flow fingerprints",
    scope="project",
)
def check_mirror_drift(files: List[SourceFile]) -> Iterator[Finding]:
    dict_anchor, kernel_anchor = find_mirror_anchors(files)
    if dict_anchor is None or kernel_anchor is None:
        return
    dict_src, dict_func = dict_anchor
    kernel_src, kernel_func = kernel_anchor
    dict_fp = fingerprint_function(dict_func)
    kernel_fp = fingerprint_function(kernel_func)
    divergence = first_divergence(dict_fp, kernel_fp)
    if divergence is None:
        return
    index, dict_event, kernel_event = divergence
    yield Finding(
        path=kernel_src.path,
        line=kernel_func.lineno,
        col=kernel_func.col_offset,
        rule="REP005",
        severity=Severity.ERROR,
        message=(
            "mirror drift between "
            f"{dict_src.path}::{_DICT_METHOD} and "
            f"{kernel_src.path}::{_KERNEL_BUILDER}.{_KERNEL_FUNC}: "
            f"fingerprints diverge at event {index} "
            f"(dict: {_show(dict_event, dict_src)}, "
            f"kernel: {_show(kernel_event, kernel_src)}); "
            f"dict fingerprint {labels(dict_fp)} vs "
            f"kernel fingerprint {labels(kernel_fp)} — the two backends "
            "must mirror each other statement for statement (see "
            "docs/analysis.md)"
        ),
        line_text=kernel_src.line_text(kernel_func.lineno),
    )


def _show(event: Optional[Event], src: SourceFile) -> str:
    if event is None:
        return "<end of fingerprint>"
    return f"{event.label} at line {event.line} ({src.line_text(event.line)!r})"
