"""The repro-lint rule registry.

Rules self-register at import time through the :func:`rule` decorator;
the runner asks the registry for the active set.  Two rule scopes
exist:

* ``file`` — the checker is called once per parsed
  :class:`~repro.analysis.source.SourceFile` and diagnoses that file
  in isolation;
* ``project`` — the checker is called once with *all* parsed files and
  may relate declarations across files (the mirror-parity rule REP005
  needs both backends at once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.source import SourceFile

FileChecker = Callable[[SourceFile], Iterable[Finding]]
ProjectChecker = Callable[[List[SourceFile]], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """Metadata plus checker for one registered rule."""

    id: str
    name: str
    severity: Severity
    scope: str  # "file" | "project"
    description: str
    checker: Callable

    def run(self, target) -> List[Finding]:
        """Run the checker and materialize its findings."""
        return list(self.checker(target))


_REGISTRY: Dict[str, Rule] = {}


def rule(
    id: str,
    name: str,
    severity: Severity,
    description: str,
    scope: str = "file",
):
    """Class/function decorator registering a checker under ``id``."""
    if scope not in ("file", "project"):
        raise ValueError(f"unknown rule scope {scope!r}")

    def decorate(checker: Callable) -> Callable:
        if id in _REGISTRY:
            raise ValueError(f"rule {id} registered twice")
        _REGISTRY[id] = Rule(
            id=id,
            name=name,
            severity=severity,
            scope=scope,
            description=description,
            checker=checker,
        )
        return checker

    return decorate


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id (imports rule modules)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Optional[Rule]:
    """Look up one rule by id (None when unknown)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return _REGISTRY.get(rule_id)
