"""Hook-call extraction for the engine conformance rules.

With the dict and kernel recursions unified behind the single search
engine (:mod:`repro.engine.driver`), there are no mirrored recursions
left to fingerprint against each other; what remains statically
checkable is *coverage* — the engine's one recursion and one run
lifecycle must call every sanitizer/observer hook the runtime layers
rely on.  This module extracts the ``hook:*`` call labels of a function
for the REP007/REP008 coverage rules.

A hook call is an attribute call whose receiver is the conventional
local name of the runtime object (``san`` for the sanitizer, ``obs``
for the observer — the engine binds the objects to exactly those names
so the hook stream is statically visible) and whose method name starts
with ``on_``.  With ``detail=True`` a hook call whose first argument is
a string literal carries it in the label
(``obs.on_prune("kpivot", ...)`` -> ``hook:on_prune:kpivot``), so the
coverage requirements can name each discriminator kind separately.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List

from repro.analysis.source import root_name, terminal_name


@dataclass(frozen=True)
class Event:
    """One hook call with its source line (for diagnostics)."""

    label: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.label}@{self.line}"


def _walk_own_scope(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func``'s body, skipping nested function/class scopes.

    Hook calls inside a nested definition belong to that definition's
    own anchor (the engine's recursion is a closure nested in
    ``_search_template`` and is extracted separately), so counting
    them for the enclosing function would double-book coverage.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def hook_events(
    func: ast.AST, hook_root: str = "san", detail: bool = False
) -> List[Event]:
    """Every ``hook_root.on_*(...)`` call in ``func``'s own scope."""
    events: List[Event] = []
    for node in _walk_own_scope(func):
        if not isinstance(node, ast.Call):
            continue
        callee = terminal_name(node.func)
        if (
            not callee
            or not callee.startswith("on_")
            or not isinstance(node.func, ast.Attribute)
            or root_name(node.func) != hook_root
        ):
            continue
        label = "hook:" + callee
        if detail and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                label += ":" + first.value
        events.append(Event(label, node.lineno))
    events.sort(key=lambda e: e.line)
    return events


def hook_labels(
    func: ast.AST, hook_root: str = "san", detail: bool = False
) -> List[str]:
    """Just the hook labels of ``func`` (what coverage checks compare)."""
    return [e.label for e in hook_events(func, hook_root, detail)]
