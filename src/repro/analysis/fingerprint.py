"""Normalized control-flow fingerprints for the dict/kernel mirror.

The dict backend (:meth:`repro.core.pmuc.PivotEnumerator._pmuce`) and
the kernel backend (the ``rec`` closure built by
:meth:`repro.kernel.enumerate.KernelEnumerator._build_rec`) promise
byte-identical output and identical ``SearchStats`` counters.  That
contract is invisible to ordinary tests until a divergence produces a
wrong answer on some input; this module makes it checkable statically.

A fingerprint is the sequence of *semantic events* the recursion
performs, in linearized control-flow order:

========== =========================================================
event      detected from
========== =========================================================
call       ``... calls += 1``
depth      ``observe_depth(...)`` call or a store to ``max_depth``
emit       ``... outputs += 1`` or a call to ``_emit``/``emit``
kpivot-stop ``... kpivot_stops += 1``
mpivot-skip ``... mpivot_skips += 1`` (or ``+= len(...)``)
expand     ``... expansions += 1``
size-prune ``... size_prunes += 1``
pivot      an assignment to a name ``pivot``
acc        a probability-accumulation statement: ``X = param OP Y``
           where ``OP`` is ``*`` (probability domain) or ``+`` (log
           domain), ``param`` is a parameter of the fingerprinted
           function and ``Y`` is not an integer literal — i.e. the
           threaded clique probability update ``q_new = q * r_u`` /
           ``nlq_new = nlq + sv[u]``
loop[ ]loop boundaries of loops that contain a recursion or counter
           event (bookkeeping-only loops such as byte scans, color
           counting or ``sv`` restores stay invisible)
recurse    a call to the fingerprinted function itself
========== =========================================================

Branches are linearized (``if`` body then ``else``); loops that carry
no events vanish.  Two normalization passes absorb the documented,
*intentional* asymmetries between the backends:

1. **inlined-leaf fold** — inside a loop, a run of
   ``call``/``depth``/``emit`` directly after ``recurse`` is folded
   into the ``recurse`` (the kernel inlines the no-candidate leaf call
   for speed; its counter signature is exactly that run);
2. **adjacent dedupe** — consecutive identical events collapse (the
   kernel splits one logical check across specialised branches, e.g.
   the length pre-check and the color-count check of the K-pivot
   bound, or the three ways of assigning ``pivot``).

After normalization the two fingerprints must be *identical*; any
difference is REP005 mirror drift.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.source import root_name, terminal_name

#: counter attribute/name -> event label
_COUNTER_EVENTS = {
    "calls": "call",
    "expansions": "expand",
    "outputs": "emit",
    "mpivot_skips": "mpivot-skip",
    "kpivot_stops": "kpivot-stop",
    "size_prunes": "size-prune",
}

_LOOP_OPEN = "loop["
_LOOP_CLOSE = "]loop"


@dataclass(frozen=True)
class Event:
    """One fingerprint event with its source line (for diagnostics)."""

    label: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.label}@{self.line}"


class _Extractor:
    """Linearizes one function body into the raw event sequence.

    With ``hooks_only=True`` the extractor runs in the REP007/REP008
    mode: the only events are ``recurse``, loop boundaries, and
    ``hook:on_*`` for calls to runtime hooks — attribute calls whose
    receiver is the conventional local name ``hook_root`` (``"san"``
    for the sanitizer, ``"obs"`` for the observer; both backends bind
    the objects to those names precisely so the hook streams are
    statically comparable).  With ``detail=True`` a hook call whose
    first argument is a string literal carries it in the label
    (``obs.on_prune("kpivot", ...)`` -> ``hook:on_prune:kpivot``), so
    deduplication of the kernel's split checks cannot hide a hook with
    a *different* discriminator.
    """

    def __init__(
        self,
        func: ast.AST,
        hooks_only: bool = False,
        hook_root: str = "san",
        detail: bool = False,
    ):
        self.func = func
        self.name = func.name
        self.hooks_only = hooks_only
        self.hook_root = hook_root
        self.detail = detail
        self.params = {
            arg.arg
            for arg in (
                func.args.posonlyargs + func.args.args + func.args.kwonlyargs
            )
        }

    def extract(self) -> List[Event]:
        return self._visit_block(self.func.body)

    # ------------------------------------------------------------------
    def _visit_block(self, stmts) -> List[Event]:
        events: List[Event] = []
        for stmt in stmts:
            events.extend(self._visit_stmt(stmt))
        return events

    def _visit_stmt(self, stmt: ast.stmt) -> List[Event]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return []  # nested scopes are fingerprinted separately
        if isinstance(stmt, ast.AugAssign):
            return self._counter_event(stmt)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return self._assign_events(stmt)
        if isinstance(stmt, ast.Expr):
            return self._call_events(stmt.value)
        if isinstance(stmt, ast.If):
            return self._visit_block(stmt.body) + self._visit_block(stmt.orelse)
        if isinstance(stmt, (ast.While, ast.For)):
            body = self._visit_block(stmt.body) + self._visit_block(stmt.orelse)
            if any(e.label != _LOOP_OPEN and e.label != _LOOP_CLOSE for e in body):
                return (
                    [Event(_LOOP_OPEN, stmt.lineno)]
                    + body
                    + [Event(_LOOP_CLOSE, stmt.lineno)]
                )
            return body
        if isinstance(stmt, ast.Try):
            events = self._visit_block(stmt.body)
            for handler in stmt.handlers:
                events.extend(self._visit_block(handler.body))
            events.extend(self._visit_block(stmt.orelse))
            events.extend(self._visit_block(stmt.finalbody))
            return events
        if isinstance(stmt, ast.With):
            return self._visit_block(stmt.body)
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            return self._call_events(stmt.value)
        return []

    # ------------------------------------------------------------------
    def _counter_event(self, stmt: ast.AugAssign) -> List[Event]:
        if self.hooks_only or not isinstance(stmt.op, ast.Add):
            return []
        name = terminal_name(stmt.target)
        label = _COUNTER_EVENTS.get(name or "")
        if label is None:
            return []
        return [Event(label, stmt.lineno)]

    def _assign_events(self, stmt) -> List[Event]:
        events: List[Event] = []
        value = stmt.value
        if self.hooks_only:
            return self._call_events(value) if value is not None else []
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        names = {terminal_name(t) for t in targets}
        if "max_depth" in names:
            events.append(Event("depth", stmt.lineno))
        if "pivot" in names:
            events.append(Event("pivot", stmt.lineno))
        if value is not None:
            if self._is_accumulation(value):
                events.append(Event("acc", stmt.lineno))
            events.extend(self._call_events(value))
        return events

    def _is_accumulation(self, value: ast.AST) -> bool:
        if not isinstance(value, ast.BinOp):
            return False
        if not isinstance(value.op, (ast.Mult, ast.Add)):
            return False
        param_side = other = None
        for side, partner in (
            (value.left, value.right),
            (value.right, value.left),
        ):
            if isinstance(side, ast.Name) and side.id in self.params:
                param_side, other = side, partner
                break
        if param_side is None:
            return False
        return not (
            isinstance(other, ast.Constant) and isinstance(other.value, int)
        )

    def _call_events(self, expr: ast.AST) -> List[Event]:
        events: List[Event] = []
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            callee = terminal_name(node.func)
            if self.hooks_only:
                if callee == self.name:
                    events.append(Event("recurse", node.lineno))
                elif (
                    callee
                    and callee.startswith("on_")
                    and isinstance(node.func, ast.Attribute)
                    and root_name(node.func) == self.hook_root
                ):
                    label = "hook:" + callee
                    if self.detail and node.args:
                        first = node.args[0]
                        if isinstance(first, ast.Constant) and isinstance(
                            first.value, str
                        ):
                            label += ":" + first.value
                    events.append(Event(label, node.lineno))
                continue
            if callee == self.name:
                events.append(Event("recurse", node.lineno))
            elif callee == "observe_depth":
                events.append(Event("depth", node.lineno))
            elif callee in ("_emit", "emit"):
                events.append(Event("emit", node.lineno))
        return events


def _normalize(events: List[Event]) -> List[Event]:
    """Apply the inlined-leaf fold, then adjacent dedupe."""
    folded: List[Event] = []
    loop_depth = 0
    folding = False
    for event in events:
        if event.label == _LOOP_OPEN:
            loop_depth += 1
            folding = False
        elif event.label == _LOOP_CLOSE:
            loop_depth -= 1
            folding = False
        if folding and event.label in ("call", "depth", "emit"):
            continue  # part of an inlined leaf call's counter signature
        folding = loop_depth > 0 and event.label == "recurse"
        folded.append(event)
    deduped: List[Event] = []
    for event in folded:
        if deduped and deduped[-1].label == event.label:
            continue
        deduped.append(event)
    return deduped


#: The hook signature of the kernel's inlined no-candidate leaf: the
#: only hook labels the inlined-leaf fold may absorb.  Restricting the
#: fold keeps a hook that legitimately follows the recursive call (the
#: dict backend's size-prune ``on_prune`` does) out of the fold, where
#: its deletion would otherwise be invisible.
_LEAF_HOOKS = ("hook:on_node", "hook:on_emit")


def _normalize_hooks(
    events: List[Event], dedupe: bool = False
) -> List[Event]:
    """Inlined-leaf fold (and optional dedupe) for hook fingerprints.

    The kernel's inlined no-candidate leaf places its ``on_node`` /
    ``on_emit`` hooks directly after the in-loop ``recurse`` (the dict
    backend reaches the same hooks *through* the recursive call), so a
    run of those two labels immediately following ``recurse`` inside a
    loop folds into the ``recurse`` — the exact analogue of REP005's
    counter fold.

    REP007 (``dedupe=False``) applies no adjacent dedupe: two
    consecutive identical sanitizer hooks would be a real difference.
    REP008 (``dedupe=True``) collapses *adjacent identical* ``hook:*``
    labels, because the kernel splits one logical check across
    specialized branches (the K-pivot length pre-check and color
    count) and hooks both; the detail suffix keeps hooks with
    different discriminators from collapsing into each other.
    """
    folded: List[Event] = []
    loop_depth = 0
    folding = False
    for event in events:
        if event.label == _LOOP_OPEN:
            loop_depth += 1
            folding = False
        elif event.label == _LOOP_CLOSE:
            loop_depth -= 1
            folding = False
        if folding and event.label in _LEAF_HOOKS:
            continue  # hooks of the kernel's inlined leaf call
        folding = loop_depth > 0 and event.label == "recurse"
        folded.append(event)
    if not dedupe:
        return folded
    deduped: List[Event] = []
    for event in folded:
        if (
            deduped
            and event.label.startswith("hook:")
            and deduped[-1].label == event.label
        ):
            continue
        deduped.append(event)
    return deduped


def fingerprint_function(func: ast.AST) -> List[Event]:
    """The normalized event fingerprint of one function definition."""
    return _normalize(_Extractor(func).extract())


def hook_fingerprint_function(func: ast.AST) -> List[Event]:
    """The normalized sanitizer-hook fingerprint (REP007 mode)."""
    return _normalize_hooks(_Extractor(func, hooks_only=True).extract())


def obs_fingerprint_function(func: ast.AST) -> List[Event]:
    """The normalized observer-hook fingerprint (REP008 mode).

    Like :func:`hook_fingerprint_function` but for the ``obs`` hook
    root, with discriminator-detailed labels and adjacent dedupe of
    identical hooks (the kernel hooks both halves of its split
    K-pivot check).
    """
    return _normalize_hooks(
        _Extractor(
            func, hooks_only=True, hook_root="obs", detail=True
        ).extract(),
        dedupe=True,
    )


def driver_obs_fingerprint_function(func: ast.AST) -> List[Event]:
    """Observer hooks of a non-recursive driver, in source order.

    Drivers (the backends' ``run`` methods) are compared on their bare
    ``hook:*`` stream: loop markers and recursion-like calls (e.g. the
    dict backend delegating to ``kernel.run``, whose terminal name
    collides with the fingerprinted function's own) carry no signal at
    this level and are dropped before comparison.
    """
    events = _Extractor(
        func, hooks_only=True, hook_root="obs", detail=True
    ).extract()
    hooks = [e for e in events if e.label.startswith("hook:")]
    deduped: List[Event] = []
    for event in hooks:
        if deduped and deduped[-1].label == event.label:
            continue
        deduped.append(event)
    return deduped


def labels(events: List[Event]) -> List[str]:
    """Just the event labels (what the parity comparison compares)."""
    return [e.label for e in events]


def first_divergence(
    a: List[Event], b: List[Event]
) -> Optional[Tuple[int, Optional[Event], Optional[Event]]]:
    """Index and events at the first position where ``a``/``b`` differ."""
    for i in range(max(len(a), len(b))):
        ea = a[i] if i < len(a) else None
        eb = b[i] if i < len(b) else None
        if ea is None or eb is None or ea.label != eb.label:
            return i, ea, eb
    return None
