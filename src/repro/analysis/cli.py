"""Command-line interface: ``python -m repro.analysis [options] paths…``.

Exit codes: 0 — clean (modulo suppressions and baseline); 1 — new
findings; 2 — usage or configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.cache import DEFAULT_CACHE_DIR, FindingsCache
from repro.analysis.registry import all_rules
from repro.analysis.runner import AnalysisReport, analyze

#: Sentinel for "--baseline given without a path" (use the default).
_AUTO = "<auto>"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro-lint: AST-based determinism / numeric-safety / "
            "engine-conformance analysis for the repro codebase"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github", "sarif"),
        default="text",
        help=(
            "output format (default: text); 'github' emits GitHub "
            "Actions ::error annotations so findings surface inline "
            "on pull requests; 'sarif' emits a SARIF 2.1.0 document "
            "for code-scanning upload"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for file-scope rules (default: 1); "
            "suppressions, baseline and cross-file rules still run "
            "in-process"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-file result cache for this run",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=(
            "per-file result cache location (default: "
            f"{DEFAULT_CACHE_DIR}); keyed on source hash + rule-set "
            "version, so stale reuse is structurally impossible"
        ),
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=_AUTO,
        default=_AUTO,
        metavar="PATH",
        help=(
            "baseline file of grandfathered findings; without a PATH "
            "(and by default) the nearest repro-lint.baseline.json "
            "above the working directory is used when present"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding as new)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help=(
            "write the current findings to PATH as a baseline skeleton "
            "(justifications must then be filled in by hand) and exit 0"
        ),
    )
    parser.add_argument(
        "--prune-stale",
        action="store_true",
        help=(
            "rewrite the baseline file without its stale entries "
            "(entries matching no current finding); requires a "
            "baseline file"
        ),
    )
    parser.add_argument(
        "--fail-on-stale",
        action="store_true",
        help=(
            "exit 1 when the baseline carries stale entries (entries "
            "matching no current finding); CI uses this so retired "
            "findings cannot linger grandfathered forever"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _load_baseline(args):
    """The (baseline, source path) pair selected by the arguments."""
    if args.no_baseline:
        return None, ""
    if args.baseline == _AUTO:
        found = Baseline.find_default()
        return (Baseline.load(found), found) if found else (None, "")
    return Baseline.load(args.baseline), args.baseline


def _summary_line(report: AnalysisReport) -> str:
    stale = len(report.unused_baseline)
    stale_note = (
        ""
        if not stale
        else (
            f"; {stale} stale baseline "
            f"entr{'y' if stale == 1 else 'ies'} (--prune-stale drops "
            "them)"
        )
    )
    cache_note = ""
    if report.cache_hits or report.cache_misses:
        cache_note = (
            f" [cache: {report.cache_hits} hit, "
            f"{report.cache_misses} miss]"
        )
    return (
        f"{len(report.findings)} finding(s) "
        f"({len(report.grandfathered)} baselined, "
        f"{len(report.suppressed)} suppressed) "
        f"in {report.files_scanned} file(s)" + cache_note + stale_note
    )


def _print_text(report: AnalysisReport, out) -> None:
    for finding in report.findings:
        print(finding.format_text(), file=out)
    for entry in report.unused_baseline:
        print(
            f"note: unused baseline entry {entry.rule} for {entry.path} "
            f"({entry.line_text!r}) — the finding is gone; drop the entry",
            file=out,
        )
    print(_summary_line(report), file=out)


def _gh_escape_data(value: str) -> str:
    """Escape a GitHub Actions workflow-command message payload."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _gh_escape_prop(value: str) -> str:
    """Escape a GitHub Actions workflow-command property value."""
    return (
        _gh_escape_data(value).replace(":", "%3A").replace(",", "%2C")
    )


def _print_github(report: AnalysisReport, out) -> None:
    """GitHub Actions annotations: findings inline on the PR diff."""
    for finding in report.findings:
        print(
            f"::error file={_gh_escape_prop(finding.path)},"
            f"line={finding.line},col={finding.col + 1},"
            f"title={_gh_escape_prop(finding.rule)}::"
            f"{_gh_escape_data(finding.message)}",
            file=out,
        )
    for entry in report.unused_baseline:
        print(
            f"::notice file={_gh_escape_prop(entry.path)},"
            f"line={entry.line},"
            f"title={_gh_escape_prop(entry.rule + ' stale baseline')}::"
            + _gh_escape_data(
                f"stale baseline entry ({entry.line_text!r}) — the "
                "finding is gone; run --prune-stale"
            ),
            file=out,
        )
    print(_summary_line(report), file=out)


def _print_json(report: AnalysisReport, out) -> None:
    payload = {
        "findings": [f.as_dict() for f in report.findings],
        "grandfathered": [f.as_dict() for f in report.grandfathered],
        "suppressed": [f.as_dict() for f in report.suppressed],
        "unused_baseline": [
            {
                "rule": e.rule,
                "path": e.path,
                "line_text": e.line_text,
                "justification": e.justification,
            }
            for e in report.unused_baseline
        ],
        "files_scanned": report.files_scanned,
        "ok": report.ok,
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(
                f"{rule.id}  {rule.severity}  [{rule.scope}]  "
                f"{rule.name}: {rule.description}",
                file=out,
            )
        return 0
    try:
        baseline, baseline_path = _load_baseline(args)
    except (BaselineError, OSError) as exc:
        print(f"error: cannot load baseline: {exc}", file=sys.stderr)
        return 2
    if args.prune_stale and baseline is None:
        print(
            "error: --prune-stale requires a baseline file "
            "(none found or --no-baseline given)",
            file=sys.stderr,
        )
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    cache = None if args.no_cache else FindingsCache(args.cache_dir)
    try:
        report = analyze(
            args.paths, baseline=baseline, cache=cache, jobs=args.jobs
        )
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.prune_stale:
        stale = set(report.unused_baseline)
        kept = [e for e in baseline.entries if e not in stale]
        with open(baseline_path, "w", encoding="utf-8") as handle:
            handle.write(Baseline.render_entries(kept))
        print(
            f"pruned {len(stale)} stale entr"
            f"{'y' if len(stale) == 1 else 'ies'} from {baseline_path} "
            f"({len(kept)} kept)",
            file=out,
        )
        # The rewritten file no longer has stale entries; report the
        # state the user now has on disk.
        report = AnalysisReport(
            findings=report.findings,
            suppressed=report.suppressed,
            grandfathered=report.grandfathered,
            unused_baseline=[],
            files_scanned=report.files_scanned,
        )
    if args.write_baseline:
        # Keep grandfathered findings in the regenerated file — with
        # their existing justifications — or the documented regeneration
        # workflow would silently drop every committed entry.
        kept = report.findings + report.grandfathered
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            handle.write(
                Baseline.render(
                    kept,
                    justification="TODO: justify or fix",
                    baseline=baseline,
                )
            )
        print(
            f"wrote {len(kept)} finding(s) to "
            f"{args.write_baseline}",
            file=out,
        )
        return 0
    if args.format == "json":
        _print_json(report, out)
    elif args.format == "github":
        _print_github(report, out)
    elif args.format == "sarif":
        from repro.analysis.sarif import render_sarif

        out.write(render_sarif(report))
    else:
        _print_text(report, out)
    if not report.ok:
        return 1
    if args.fail_on_stale and report.unused_baseline:
        print(
            "error: baseline has stale entries (--fail-on-stale); run "
            "--prune-stale and commit the result",
            file=sys.stderr,
        )
        return 1
    return 0
