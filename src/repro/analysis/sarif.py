"""SARIF 2.1.0 rendering for repro-lint reports.

SARIF (Static Analysis Results Interchange Format) is the exchange
format GitHub code scanning ingests; ``--format=sarif`` lets CI upload
findings so they surface in the Security tab and as PR annotations
without bespoke glue.  Only the small subset of the schema GitHub
actually reads is emitted:

* ``tool.driver.rules`` — the full rule catalog with descriptions, so
  rule metadata renders even for runs with zero results;
* one ``result`` per *new* finding (grandfathered and suppressed
  findings are exchanged as suppressed results, matching how the text
  formats treat them);
* a ``codeFlow`` per flow finding, translating the finding's trace
  (source → hops → sink) into ``threadFlowLocations`` so the code
  scanning UI shows the provenance chain inline.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _location(path: str, line: int, col: int, text: str = "") -> dict:
    region: Dict[str, object] = {
        # SARIF columns are 1-based; findings carry 0-based AST cols.
        "startLine": max(line, 1),
        "startColumn": col + 1,
    }
    if text:
        region["snippet"] = {"text": text}
    return {
        "physicalLocation": {
            # Relative URI: code-scanning resolves it against the
            # checkout root, which is exactly where CI runs the lint.
            "artifactLocation": {"uri": path.replace("\\", "/")},
            "region": region,
        }
    }


def _code_flow(finding: Finding) -> dict:
    locations = []
    for step in finding.trace:
        loc = _location(
            finding.path,
            int(step.get("line", finding.line)),
            int(step.get("col", 0)),
            str(step.get("text", "")),
        )
        loc["message"] = {"text": str(step.get("note", ""))}
        locations.append({"location": loc})
    return {"threadFlows": [{"locations": locations}]}


def _result(finding: Finding, suppressed_kind: str = "") -> dict:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            _location(
                finding.path, finding.line, finding.col, finding.line_text
            )
        ],
    }
    if finding.fingerprint:
        # partialFingerprints is the field GitHub uses to track a
        # result's identity across commits — exactly what the flow
        # fingerprint was built for.
        result["partialFingerprints"] = {
            "reproFlowFingerprint/v1": finding.fingerprint
        }
    if finding.trace:
        result["codeFlows"] = [_code_flow(finding)]
    if suppressed_kind:
        result["suppressions"] = [{"kind": suppressed_kind}]
    return result


def _ruleset_version() -> str:
    from repro.analysis.rules import RULESET_VERSION

    return RULESET_VERSION


def _driver_rules() -> List[dict]:
    rules = []
    for rule in all_rules():
        rules.append(
            {
                "id": rule.id,
                "name": rule.name,
                "shortDescription": {"text": rule.name},
                "fullDescription": {"text": rule.description},
                "defaultConfiguration": {
                    "level": _LEVELS.get(rule.severity, "warning")
                },
            }
        )
    return rules


def render_sarif(report) -> str:
    """One SARIF 2.1.0 document for an :class:`AnalysisReport`."""
    results = [_result(f) for f in report.findings]
    # ``inSource`` = inline ``# repro-lint: ok`` comments;
    # ``external`` = the committed baseline file.
    results += [_result(f, "inSource") for f in report.suppressed]
    results += [_result(f, "external") for f in report.grandfathered]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": _ruleset_version(),
                        "rules": _driver_rules(),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2) + "\n"
