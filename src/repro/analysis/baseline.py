"""The committed findings baseline.

A baseline entry grandfathers one *deliberate* finding: an exact float
sentinel, an order-insensitive set iteration the author prefers not to
rewrite, and so on.  Every entry must carry a ``justification`` so the
reasoning survives the commit that added it.

Matching is structural, not positional: an entry matches findings with
the same rule id, the same path (compared by suffix, so the baseline
works from any working directory) and the same stripped source line
text.  Line numbers are recorded for humans but ignored during
matching — edits elsewhere in the file do not invalidate entries.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.analysis.findings import Finding

#: File name searched for (upward from the CWD) when ``--baseline`` is
#: not given explicitly.
DEFAULT_BASELINE_NAME = "repro-lint.baseline.json"


class BaselineError(ValueError):
    """A baseline file that cannot be parsed or fails validation."""


#: Header comment written into every generated baseline document.
_BASELINE_COMMENT = (
    "repro-lint baseline: deliberate findings, each with a "
    "justification.  Regenerate with "
    "'python -m repro.analysis --write-baseline' and then "
    "fill in real justifications."
)


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    line_text: str
    justification: str
    line: int = 0
    #: Flow findings match on their source/sink fingerprint instead of
    #: the sink's line text: the fingerprint hashes the source and sink
    #: line *text* (see :func:`repro.analysis.findings.flow_fingerprint`)
    #: so edits between the two endpoints do not invalidate the entry,
    #: while a vanished source or sink does (the entry goes stale and
    #: ``--prune-stale`` drops it).
    fingerprint: str = ""

    def matches(self, finding: Finding) -> bool:
        if self.rule != finding.rule:
            return False
        if self.fingerprint:
            if self.fingerprint != finding.fingerprint:
                return False
        elif self.line_text != finding.line_text:
            return False
        return _same_path(self.path, finding.path)


def _norm_path(path: str) -> str:
    """Normalize to '/' separators and drop a single './' prefix.

    Only an exact './' prefix is removed — lstrip would also eat
    leading '..' components and make '../pkg/mod.py' match 'pkg/mod.py'
    in a different tree.
    """
    path = path.replace(os.sep, "/")
    return path[2:] if path.startswith("./") else path


def _same_path(baseline_path: str, finding_path: str) -> bool:
    """Suffix-tolerant path comparison (both normalized to '/')."""
    a = _norm_path(baseline_path)
    b = _norm_path(finding_path)
    if a == b:
        return True
    # Suffix tolerance assumes the shorter path is the same file seen
    # from a deeper working directory; a '..' segment points at a
    # different tree, so it never suffix-matches.
    if ".." in a.split("/") or ".." in b.split("/"):
        return False
    return a.endswith("/" + b) or b.endswith("/" + a)


class Baseline:
    """A set of grandfathered findings loaded from JSON."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()):
        self.entries: List[BaselineEntry] = list(entries)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise BaselineError(f"{path}: invalid JSON ({exc})") from exc
        if not isinstance(payload, dict) or "findings" not in payload:
            raise BaselineError(
                f"{path}: expected an object with a 'findings' array"
            )
        entries = []
        for i, raw in enumerate(payload["findings"]):
            missing = {"rule", "path", "line_text", "justification"} - set(raw)
            if missing:
                raise BaselineError(
                    f"{path}: entry {i} is missing {sorted(missing)}"
                )
            if not raw["justification"].strip():
                raise BaselineError(
                    f"{path}: entry {i} ({raw['rule']} at {raw['path']}) "
                    "has an empty justification — every grandfathered "
                    "finding must explain itself"
                )
            entries.append(
                BaselineEntry(
                    rule=raw["rule"],
                    path=raw["path"],
                    line_text=raw["line_text"],
                    justification=raw["justification"],
                    line=int(raw.get("line", 0)),
                    fingerprint=raw.get("fingerprint", ""),
                )
            )
        return cls(entries)

    @classmethod
    def find_default(cls, start_dir: str = ".") -> str:
        """Path of the nearest default baseline file, or '' if none."""
        current = os.path.abspath(start_dir)
        while True:
            candidate = os.path.join(current, DEFAULT_BASELINE_NAME)
            if os.path.isfile(candidate):
                return candidate
            parent = os.path.dirname(current)
            if parent == current:
                return ""
            current = parent

    # ------------------------------------------------------------------
    def split(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Partition findings into (new, grandfathered) + unused entries."""
        new: List[Finding] = []
        grandfathered: List[Finding] = []
        used = [False] * len(self.entries)
        for finding in findings:
            matched = False
            for i, entry in enumerate(self.entries):
                if entry.matches(finding):
                    used[i] = True
                    matched = True
                    break
            (grandfathered if matched else new).append(finding)
        unused = [e for e, u in zip(self.entries, used) if not u]
        return new, grandfathered, unused

    # ------------------------------------------------------------------
    @staticmethod
    def render(
        findings: List[Finding],
        justification: str,
        baseline: Optional["Baseline"] = None,
    ) -> str:
        """Serialize findings as a fresh baseline document.

        Findings already grandfathered by ``baseline`` keep that
        entry's justification; everything else gets ``justification``
        as a placeholder to fill in by hand.
        """

        def _justify(finding: Finding) -> str:
            if baseline is not None:
                for entry in baseline.entries:
                    if entry.matches(finding):
                        return entry.justification
            return justification

        entries = []
        for f in sorted(findings):
            entry = {
                "rule": f.rule,
                "path": f.path.replace(os.sep, "/"),
                "line": f.line,
                "line_text": f.line_text,
                "justification": _justify(f),
            }
            if f.fingerprint:
                entry["fingerprint"] = f.fingerprint
            entries.append(entry)
        payload = {"comment": _BASELINE_COMMENT, "findings": entries}
        return json.dumps(payload, indent=2) + "\n"

    @staticmethod
    def render_entries(entries: List[BaselineEntry]) -> str:
        """Serialize existing entries verbatim (used by --prune-stale).

        Unlike :meth:`render` this starts from entries, not findings,
        so surviving justifications and recorded line numbers pass
        through untouched.
        """
        rendered = []
        for e in sorted(
            entries, key=lambda e: (e.path, e.line, e.rule, e.line_text)
        ):
            raw = {
                "rule": e.rule,
                "path": _norm_path(e.path),
                "line": e.line,
                "line_text": e.line_text,
                "justification": e.justification,
            }
            if e.fingerprint:
                raw["fingerprint"] = e.fingerprint
            rendered.append(raw)
        payload = {"comment": _BASELINE_COMMENT, "findings": rendered}
        return json.dumps(payload, indent=2) + "\n"
