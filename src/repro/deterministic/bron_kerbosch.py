"""Maximal clique enumeration on deterministic graphs (Bron–Kerbosch).

Three classic variants are provided:

* :func:`bron_kerbosch` — the plain 1973 algorithm;
* :func:`bron_kerbosch_pivot` — Tomita-style pivoting: a pivot ``u``
  maximizing ``|C ∩ N(u)|`` is chosen and only ``C \\ N(u)`` is
  expanded, because every maximal clique contains ``u`` or one of its
  non-neighbors;
* :func:`bron_kerbosch_degeneracy` — degeneracy-ordered outer loop
  (Eppstein, Löffler & Strash) with pivoting inside.

They serve as the reference point the paper contrasts against in
Section 3: the *classic* pivot rule is sound here but unsound for
maximal η-cliques (see ``tests/test_section3_counterexamples.py``).
"""

from __future__ import annotations

from typing import Iterator, List, Set

from repro.deterministic.core import degeneracy_ordering
from repro.deterministic.graph import Graph, Vertex


def bron_kerbosch(graph: Graph) -> Iterator[frozenset]:
    """Yield every maximal clique of ``graph`` (no pivoting)."""
    if graph.num_vertices:
        yield from _bk(graph, set(), set(graph.vertices()), set(), pivot=False)


def bron_kerbosch_pivot(graph: Graph) -> Iterator[frozenset]:
    """Yield every maximal clique using the classic pivot rule."""
    if graph.num_vertices:
        yield from _bk(graph, set(), set(graph.vertices()), set(), pivot=True)


def bron_kerbosch_degeneracy(graph: Graph) -> Iterator[frozenset]:
    """Yield maximal cliques with a degeneracy-ordered outer loop."""
    order = degeneracy_ordering(graph)
    rank = {v: i for i, v in enumerate(order)}
    for v in order:
        nbrs = graph.neighbors(v)
        candidates = {u for u in nbrs if rank[u] > rank[v]}
        excluded = {u for u in nbrs if rank[u] < rank[v]}
        yield from _bk(graph, {v}, candidates, excluded, pivot=True)


def maximal_cliques(graph: Graph) -> List[frozenset]:
    """Return all maximal cliques as a sorted list (test convenience)."""
    found = list(bron_kerbosch_degeneracy(graph))
    return sorted(found, key=lambda s: (len(s), sorted(map(repr, s))))


def maximum_clique(graph: Graph) -> frozenset:
    """Return one maximum clique (empty frozenset for empty graph)."""
    best: frozenset = frozenset()
    for clique in bron_kerbosch_degeneracy(graph):
        if len(clique) > len(best):
            best = clique
    return best


def _bk(
    graph: Graph,
    r: Set[Vertex],
    c: Set[Vertex],
    x: Set[Vertex],
    pivot: bool,
) -> Iterator[frozenset]:
    if not c and not x:
        yield frozenset(r)
        return
    if pivot and c:
        # Pivot on the vertex (from C ∪ X) covering most candidates.
        # Ties are broken by the canonical (repr) order, not by set
        # iteration order, so the recursion tree is reproducible.
        pivot_vertex = max(
            sorted(c | x, key=repr),
            key=lambda u: len(c & graph.neighbors(u)),
        )
        expandable = c - graph.neighbors(pivot_vertex)
    else:
        expandable = set(c)
    for v in sorted(expandable, key=repr):
        nbrs = graph.neighbors(v)
        yield from _bk(graph, r | {v}, c & nbrs, x & nbrs, pivot)
        c.discard(v)
        x.add(v)
