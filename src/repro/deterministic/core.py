"""k-core decomposition and the degeneracy ordering.

The degeneracy ordering (Section 4.5 of the paper) is obtained by
repeatedly removing a vertex of minimum degree from the remaining
graph; the removal order is the ordering and the largest degree seen at
removal time is the degeneracy δ.  The bucket-queue implementation runs
in ``O(n + m)`` (Batagelj & Zaversnik).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.deterministic.graph import Graph, Vertex


def core_decomposition(graph: Graph) -> Dict[Vertex, int]:
    """Return the core number of every vertex.

    The core number of ``v`` is the largest ``k`` such that ``v``
    belongs to a subgraph in which every vertex has degree >= ``k``.
    """
    order, core = _peel(graph)
    del order
    return core


def degeneracy_ordering(graph: Graph) -> List[Vertex]:
    """Return vertices in degeneracy (minimum-degree peeling) order."""
    order, _core = _peel(graph)
    return order


def degeneracy(graph: Graph) -> int:
    """Return the degeneracy δ = maximum core number (0 if empty)."""
    core = core_decomposition(graph)
    return max(core.values(), default=0)


def _peel(graph: Graph) -> Tuple[List[Vertex], Dict[Vertex, int]]:
    """Bucket-queue peeling; returns (removal order, core numbers)."""
    degree = {v: graph.degree(v) for v in graph}
    max_deg = max(degree.values(), default=0)
    buckets: List[List[Vertex]] = [[] for _ in range(max_deg + 1)]
    for v, d in degree.items():
        buckets[d].append(v)
    removed = set()
    order: List[Vertex] = []
    core: Dict[Vertex, int] = {}
    current_core = 0
    pointer = 0
    n = len(degree)
    while len(order) < n:
        # Find the lowest non-empty bucket; `pointer` only moves down by
        # at most 1 per removal, keeping the total cost linear.
        while pointer <= max_deg and not buckets[pointer]:
            pointer += 1
        v = buckets[pointer].pop()
        if v in removed:
            continue
        if degree[v] != pointer:
            # Stale entry: the vertex was re-bucketed at a lower degree.
            continue
        removed.add(v)
        current_core = max(current_core, pointer)
        core[v] = current_core
        order.append(v)
        # repro-lint: ok REP001 neighbors() is an insertion-ordered dict view
        for u in graph.neighbors(v):
            if u not in removed:
                degree[u] -= 1
                buckets[degree[u]].append(u)
                if degree[u] < pointer:
                    pointer = degree[u]
    return order, core
