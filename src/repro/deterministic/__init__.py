"""Deterministic-graph substrate: BK cliques, cores, coloring, triangles."""

from repro.deterministic.graph import Graph
from repro.deterministic.core import (
    core_decomposition,
    degeneracy,
    degeneracy_ordering,
)
from repro.deterministic.coloring import (
    color_number,
    count_colors,
    greedy_coloring,
    verify_coloring,
)
from repro.deterministic.bron_kerbosch import (
    bron_kerbosch,
    bron_kerbosch_degeneracy,
    bron_kerbosch_pivot,
    maximal_cliques,
    maximum_clique,
)
from repro.deterministic.triangles import (
    count_triangles,
    iter_triangles,
    triangles_of_edge,
)

__all__ = [
    "Graph",
    "core_decomposition",
    "degeneracy",
    "degeneracy_ordering",
    "color_number",
    "count_colors",
    "greedy_coloring",
    "verify_coloring",
    "bron_kerbosch",
    "bron_kerbosch_degeneracy",
    "bron_kerbosch_pivot",
    "maximal_cliques",
    "maximum_clique",
    "count_triangles",
    "iter_triangles",
    "triangles_of_edge",
]
