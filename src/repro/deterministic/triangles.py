"""Triangle listing and counting.

Used by the ``(Top_k, η)``-triangle reduction (Section 5.2), which needs
for each edge ``(u, v)`` the triangles through it together with the
*open triangle probability* ``p(u,w) * p(v,w)`` of each.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.deterministic.graph import Graph, Vertex


def triangles_of_edge(graph: Graph, u: Vertex, v: Vertex) -> List[Vertex]:
    """Return the apex vertices ``w`` forming triangles with edge (u, v)."""
    nu, nv = graph.neighbors(u), graph.neighbors(v)
    if len(nu) > len(nv):
        nu, nv = nv, nu
    return [w for w in nu if w in nv]


def iter_triangles(graph: Graph) -> Iterator[Tuple[Vertex, Vertex, Vertex]]:
    """Yield each triangle exactly once as a sorted-by-rank triple.

    Uses the standard degree-ordered orientation so each triangle is
    reported from its lowest-ranked vertex.
    """
    rank = {
        v: i
        for i, v in enumerate(
            sorted(graph.vertices(), key=lambda v: (graph.degree(v), repr(v)))
        )
    }
    for u in graph:
        # repro-lint: ok REP001 neighbors() is an insertion-ordered dict view
        higher_u = [w for w in graph.neighbors(u) if rank[w] > rank[u]]
        higher_set = set(higher_u)
        for v in higher_u:
            # repro-lint: ok REP001 neighbors() is an insertion-ordered dict view
            for w in graph.neighbors(v):
                if rank[w] > rank[v] and w in higher_set:
                    yield (u, v, w)


def count_triangles(graph: Graph) -> int:
    """Total number of triangles in the graph."""
    return sum(1 for _ in iter_triangles(graph))
