"""Deterministic (certain) undirected graph.

This is the substrate for the classic algorithms the paper builds on:
Bron–Kerbosch with pivoting, core decomposition / degeneracy ordering,
greedy coloring, and triangle listing.  It mirrors the adjacency-set
style of :class:`repro.uncertain.UncertainGraph` without probabilities.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.exceptions import GraphError

Vertex = Hashable


class Graph:
    """A simple undirected graph backed by insertion-ordered adjacency.

    Neighbor iteration follows edge-insertion order, never hash order:
    peeling-style algorithms (degeneracy ordering) are sensitive to the
    visit order, and hash order both varies across processes under
    ``PYTHONHASHSEED`` randomization and cannot be mirrored by the
    integer-id kernel backend.  Neighborhoods are exposed as dict key
    views, which support the set algebra (``&``, ``-``, ``in``) the
    clique algorithms use.

    >>> g = Graph([(1, 2), (2, 3)])
    >>> g.degree(2)
    2
    >>> g.is_clique([1, 2])
    True
    """

    __slots__ = ("_adj",)

    def __init__(self, edges: Optional[Iterable[Tuple[Vertex, Vertex]]] = None):
        self._adj: Dict[Vertex, Dict[Vertex, None]] = {}
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    def add_vertex(self, v: Vertex) -> None:
        """Insert an isolated vertex (no-op if present)."""
        self._adj.setdefault(v, {})

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Insert edge ``(u, v)``; self-loops are rejected."""
        if u == v:
            raise GraphError(f"self-loop ({u!r}, {v!r}) is not allowed")
        self._adj.setdefault(u, {})[v] = None
        self._adj.setdefault(v, {})[u] = None

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and incident edges; raises if absent."""
        if v not in self._adj:
            raise GraphError(f"vertex {v!r} does not exist")
        for u in self._adj[v]:
            self._adj[u].pop(v, None)
        del self._adj[v]

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> List[Vertex]:
        """Return the vertex list (insertion order)."""
        return list(self._adj)

    def edges(self) -> Iterator[Tuple[Vertex, Vertex]]:
        """Yield each edge exactly once."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return True if the edge exists."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Vertex) -> AbstractSet[Vertex]:
        """Neighbors of ``v``: a set-like view in insertion order."""
        try:
            return self._adj[v].keys()
        except KeyError:
            raise GraphError(f"vertex {v!r} does not exist") from None

    def degree(self, v: Vertex) -> int:
        """Number of neighbors of ``v``."""
        return len(self.neighbors(v))

    def max_degree(self) -> int:
        """Maximum degree over all vertices (0 for an empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def is_clique(self, vertices: Iterable[Vertex]) -> bool:
        """Return True if ``vertices`` induces a complete subgraph."""
        members = list(vertices)
        for i, u in enumerate(members):
            nbrs = self._adj.get(u)
            if nbrs is None:
                return False
            for v in members[i + 1 :]:
                if v not in nbrs:
                    return False
        return True

    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return the induced subgraph on ``vertices`` (unknown ignored).

        The result keeps this graph's insertion order (never the
        argument's iteration order, which may be a hash-ordered set).
        """
        requested = set(vertices)
        sub = Graph()
        for v in self._adj:
            if v not in requested:
                continue
            sub.add_vertex(v)
            for u in self._adj[v]:
                if u in requested:
                    sub.add_edge(u, v)
        return sub

    def copy(self) -> "Graph":
        """Return an independent copy of this graph."""
        dup = Graph()
        dup._adj = {v: dict(nbrs) for v, nbrs in self._adj.items()}
        return dup

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"
