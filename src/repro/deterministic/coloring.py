"""Greedy graph coloring and color-based clique bounds.

The paper uses a classic greedy coloring twice: to pick pivot vertices
with a large *color number* (Section 4.6) and to build the color-refined
K-pivot periphery (Section 5.1).  Both rely on the fact that vertices
sharing a color class are pairwise non-adjacent, so any clique contains
at most one vertex per color class.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.deterministic.graph import Graph, Vertex


def greedy_coloring(
    graph: Graph, order: Optional[List[Vertex]] = None
) -> Dict[Vertex, int]:
    """Color ``graph`` greedily; adjacent vertices get distinct colors.

    Vertices are processed in ``order`` (default: descending degree,
    which empirically uses few colors).  Colors are ints from 0.

    >>> g = Graph([(1, 2), (2, 3), (1, 3)])
    >>> colors = greedy_coloring(g)
    >>> len({colors[1], colors[2], colors[3]})
    3
    """
    if order is None:
        order = sorted(graph.vertices(), key=graph.degree, reverse=True)
    colors: Dict[Vertex, int] = {}
    for v in order:
        taken = {colors[u] for u in graph.neighbors(v) if u in colors}
        color = 0
        while color in taken:
            color += 1
        colors[v] = color
    return colors


def color_number(graph: Graph, colors: Dict[Vertex, int], v: Vertex) -> int:
    """Number of distinct colors among ``v``'s neighbors.

    This upper-bounds (minus the vertex itself) the size of any clique
    containing ``v``, and is never larger than the degree of ``v``.
    """
    return len({colors[u] for u in graph.neighbors(v)})


def count_colors(colors: Dict[Vertex, int], vertices: Iterable[Vertex]) -> int:
    """Number of distinct color classes covering ``vertices``."""
    return len({colors[v] for v in vertices})


def verify_coloring(graph: Graph, colors: Dict[Vertex, int]) -> bool:
    """Return True if no edge joins two vertices of the same color."""
    return all(colors[u] != colors[v] for u, v in graph.edges())
