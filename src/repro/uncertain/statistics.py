"""Descriptive statistics of uncertain graphs.

Summaries used by the dataset registry, the experiment harness and the
examples: expected structural quantities under the possible-world model
(which are exact, by linearity of expectation) and the edge-probability
profile of the graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.deterministic.core import degeneracy
from repro.deterministic.triangles import iter_triangles
from repro.uncertain.graph import UncertainGraph, Vertex


def expected_degree(graph: UncertainGraph, v: Vertex) -> float:
    """Expected degree of ``v``: the sum of incident probabilities."""
    return float(sum(graph.neighbors(v).values()))


def expected_num_edges(graph: UncertainGraph) -> float:
    """Expected number of edges in a sampled world."""
    return float(sum(p for _u, _v, p in graph.edges()))


def expected_num_triangles(graph: UncertainGraph) -> float:
    """Expected number of triangles in a sampled world.

    By linearity of expectation this is the sum over triangles of the
    product of their three edge probabilities — no sampling needed.
    """
    backbone = graph.to_deterministic()
    total = 0.0
    for u, v, w in iter_triangles(backbone):
        total += float(
            graph.probability(u, v)
            * graph.probability(u, w)
            * graph.probability(v, w)
        )
    return total


def probability_histogram(
    graph: UncertainGraph, bins: int = 10
) -> List[int]:
    """Histogram of edge probabilities over ``bins`` equal cells of (0, 1].

    Cell ``i`` counts edges with ``p`` in ``(i/bins, (i+1)/bins]``
    (probability 0 cannot occur; probability 1 lands in the last cell).
    """
    if bins < 1:
        raise ValueError(f"bins must be positive, got {bins}")
    counts = [0] * bins
    for _u, _v, p in graph.edges():
        index = min(int(math.ceil(float(p) * bins)) - 1, bins - 1)
        counts[max(index, 0)] += 1
    return counts


def edge_entropy(graph: UncertainGraph) -> float:
    """Total Shannon entropy (bits) of the possible-world distribution.

    Edges are independent, so the world entropy is the sum of per-edge
    binary entropies — a measure of how "uncertain" the graph really is
    (0 for a deterministic graph).
    """
    total = 0.0
    for _u, _v, p in graph.edges():
        q = float(p)
        if 0 < q < 1:
            total -= q * math.log2(q) + (1 - q) * math.log2(1 - q)
    return total


@dataclass(frozen=True)
class GraphSummary:
    """One-shot structural summary of an uncertain graph."""

    num_vertices: int
    num_edges: int
    max_degree: int
    degeneracy: int
    expected_edges: float
    expected_triangles: float
    entropy_bits: float
    mean_probability: float

    def as_row(self) -> Dict[str, object]:
        return {
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "d_max": self.max_degree,
            "delta": self.degeneracy,
            "E[|E|]": round(self.expected_edges, 1),
            "E[#tri]": round(self.expected_triangles, 1),
            "H(bits)": round(self.entropy_bits, 1),
            "mean_p": round(self.mean_probability, 3),
        }


def summarize(graph: UncertainGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    m = graph.num_edges
    expected_edges = expected_num_edges(graph)
    return GraphSummary(
        num_vertices=graph.num_vertices,
        num_edges=m,
        max_degree=graph.max_degree(),
        degeneracy=degeneracy(graph.to_deterministic()),
        expected_edges=expected_edges,
        expected_triangles=expected_num_triangles(graph),
        entropy_bits=edge_entropy(graph),
        mean_probability=(expected_edges / m) if m else 0.0,
    )
