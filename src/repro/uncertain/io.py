"""Reading and writing uncertain graphs as text edge lists.

The on-disk format mirrors the one used by the paper's released code:
one edge per line, whitespace-separated ``u v p`` with ``p`` optional
(defaulting to 1.0, i.e. a deterministic edge).  Lines starting with
``#`` or ``%`` are comments; blank lines are skipped.
"""

from __future__ import annotations

import io
import os
from typing import Union

from repro.exceptions import DatasetError
from repro.uncertain.graph import UncertainGraph

PathLike = Union[str, os.PathLike]


def parse_edge_list(text: str, default_probability: float = 1.0) -> UncertainGraph:
    """Parse an edge-list string into an :class:`UncertainGraph`.

    Vertex tokens that look like integers are converted to ``int`` so
    that files written by other tools round-trip naturally.

    >>> g = parse_edge_list("0 1 0.5\\n1 2\\n")
    >>> g.probability(1, 2)
    1.0
    """
    graph = UncertainGraph()
    for lineno, raw in enumerate(io.StringIO(text), start=1):
        line = raw.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise DatasetError(
                f"line {lineno}: expected 'u v [p]', got {line!r}"
            )
        u, v = (_coerce_vertex(tok) for tok in parts[:2])
        if len(parts) == 3:
            try:
                p = float(parts[2])
            except ValueError:
                raise DatasetError(
                    f"line {lineno}: probability {parts[2]!r} is not a number"
                ) from None
        else:
            p = default_probability
        try:
            graph.add_edge(u, v, p)
        except Exception as exc:
            raise DatasetError(f"line {lineno}: {exc}") from exc
    return graph


def read_edge_list(path: PathLike, default_probability: float = 1.0) -> UncertainGraph:
    """Load an uncertain graph from an edge-list file."""
    with open(path, "r", encoding="utf-8") as f:
        return parse_edge_list(f.read(), default_probability)


def write_edge_list(graph: UncertainGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in the ``u v p`` edge-list format."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(format_edge_list(graph))


def format_edge_list(graph: UncertainGraph) -> str:
    """Render ``graph`` as an edge-list string (deterministic order)."""
    lines = [
        f"{u} {v} {float(p):.9g}"
        for u, v, p in sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1])))
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def _coerce_vertex(token: str):
    try:
        return int(token)
    except ValueError:
        return token
