"""Uncertain-graph substrate: data structure, probabilities, worlds, I/O."""

from repro.uncertain.graph import UncertainGraph, normalize_edge
from repro.uncertain.clique_probability import (
    clique_probability,
    extension_probability,
    is_eta_clique,
    is_maximal_eta_clique,
    is_maximal_k_eta_clique,
)
from repro.uncertain.possible_worlds import (
    enumerate_worlds,
    estimate_clique_probability,
    exact_maximal_eta_cliques_by_worlds,
    sample_world,
    sample_worlds,
)
from repro.uncertain.io import (
    format_edge_list,
    parse_edge_list,
    read_edge_list,
    write_edge_list,
)
from repro.uncertain.maximality import (
    alpha_maximal_cliques,
    estimate_maximal_clique_probability,
    maximal_clique_probability,
)
from repro.uncertain.serialization import (
    from_json,
    load_json,
    read_metadata,
    save_json,
    to_json,
)
from repro.uncertain.transforms import (
    condition,
    intersect_graphs,
    rescale,
    sharpen,
    threshold,
    union_graphs,
)
from repro.uncertain.statistics import (
    GraphSummary,
    edge_entropy,
    expected_degree,
    expected_num_edges,
    expected_num_triangles,
    probability_histogram,
    summarize,
)

__all__ = [
    "UncertainGraph",
    "normalize_edge",
    "clique_probability",
    "extension_probability",
    "is_eta_clique",
    "is_maximal_eta_clique",
    "is_maximal_k_eta_clique",
    "enumerate_worlds",
    "estimate_clique_probability",
    "exact_maximal_eta_cliques_by_worlds",
    "sample_world",
    "sample_worlds",
    "format_edge_list",
    "parse_edge_list",
    "read_edge_list",
    "write_edge_list",
    "from_json",
    "load_json",
    "read_metadata",
    "save_json",
    "to_json",
    "alpha_maximal_cliques",
    "estimate_maximal_clique_probability",
    "maximal_clique_probability",
    "GraphSummary",
    "edge_entropy",
    "expected_degree",
    "expected_num_edges",
    "expected_num_triangles",
    "probability_histogram",
    "summarize",
    "condition",
    "intersect_graphs",
    "rescale",
    "sharpen",
    "threshold",
    "union_graphs",
]
