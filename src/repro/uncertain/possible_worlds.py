"""Possible-world semantics for uncertain graphs (Section 2, Eq. 1).

A possible world of an uncertain graph ``G`` is a deterministic graph
obtained by independently keeping each edge ``e`` with probability
``p_e``.  This module provides

* exhaustive enumeration of all ``2^|E|`` worlds with their
  probabilities (for small graphs; used to validate Eq. 2 in tests),
* seeded Monte-Carlo sampling of worlds, and
* an empirical estimator of the clique probability of a vertex set,
  which converges to :func:`repro.uncertain.clique_probability` by the
  law of large numbers.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.exceptions import ParameterError
from repro.deterministic.graph import Graph
from repro.uncertain.graph import UncertainGraph, Vertex

#: Enumerating more edges than this is refused: 2^20 worlds is already a
#: million graphs and the function is meant for test-sized inputs.
MAX_ENUMERABLE_EDGES = 20


def enumerate_worlds(graph: UncertainGraph) -> Iterator[Tuple[Graph, object]]:
    """Yield every possible world with its probability ``Pr(G)`` (Eq. 1).

    Raises :class:`ParameterError` when the graph has more than
    :data:`MAX_ENUMERABLE_EDGES` edges.
    """
    edges = list(graph.edges())
    if len(edges) > MAX_ENUMERABLE_EDGES:
        raise ParameterError(
            f"refusing to enumerate 2^{len(edges)} possible worlds; "
            f"limit is 2^{MAX_ENUMERABLE_EDGES}"
        )
    vertices = graph.vertices()
    for mask in itertools.product((False, True), repeat=len(edges)):
        world = Graph()
        for v in vertices:
            world.add_vertex(v)
        prob = 1
        for present, (u, v, p) in zip(mask, edges):
            if present:
                world.add_edge(u, v)
                prob = prob * p
            else:
                prob = prob * (1 - p)
        yield world, prob


def sample_world(graph: UncertainGraph, rng: random.Random) -> Graph:
    """Sample one possible world using the supplied RNG."""
    world = Graph()
    for v in graph.vertices():
        world.add_vertex(v)
    for u, v, p in graph.edges():
        if rng.random() < p:
            world.add_edge(u, v)
    return world


def sample_worlds(
    graph: UncertainGraph, count: int, seed: int = 0
) -> Iterator[Graph]:
    """Yield ``count`` independent possible worlds from a seeded RNG."""
    if count < 0:
        raise ParameterError(f"count must be non-negative, got {count}")
    rng = random.Random(seed)
    for _ in range(count):
        yield sample_world(graph, rng)


def estimate_clique_probability(
    graph: UncertainGraph,
    vertices: Iterable[Vertex],
    samples: int = 10_000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of ``Pr(vertices is a clique)``.

    Only the edges inside the candidate set need to be sampled, so the
    estimator costs ``O(samples * |H|^2)`` regardless of graph size.
    """
    if samples <= 0:
        raise ParameterError(f"samples must be positive, got {samples}")
    members: Sequence[Vertex] = list(vertices)
    pair_probs: List[object] = []
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            p = graph.probability(u, v)
            if not p:
                return 0.0
            pair_probs.append(p)
    rng = random.Random(seed)
    hits = 0
    for _ in range(samples):
        if all(rng.random() < p for p in pair_probs):
            hits += 1
    return hits / samples


def exact_maximal_eta_cliques_by_worlds(
    graph: UncertainGraph, k: int, eta
) -> List[frozenset]:
    """Reference oracle: maximal (k, η)-cliques via world enumeration.

    Computes ``Pr(H is a clique)`` for every vertex subset by summing
    world probabilities, then filters maximal η-cliques of size >= k.
    Exponential in both edges and vertices — strictly a test oracle.
    """
    vertices = graph.vertices()
    if len(vertices) > 12:
        raise ParameterError("oracle limited to graphs with <= 12 vertices")
    clique_prob = {frozenset(): 1, **{frozenset([v]): 1 for v in vertices}}
    for size in range(2, len(vertices) + 1):
        for subset in itertools.combinations(vertices, size):
            clique_prob[frozenset(subset)] = 0
    for world, prob in enumerate_worlds(graph):
        for size in range(2, len(vertices) + 1):
            for subset in itertools.combinations(vertices, size):
                if world.is_clique(subset):
                    key = frozenset(subset)
                    clique_prob[key] = clique_prob[key] + prob
    eta_cliques = {h for h, p in clique_prob.items() if p >= eta and h}
    results = []
    # repro-lint: ok REP001 results are re-sorted canonically on return
    for h in eta_cliques:
        if len(h) < k:
            continue
        extendable = any(
            frozenset(h | {v}) in eta_cliques for v in vertices if v not in h
        )
        if not extendable:
            results.append(h)
    return sorted(results, key=lambda s: (len(s), sorted(map(repr, s))))
