"""Algebra on uncertain graphs: thresholding, conditioning, combination.

Pre-processing steps that appear throughout the uncertain-graph
literature (and in the paper's case studies, e.g. confidence cut-offs
on knowledge graphs):

* :func:`threshold` — drop edges below a probability floor;
* :func:`sharpen` — raise probabilities to a power (γ < 1 sharpens
  toward certainty, γ > 1 attenuates), a standard confidence recalibration;
* :func:`rescale` — affine rescaling of probabilities into a range;
* :func:`condition` — the graph conditioned on an edge's presence
  (probability 1) or absence (edge removed), the primitive behind
  stratified sampling;
* :func:`union_graphs` / :func:`intersect_graphs` — noisy-OR union and
  independent-AND intersection of two evidence layers over the same
  vertices (e.g. two PPI assays).
"""

from __future__ import annotations

from repro.exceptions import GraphError, ParameterError
from repro.uncertain.graph import UncertainGraph, Vertex


def threshold(graph: UncertainGraph, floor) -> UncertainGraph:
    """Keep only edges with probability >= ``floor`` (vertices kept)."""
    if not 0 <= floor <= 1:
        raise ParameterError(f"floor must lie in [0, 1], got {floor!r}")
    out = UncertainGraph()
    for v in graph.vertices():
        out.add_vertex(v)
    for u, v, p in graph.edges():
        if p >= floor:
            out.add_edge(u, v, p)
    return out


def sharpen(graph: UncertainGraph, gamma: float) -> UncertainGraph:
    """Replace every probability ``p`` by ``p ** gamma``.

    ``gamma < 1`` pushes probabilities toward 1 (trust the evidence
    more); ``gamma > 1`` pushes them toward 0.  Order of probabilities
    is preserved, so reductions degrade gracefully.
    """
    if gamma <= 0:
        raise ParameterError(f"gamma must be positive, got {gamma!r}")
    out = UncertainGraph()
    for v in graph.vertices():
        out.add_vertex(v)
    for u, v, p in graph.edges():
        out.add_edge(u, v, float(p) ** gamma)
    return out


def rescale(graph: UncertainGraph, low: float, high: float) -> UncertainGraph:
    """Affinely map the probability range of ``graph`` onto [low, high].

    A graph whose probabilities are all equal maps everything to
    ``high``.  Useful to re-normalize confidence scores produced by
    different extractors before combining them.
    """
    if not 0 < low <= high <= 1:
        raise ParameterError(
            f"need 0 < low <= high <= 1, got ({low!r}, {high!r})"
        )
    probs = [float(p) for _u, _v, p in graph.edges()]
    out = UncertainGraph()
    for v in graph.vertices():
        out.add_vertex(v)
    if not probs:
        return out
    lo, hi = min(probs), max(probs)
    span = hi - lo
    for u, v, p in graph.edges():
        # repro-lint: ok REP003 span is exactly 0.0 only when min==max
        if span == 0:
            scaled = high
        else:
            scaled = low + (float(p) - lo) / span * (high - low)
        out.add_edge(u, v, scaled)
    return out


def condition(
    graph: UncertainGraph, u: Vertex, v: Vertex, present: bool
) -> UncertainGraph:
    """The graph conditioned on edge ``(u, v)`` being present or absent.

    Conditioning on presence pins the probability at 1; conditioning on
    absence removes the edge.  All other edges are independent of the
    event, hence unchanged.
    """
    if not graph.has_edge(u, v):
        raise GraphError(f"({u!r}, {v!r}) is not an edge")
    out = graph.copy()
    out.remove_edge(u, v)
    if present:
        out.add_edge(u, v, 1.0)
    return out


def union_graphs(a: UncertainGraph, b: UncertainGraph) -> UncertainGraph:
    """Noisy-OR union: an edge exists if either evidence layer has it.

    ``p = 1 - (1 - p_a) (1 - p_b)`` assuming the two layers are
    independent observations of the same latent network.
    """
    out = UncertainGraph()
    for graph in (a, b):
        for v in graph.vertices():
            out.add_vertex(v)
    seen = set()
    for graph, other in ((a, b), (b, a)):
        for u, v, p in graph.edges():
            key = frozenset((u, v))
            if key in seen:
                continue
            seen.add(key)
            q = other.probability(u, v)
            combined = 1 - (1 - float(p)) * (1 - float(q))
            out.add_edge(u, v, combined)
    return out


def intersect_graphs(a: UncertainGraph, b: UncertainGraph) -> UncertainGraph:
    """Independent-AND intersection: both layers must contain the edge.

    ``p = p_a * p_b``; edges missing from either layer vanish.  Shared
    vertices are kept even when isolated.
    """
    out = UncertainGraph()
    for v in a.vertices():
        if v in b:
            out.add_vertex(v)
    for u, v, p in a.edges():
        q = b.probability(u, v)
        if q:
            out.add_edge(u, v, float(p) * float(q))
    return out
