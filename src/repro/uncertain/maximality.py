"""Probability that a vertex set is a *maximal* clique in a world.

A maximal ``(k, η)``-clique is maximal in the *threshold* sense of the
paper; a different, natural question (studied by Mukherjee et al.,
TKDE 2017, as α-maximal cliques) is: in a randomly sampled possible
world, how likely is ``H`` to be a clique *with no extension*?

That probability factorizes exactly.  ``H`` is a maximal clique of a
world iff (a) all its internal edges exist and (b) every outside vertex
``w`` misses at least one edge to ``H``.  Event (a) uses only edges
inside ``H``; each event in (b) uses only the edges between ``w`` and
``H`` — pairwise disjoint edge sets — so all the events are independent
and

    Pr[H maximal clique] = Π_{e ⊆ H} p_e · Π_{w ∉ H} (1 − Π_{v ∈ H} p(w, v))

where the inner product is 0 as soon as ``w`` misses a neighbor of
``H`` (such a ``w`` can never extend ``H``).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, Tuple

from repro.exceptions import ParameterError
from repro.uncertain.clique_probability import clique_probability
from repro.uncertain.graph import UncertainGraph, Vertex
from repro.uncertain.possible_worlds import sample_world


def maximal_clique_probability(graph: UncertainGraph, vertices: Iterable[Vertex]):
    """Exact probability that ``vertices`` is a maximal clique (closed form).

    >>> g = UncertainGraph([(0, 1, 0.9), (1, 2, 0.5), (0, 2, 0.5)])
    >>> round(maximal_clique_probability(g, [0, 1]), 3)
    0.675
    """
    members: Sequence[Vertex] = list(vertices)
    clique_part = clique_probability(graph, members)
    if not clique_part:
        return 0
    if not members:
        # The empty set is a maximal clique only in a vertexless graph.
        return 1 if graph.num_vertices == 0 else 0
    member_set = set(members)
    blocked = clique_part
    # Only common neighbors can possibly extend H; every other outside
    # vertex contributes a factor of exactly 1.
    candidates = set(graph.neighbors(members[0]))
    for v in members[1:]:
        candidates &= set(graph.neighbors(v))
    for w in candidates - member_set:
        extend = 1
        for v in members:
            extend = extend * graph.probability(v, w)
        blocked = blocked * (1 - extend)
    return blocked


def estimate_maximal_clique_probability(
    graph: UncertainGraph,
    vertices: Iterable[Vertex],
    samples: int = 10_000,
    seed: int = 0,
) -> float:
    """Monte-Carlo check of :func:`maximal_clique_probability`."""
    if samples <= 0:
        raise ParameterError(f"samples must be positive, got {samples}")
    members = list(vertices)
    member_set = set(members)
    rng = random.Random(seed)
    hits = 0
    for _ in range(samples):
        world = sample_world(graph, rng)
        if not world.is_clique(members):
            continue
        if members:
            extenders = set(world.neighbors(members[0]))
            for v in members[1:]:
                extenders &= world.neighbors(v)
            extenders -= member_set
        else:
            extenders = set(world.vertices())
        if not extenders:
            hits += 1
    return hits / samples


def alpha_maximal_cliques(
    graph: UncertainGraph, k: int, eta, alpha, algorithm: str = "pmuc+"
) -> List[Tuple[frozenset, object]]:
    """Maximal ``(k, η)``-cliques whose maximality probability >= ``alpha``.

    The threshold-maximal cliques of the paper are re-scored by the
    exact world-maximality probability (the α-maximality of Mukherjee
    et al.) and filtered; returns ``(clique, alpha_probability)`` pairs
    sorted by decreasing probability.
    """
    if not 0 <= alpha <= 1:
        raise ParameterError(f"alpha must lie in [0, 1], got {alpha!r}")
    from repro.core.api import enumerate_maximal_cliques

    scored: List[Tuple[frozenset, object]] = []

    def consider(clique: frozenset) -> None:
        probability = maximal_clique_probability(graph, clique)
        if probability >= alpha:
            scored.append((clique, probability))

    enumerate_maximal_cliques(graph, k, eta, algorithm, on_clique=consider)
    scored.sort(key=lambda item: item[1], reverse=True)
    return scored
