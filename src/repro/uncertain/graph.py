"""The uncertain graph data structure.

An *uncertain graph* ``G = (V, E, p)`` is an undirected simple graph in
which every edge ``e`` carries a probability ``p(e)`` in ``(0, 1]``
indicating the likelihood that ``e`` exists.  This module implements the
standard possible-world model used by the paper (Section 2): edges exist
independently, and a possible world is obtained by sampling each edge
with its probability.

The structure is deliberately simple — a dictionary of neighbor
dictionaries — because every algorithm in this package works on local
neighborhoods.  Probabilities may be ``float`` (fast, default) or any
numeric type supporting ``*`` and comparisons, such as
:class:`fractions.Fraction` (exact; used by the property-based tests to
rule out floating-point order-of-evaluation ambiguity).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import GraphError, InvalidProbabilityError

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


def normalize_edge(u: Vertex, v: Vertex) -> Edge:
    """Return a canonical (sorted) representation of the edge ``(u, v)``.

    Vertices of mixed non-comparable types fall back to ordering by
    ``repr``, which keeps the canonical form deterministic.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class UncertainGraph:
    """An undirected uncertain graph with per-edge existence probabilities.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v, p)`` triples used to populate the
        graph.  Self-loops are rejected; duplicate edges overwrite the
        stored probability.

    Examples
    --------
    >>> g = UncertainGraph()
    >>> g.add_edge("a", "b", 0.9)
    >>> g.probability("a", "b")
    0.9
    >>> sorted(g.neighbors("a"))
    ['b']
    """

    __slots__ = ("_adj",)

    def __init__(self, edges: Optional[Iterable[Tuple[Vertex, Vertex, object]]] = None):
        self._adj: Dict[Vertex, Dict[Vertex, object]] = {}
        if edges is not None:
            for u, v, p in edges:
                self.add_edge(u, v, p)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Insert an isolated vertex ``v`` (no-op if already present)."""
        self._adj.setdefault(v, {})

    def add_edge(self, u: Vertex, v: Vertex, p: object) -> None:
        """Insert edge ``(u, v)`` with existence probability ``p``.

        Raises
        ------
        GraphError
            If ``u == v`` (self-loop).
        InvalidProbabilityError
            If ``p`` is outside the interval ``(0, 1]``.
        """
        if u == v:
            raise GraphError(f"self-loop ({u!r}, {v!r}) is not allowed")
        if not 0 < p <= 1:  # type: ignore[operator]
            raise InvalidProbabilityError(
                f"edge ({u!r}, {v!r}) probability {p!r} outside (0, 1]"
            )
        self._adj.setdefault(u, {})[v] = p
        self._adj.setdefault(v, {})[u] = p

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove edge ``(u, v)``; raises :class:`GraphError` if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        del self._adj[u][v]
        del self._adj[v][u]

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all incident edges; raises if ``v`` absent."""
        if v not in self._adj:
            raise GraphError(f"vertex {v!r} does not exist")
        for u in list(self._adj[v]):
            del self._adj[u][v]
        del self._adj[v]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n = |V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges ``m = |E|``."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> List[Vertex]:
        """Return the vertex list (insertion order)."""
        return list(self._adj)

    def edges(self) -> Iterator[Tuple[Vertex, Vertex, object]]:
        """Yield each edge once as ``(u, v, p)``."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v, p in nbrs.items():
                e = normalize_edge(u, v)
                if e not in seen:
                    seen.add(e)
                    yield (u, v, p)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return True if edge ``(u, v)`` is present."""
        return u in self._adj and v in self._adj[u]

    def probability(self, u: Vertex, v: Vertex) -> object:
        """Existence probability of edge ``(u, v)``; 0 if absent.

        Following the paper's convention (Section 2), a vertex pair with
        no edge has probability 0, which makes the clique probability of
        any non-clique vertex set 0.
        """
        if u in self._adj:
            return self._adj[u].get(v, 0)
        return 0

    def neighbors(self, v: Vertex) -> Dict[Vertex, object]:
        """Return the neighbor→probability mapping of ``v`` (do not mutate).

        Raises :class:`GraphError` if ``v`` is not a vertex.
        """
        try:
            return self._adj[v]
        except KeyError:
            raise GraphError(f"vertex {v!r} does not exist") from None

    def degree(self, v: Vertex) -> int:
        """Number of neighbors of ``v``."""
        return len(self.neighbors(v))

    def max_degree(self) -> int:
        """Maximum vertex degree ``d_max`` (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Iterable[Vertex]) -> "UncertainGraph":
        """Return the induced uncertain subgraph on ``vertices``.

        Unknown vertices are ignored, matching the behaviour of graph
        reduction pipelines that pass pruned vertex sets around.

        The result's vertex order is this graph's insertion order
        restricted to ``vertices`` — never the iteration order of the
        argument.  Callers routinely pass ``set`` objects, whose
        iteration order varies with ``PYTHONHASHSEED`` for string
        vertices; ordering-sensitive consumers (vertex orderings,
        greedy coloring, the parallel driver's identical-per-worker
        invariant) need the subgraph to be a deterministic function of
        the graph and the vertex *set* alone.
        """
        requested = set(vertices)
        keep = [v for v in self._adj if v in requested]
        sub = UncertainGraph()
        for v in keep:
            sub.add_vertex(v)
        for v in keep:
            for u, p in self._adj[v].items():
                if u in requested and not sub.has_edge(u, v):
                    sub.add_edge(u, v, p)
        return sub

    def edge_subgraph(self, edges: Iterable[Edge]) -> "UncertainGraph":
        """Return the subgraph induced by the given edge set.

        Only edges present in this graph are kept; their endpoints form
        the vertex set of the result.
        """
        sub = UncertainGraph()
        for u, v in edges:
            if self.has_edge(u, v):
                sub.add_edge(u, v, self._adj[u][v])
        return sub

    def to_deterministic(self):
        """Return the deterministic backbone: same vertices/edges, no p.

        Used by the degeneracy ordering and the coloring heuristics,
        which deliberately ignore probabilities (Section 4.5).
        """
        from repro.deterministic.graph import Graph

        g = Graph()
        for v in self._adj:
            g.add_vertex(v)
        for u, v, _p in self.edges():
            g.add_edge(u, v)
        return g

    def with_exact_probabilities(self, max_denominator: int = 10**6) -> "UncertainGraph":
        """Return a copy whose probabilities are :class:`~fractions.Fraction`.

        Exact arithmetic makes η-clique decisions independent of the
        multiplication order, which the float mode cannot guarantee.
        """
        exact = UncertainGraph()
        for v in self._adj:
            exact.add_vertex(v)
        for u, v, p in self.edges():
            if isinstance(p, Fraction):
                exact.add_edge(u, v, p)
            else:
                exact.add_edge(u, v, Fraction(p).limit_denominator(max_denominator))
        return exact

    def connected_components(self) -> List[List[Vertex]]:
        """Return connected components as vertex lists (DFS order)."""
        seen = set()
        components = []
        for start in self._adj:
            if start in seen:
                continue
            stack = [start]
            seen.add(start)
            component = []
            while stack:
                v = stack.pop()
                component.append(v)
                for u in self._adj[v]:
                    if u not in seen:
                        seen.add(u)
                        stack.append(u)
            components.append(component)
        return components

    def copy(self) -> "UncertainGraph":
        """Return an independent copy of this graph."""
        dup = UncertainGraph()
        dup._adj = {v: dict(nbrs) for v, nbrs in self._adj.items()}
        return dup

    def __repr__(self) -> str:
        return (
            f"UncertainGraph(n={self.num_vertices}, m={self.num_edges})"
        )
