"""Clique probability (Definition 1 / Eq. 2) and η-clique predicates.

The clique probability of a vertex set ``H`` on an uncertain graph is
the probability that ``H`` induces a complete subgraph in a sampled
possible world.  Because edges are independent, it equals the product of
the probabilities of all ``|H| * (|H| - 1) / 2`` pairwise edges, where a
missing edge contributes probability 0 (Eq. 2 in the paper).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.exceptions import ParameterError
from repro.uncertain.graph import UncertainGraph, Vertex


def clique_probability(graph: UncertainGraph, vertices: Iterable[Vertex]):
    """Return ``Pr(H, G)``, the probability that ``vertices`` is a clique.

    Returns 1 for the empty set and singletons (they are cliques in
    every possible world), 0 as soon as a missing edge is found.

    >>> g = UncertainGraph([(1, 2, 0.5), (2, 3, 0.5), (1, 3, 0.5)])
    >>> clique_probability(g, [1, 2, 3])
    0.125
    """
    members: Sequence[Vertex] = list(vertices)
    if len(set(members)) != len(members):
        raise ParameterError(f"vertex set contains duplicates: {members!r}")
    prob = 1
    for u, v in combinations(members, 2):
        p = graph.probability(u, v)
        if not p:
            return 0
        prob = prob * p
    return prob


def is_eta_clique(graph: UncertainGraph, vertices: Iterable[Vertex], eta) -> bool:
    """Return True if ``vertices`` is an η-clique (Definition 2).

    A set ``H`` is an η-clique when ``Pr(H, G) >= eta``.
    """
    _check_eta(eta)
    return clique_probability(graph, vertices) >= eta


def is_maximal_eta_clique(graph: UncertainGraph, vertices: Iterable[Vertex], eta) -> bool:
    """Return True if ``vertices`` is a *maximal* η-clique.

    ``H`` is maximal when it is an η-clique and no single vertex can be
    added while keeping the clique probability at least ``eta``.  Because
    the η-clique property is hereditary, checking single-vertex
    extensions suffices.
    """
    _check_eta(eta)
    members = list(vertices)
    prob = clique_probability(graph, members)
    if prob < eta:
        return False
    member_set = set(members)
    candidates = set()
    if members:
        # Only common neighbors can complete the clique.
        candidates = set(graph.neighbors(members[0]))
        for v in members[1:]:
            candidates &= set(graph.neighbors(v))
        candidates -= member_set
    else:
        candidates = set(graph.vertices())
    for w in candidates:
        ext = prob
        for v in members:
            ext = ext * graph.probability(v, w)
        if ext >= eta:
            return False
    return True


def is_maximal_k_eta_clique(
    graph: UncertainGraph, vertices: Iterable[Vertex], k: int, eta
) -> bool:
    """Return True if ``vertices`` is a maximal ``(k, η)``-clique (Def. 3)."""
    members = list(vertices)
    if k < 1:
        raise ParameterError(f"k must be a positive integer, got {k}")
    if len(members) < k:
        return False
    return is_maximal_eta_clique(graph, members, eta)


def extension_probability(graph: UncertainGraph, base_probability, members, w):
    """Clique probability of ``members + [w]`` given ``Pr(members)``.

    Multiplies ``base_probability`` by the probabilities of the edges
    from ``w`` to every member; returns 0 on a missing edge.  This is the
    incremental update all enumeration algorithms rely on.
    """
    prob = base_probability
    for v in members:
        p = graph.probability(v, w)
        if not p:
            return 0
        prob = prob * p
    return prob


def _check_eta(eta) -> None:
    if not 0 <= eta <= 1:
        raise ParameterError(f"eta must lie in [0, 1], got {eta!r}")
