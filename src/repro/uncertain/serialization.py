"""JSON serialization of uncertain graphs.

A small, versioned JSON document format for persisting uncertain graphs
with metadata — a friendlier interchange format than the whitespace
edge list of :mod:`repro.uncertain.io` when vertices carry arbitrary
labels or when results need provenance.

Document layout (version 1)::

    {
      "format": "repro-uncertain-graph",
      "version": 1,
      "metadata": {...},                       # free-form
      "vertices": ["a", "b", ...],             # includes isolated ones
      "edges": [["a", "b", 0.9], ...]
    }
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Union

from repro.exceptions import DatasetError
from repro.uncertain.graph import UncertainGraph

FORMAT_NAME = "repro-uncertain-graph"
FORMAT_VERSION = 1

PathLike = Union[str, os.PathLike]


def to_json(
    graph: UncertainGraph, metadata: Optional[Dict[str, object]] = None
) -> str:
    """Serialize ``graph`` (and optional metadata) to a JSON string."""
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "metadata": dict(metadata or {}),
        "vertices": sorted(graph.vertices(), key=repr),
        "edges": sorted(
            ([u, v, float(p)] for u, v, p in graph.edges()),
            key=lambda e: (repr(e[0]), repr(e[1])),
        ),
    }
    return json.dumps(document, indent=2, sort_keys=True, default=str)


def from_json(text: str) -> UncertainGraph:
    """Parse a graph from a JSON string produced by :func:`to_json`.

    Raises :class:`DatasetError` on malformed documents, wrong format
    markers, or unsupported versions.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DatasetError(f"invalid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise DatasetError("document root must be an object")
    if document.get("format") != FORMAT_NAME:
        raise DatasetError(
            f"unexpected format marker {document.get('format')!r}"
        )
    version = document.get("version")
    if version != FORMAT_VERSION:
        raise DatasetError(f"unsupported version {version!r}")
    graph = UncertainGraph()
    for v in document.get("vertices", []):
        graph.add_vertex(_freeze(v))
    for entry in document.get("edges", []):
        if not isinstance(entry, list) or len(entry) != 3:
            raise DatasetError(f"malformed edge entry {entry!r}")
        u, v, p = entry
        try:
            graph.add_edge(_freeze(u), _freeze(v), float(p))
        except (TypeError, ValueError) as exc:
            raise DatasetError(f"malformed edge entry {entry!r}") from exc
    return graph


def read_metadata(text: str) -> Dict[str, object]:
    """Return only the metadata object of a serialized graph."""
    document = json.loads(text)
    return dict(document.get("metadata", {}))


def save_json(
    graph: UncertainGraph,
    path: PathLike,
    metadata: Optional[Dict[str, object]] = None,
) -> None:
    """Write :func:`to_json` output to ``path``."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(to_json(graph, metadata))


def load_json(path: PathLike) -> UncertainGraph:
    """Read a graph from a JSON file written by :func:`save_json`."""
    with open(path, "r", encoding="utf-8") as f:
        return from_json(f.read())


def _freeze(vertex):
    """JSON round-trips tuples to lists; restore hashability."""
    if isinstance(vertex, list):
        return tuple(_freeze(item) for item in vertex)
    return vertex
