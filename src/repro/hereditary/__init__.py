"""The general pivot principle (Algorithm 2) for hereditary properties."""

from repro.hereditary.framework import (
    enumerate_maximal_sets,
    maximal_sets_naive,
)
from repro.hereditary.properties import (
    BoundedDegreeProperty,
    CliqueProperty,
    EtaCliqueProperty,
    HereditaryProperty,
    IndependentSetProperty,
    KPlexProperty,
)

__all__ = [
    "enumerate_maximal_sets",
    "maximal_sets_naive",
    "HereditaryProperty",
    "CliqueProperty",
    "EtaCliqueProperty",
    "IndependentSetProperty",
    "BoundedDegreeProperty",
    "KPlexProperty",
]
