"""The general pivot principle for maximal hereditary subgraphs.

This is Algorithm 2 of the paper made concrete: a set-enumeration
search over ``R / C / X`` in which each recursive call may prune a
*periphery set* ``P ⊆ C`` — any set such that ``R ∪ P`` contains no
maximal ``P``-subgraph containing ``R`` (Lemmas 1-2).  The periphery is
discovered M-pivot style: explore the pivot branch first, record the
maximum ``P``-set found, and defer candidates covered by it; deferred
candidates are re-examined whenever the recorded maximum changes
(Lemma 4), and the call stops once every remaining candidate lies
inside the final recorded maximum.

The framework is property-agnostic: give it any
:class:`~repro.hereditary.properties.HereditaryProperty` and it
enumerates all maximal ``P``-sets, demonstrating the "independent
interest" claim of Section 4.1.  It trades the incremental-probability
bookkeeping of :class:`repro.core.pmuc.PivotEnumerator` for a single
``extends`` callback, so it is the clear-but-slower general engine —
the specialized enumerator remains the fast path for η-cliques.
"""

from __future__ import annotations

from typing import List, Set

from repro.core.stats import EnumerationResult
from repro.hereditary.properties import HereditaryProperty
from repro.uncertain.graph import Vertex


def enumerate_maximal_sets(
    prop: HereditaryProperty, use_pivot: bool = True
) -> EnumerationResult:
    """Enumerate all maximal ``P``-sets of ``prop`` (Algorithm 2).

    With ``use_pivot=False`` the periphery stays empty and the search
    degenerates to plain set enumeration — handy for measuring how much
    the general pivot principle saves (``SearchStats.calls``).
    """
    result = EnumerationResult()
    engine = _PivotFramework(prop, use_pivot, result)
    engine.run()
    return result


class _PivotFramework:
    def __init__(
        self, prop: HereditaryProperty, use_pivot: bool, result: EnumerationResult
    ):
        self._prop = prop
        self._use_pivot = use_pivot
        self._result = result

    def run(self) -> None:
        universe = self._prop.universe()
        # Single-vertex P-sets are assumed admissible; drop vertices
        # that are not even singleton P-sets (e.g. eta > every edge
        # probability never affects singletons, but a property may
        # reject a vertex outright).
        candidates = [v for v in universe if self._prop.extends((), v)]
        self._recurse([], candidates, [], [], depth=1)

    def _recurse(
        self,
        r: List[Vertex],
        c: List[Vertex],
        x: List[Vertex],
        best: List[Vertex],
        depth: int,
    ) -> List[Vertex]:
        """Returns the maximum P-set containing ``r`` found so far."""
        stats = self._result.stats
        stats.calls += 1
        stats.observe_depth(depth)
        if not c and not x:
            self._result.stats.outputs += 1
            self._result.cliques.append(frozenset(r))
            return list(r)
        if not c:
            return best if len(best) > len(r) else list(r)
        unexpanded = list(c)
        periphery: Set[Vertex] = set()
        while True:
            u = next((w for w in unexpanded if w not in periphery), None)
            if u is None:
                stats.mpivot_skips += len(unexpanded)
                break
            r.append(u)
            c_new = [w for w in c if w != u and self._prop.extends(r, w)]
            x_new = [w for w in x if self._prop.extends(r, w)]
            stats.expansions += 1
            branch_best = self._recurse(r, c_new, x_new, list(r), depth + 1)
            r.pop()
            if self._use_pivot and len(periphery) < len(branch_best):
                periphery = set(branch_best)
            if len(branch_best) > len(best):
                best = branch_best
            unexpanded.remove(u)
            c.remove(u)
            x.append(u)
        return best


def maximal_sets_naive(
    prop: HereditaryProperty, limit: int = 20
) -> List[frozenset]:
    """Brute-force oracle: maximal ``P``-sets by subset enumeration.

    Exponential in the universe size (capped at ``limit`` vertices);
    used to validate the framework in tests.
    """
    from itertools import combinations

    universe = prop.universe()
    if len(universe) > limit:
        raise ValueError(
            f"naive enumeration limited to {limit} vertices, "
            f"got {len(universe)}"
        )
    p_sets = [frozenset()]
    for size in range(1, len(universe) + 1):
        found_any = False
        for subset in combinations(universe, size):
            if prop.holds(subset):
                p_sets.append(frozenset(subset))
                found_any = True
        if not found_any:
            break
    p_set_index = set(p_sets)
    maximal = [
        s
        for s in p_sets
        if s
        and not any(
            frozenset(s | {v}) in p_set_index for v in universe if v not in s
        )
    ]
    return sorted(maximal, key=lambda s: (len(s), sorted(map(repr, s))))
