"""Hereditary properties for the general pivot framework.

A vertex-set property ``P`` is *hereditary* when every subset of a
``P``-set is again a ``P``-set.  The framework in
:mod:`repro.hereditary.framework` enumerates all maximal ``P``-sets of
a graph for any such property; this module supplies the instances used
in the paper and tests:

* :class:`CliqueProperty` — complete subgraphs of a deterministic graph
  (the classic Bron–Kerbosch setting);
* :class:`EtaCliqueProperty` — η-cliques of an uncertain graph (the
  paper's setting);
* :class:`IndependentSetProperty` — edgeless subgraphs;
* :class:`BoundedDegreeProperty` — subgraphs whose induced degree is at
  most ``d`` (an `s`-defective-clique-style example showing the
  principle extends beyond cliques).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.exceptions import ParameterError
from repro.deterministic.graph import Graph
from repro.uncertain.clique_probability import clique_probability
from repro.uncertain.graph import UncertainGraph, Vertex


class HereditaryProperty:
    """Interface the framework consumes.

    Subclasses must implement :meth:`universe` (the ground vertex set)
    and :meth:`extends` (the one-vertex extension test).  ``extends``
    may assume ``members`` already satisfies the property — that is
    what heredity buys.
    """

    def universe(self) -> List[Vertex]:
        """All vertices that can participate in a ``P``-set."""
        raise NotImplementedError

    def extends(self, members: Sequence[Vertex], candidate: Vertex) -> bool:
        """Return True if ``members + [candidate]`` satisfies ``P``."""
        raise NotImplementedError

    def holds(self, vertices: Iterable[Vertex]) -> bool:
        """Full membership test (used by tests; O(|S|^2) via extends)."""
        members: List[Vertex] = []
        for v in vertices:
            if not self.extends(members, v):
                return False
            members.append(v)
        return True


class CliqueProperty(HereditaryProperty):
    """Complete subgraphs of a deterministic graph."""

    def __init__(self, graph: Graph):
        self._graph = graph

    def universe(self) -> List[Vertex]:
        return self._graph.vertices()

    def extends(self, members: Sequence[Vertex], candidate: Vertex) -> bool:
        neighbors = self._graph.neighbors(candidate)
        return all(v in neighbors for v in members)


class EtaCliqueProperty(HereditaryProperty):
    """η-cliques of an uncertain graph (Definition 2)."""

    def __init__(self, graph: UncertainGraph, eta):
        if not 0 < eta <= 1:
            raise ParameterError(f"eta must lie in (0, 1], got {eta!r}")
        self._graph = graph
        self._eta = eta

    def universe(self) -> List[Vertex]:
        return self._graph.vertices()

    def extends(self, members: Sequence[Vertex], candidate: Vertex) -> bool:
        prob = clique_probability(self._graph, list(members) + [candidate])
        return prob >= self._eta


class IndependentSetProperty(HereditaryProperty):
    """Edgeless induced subgraphs of a deterministic graph."""

    def __init__(self, graph: Graph):
        self._graph = graph

    def universe(self) -> List[Vertex]:
        return self._graph.vertices()

    def extends(self, members: Sequence[Vertex], candidate: Vertex) -> bool:
        neighbors = self._graph.neighbors(candidate)
        return not any(v in neighbors for v in members)


class KPlexProperty(HereditaryProperty):
    """``s``-plexes: every member misses at most ``s - 1`` other members.

    A vertex set ``S`` is an ``s``-plex when each ``v ∈ S`` has at
    least ``|S| - s`` neighbors inside ``S``.  For ``s = 1`` this is
    exactly the clique property.  The property is hereditary: removing
    a vertex cannot decrease any remaining vertex's slack.
    """

    def __init__(self, graph: Graph, s: int):
        if s < 1:
            raise ParameterError(f"plex parameter s must be >= 1, got {s}")
        self._graph = graph
        self._s = s

    def universe(self) -> List[Vertex]:
        return self._graph.vertices()

    def extends(self, members: Sequence[Vertex], candidate: Vertex) -> bool:
        neighbors = self._graph.neighbors(candidate)
        new_size = len(members) + 1
        missing_for_candidate = sum(1 for v in members if v not in neighbors)
        if missing_for_candidate > self._s - 1:
            return False
        for v in members:
            v_neighbors = self._graph.neighbors(v)
            inside = sum(1 for w in members if w != v and w in v_neighbors)
            if candidate in v_neighbors:
                inside += 1
            if new_size - 1 - inside > self._s - 1:
                return False
        return True


class BoundedDegreeProperty(HereditaryProperty):
    """Subgraphs whose induced degree is bounded by ``max_degree``."""

    def __init__(self, graph: Graph, max_degree: int):
        if max_degree < 0:
            raise ParameterError(
                f"max_degree must be non-negative, got {max_degree}"
            )
        self._graph = graph
        self._max_degree = max_degree

    def universe(self) -> List[Vertex]:
        return self._graph.vertices()

    def extends(self, members: Sequence[Vertex], candidate: Vertex) -> bool:
        neighbors = self._graph.neighbors(candidate)
        inside = [v for v in members if v in neighbors]
        if len(inside) > self._max_degree:
            return False
        for v in inside:
            v_inside = sum(1 for w in members if w in self._graph.neighbors(v))
            if v_inside + 1 > self._max_degree:
                return False
        return True
