"""Process-level runtime facts: peak RSS and platform fingerprints.

Two kinds of numbers keep showing up next to enumeration metrics and
keep being subtly wrong when taken ad hoc:

* **peak RSS** — ``tracemalloc`` (used by the memory benchmark) only
  sees Python allocations; the kernel backend's bitsets and the spawn
  workers' graph copies live below it.  ``resource.getrusage`` reports
  the real high-water mark the operating system charged the process.
* **platform fingerprints** — wall-clock comparisons across machines
  or interpreter versions are noise; ``repro.obs diff`` can only warn
  about a cross-platform compare if the artifacts say where they ran.

Both helpers degrade to ``None``/empty values instead of raising, so
artifact writers can stamp them unconditionally.
"""

from __future__ import annotations

import platform
import sys
from typing import Dict, Optional


def peak_rss_bytes() -> Optional[int]:
    """Peak resident-set size of this process in bytes, or None.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalized
    here so every artifact carries bytes.  Returns None on platforms
    without the ``resource`` module (e.g. Windows).
    """
    try:
        import resource
    except ImportError:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


def runtime_fingerprint() -> Dict[str, str]:
    """Where this process runs: interpreter version and platform."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def run_env() -> Dict[str, object]:
    """The full per-run environment stamp for bench records."""
    env: Dict[str, object] = {"peak_rss_bytes": peak_rss_bytes()}
    env.update(runtime_fingerprint())
    return env
