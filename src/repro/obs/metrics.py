"""The metrics registry: counters, gauges, timers, per-depth histograms.

:class:`~repro.core.stats.SearchStats` counts seven flat quantities;
the paper's figures ask *where* in the search tree the effort goes
(recursion-tree size by level, pruning effectiveness by level) and
*where the time goes* (reduction vs ordering vs recursion).  The
registry generalizes the flat counters along both axes:

* **counters** — monotonically increasing integers (``nodes``,
  ``expansions``, ``emits``, ...);
* **gauges** — last-write-wins scalars (``vertices_input``,
  ``vertices_search``);
* **timers** — accumulated seconds per named phase (``reduction``,
  ``ordering``, ``recursion``, ``sanitize``);
* **depth histograms** — integer-keyed counts per recursion depth
  (``nodes``, ``expansions``, ``emits``, ``prune_*``, and the
  depth-abused ``clique_size`` distribution).

Everything serializes to a plain, deterministically-ordered dict
(:meth:`MetricsRegistry.as_dict`) and back
(:meth:`MetricsRegistry.from_dict`), so metrics files diff cleanly and
two runs can be compared key by key.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Derived per-depth columns rendered by ``repro.obs report``: the mean
#: branching factor at depth d is ``expansions[d] / nodes[d]``.
DEPTH_METRICS = (
    "nodes",
    "expansions",
    "emits",
    "prune_kpivot",
    "prune_mpivot",
    "prune_size",
)


class MetricsRegistry:
    """A bag of named counters, gauges, timers and depth histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, float] = {}
        self._depth: Dict[str, Dict[int, int]] = {}

    # -- writers -------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value) -> None:
        """Set gauge ``name`` (last write wins)."""
        self._gauges[name] = value

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` onto phase timer ``name``."""
        self._timers[name] = self._timers.get(name, 0.0) + seconds

    def observe_depth(self, name: str, depth: int, amount: int = 1) -> None:
        """Count one (or ``amount``) events at ``depth`` in histogram
        ``name``."""
        hist = self._depth.get(name)
        if hist is None:
            hist = self._depth[name] = {}
        hist[depth] = hist.get(depth, 0) + amount

    # -- readers -------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never touched)."""
        return self._counters.get(name, 0)

    def gauge(self, name: str):
        """Current value of gauge ``name`` (None when never set)."""
        return self._gauges.get(name)

    def timer(self, name: str) -> float:
        """Accumulated seconds of phase ``name`` (0.0 when never hit)."""
        return self._timers.get(name, 0.0)

    def depth_histogram(self, name: str) -> Dict[int, int]:
        """A copy of depth histogram ``name`` (depth -> count)."""
        return dict(self._depth.get(name, {}))

    def counters(self) -> Dict[str, int]:
        """All counters, sorted by name."""
        return {k: self._counters[k] for k in sorted(self._counters)}

    def timers(self) -> Dict[str, float]:
        """All phase timers, sorted by name."""
        return {k: self._timers[k] for k in sorted(self._timers)}

    # -- combination / serialization -----------------------------------
    def merge(self, other: "MetricsRegistry", gauges: str = "last") -> None:
        """Fold ``other`` into this registry.

        Counters, timers and depth histograms always sum.  Gauges
        follow ``gauges``: ``"last"`` (default, the session semantics
        — later runs overwrite) or ``"max"`` (cross-worker merges —
        order-insensitive, and the right fold for high-water gauges
        like ``max_depth`` or ``peak_rss_bytes``; non-comparable
        values fall back to last-write).
        """
        if gauges not in ("last", "max"):
            raise ValueError(
                f"gauges must be 'last' or 'max', got {gauges!r}"
            )
        for name in sorted(other._counters):
            self.inc(name, other._counters[name])
        for name in sorted(other._gauges):
            value = other._gauges[name]
            if gauges == "max":
                current = self._gauges.get(name)
                try:
                    keep = current is not None and current >= value
                except TypeError:
                    keep = False
                if keep:
                    continue
            self.set_gauge(name, value)
        for name in sorted(other._timers):
            self.add_time(name, other._timers[name])
        for name in sorted(other._depth):
            hist = other._depth[name]
            for depth in sorted(hist):
                self.observe_depth(name, depth, hist[depth])

    def as_dict(self) -> Dict[str, object]:
        """Deterministically ordered plain-dict view.

        Depth keys become strings (JSON object keys), sorted
        numerically so the serialized form is byte-stable.
        """
        return {
            "counters": self.counters(),
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "phases": self.timers(),
            "depth": {
                name: {
                    str(depth): hist[depth] for depth in sorted(hist)
                }
                for name, hist in sorted(self._depth.items())
            },
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`as_dict` output."""
        registry = cls()
        for name, value in dict(doc.get("counters", {})).items():
            registry.inc(name, int(value))
        for name, value in dict(doc.get("gauges", {})).items():
            registry.set_gauge(name, value)
        for name, value in dict(doc.get("phases", {})).items():
            registry.add_time(name, float(value))
        for name, hist in dict(doc.get("depth", {})).items():
            for depth, count in dict(hist).items():
                registry.observe_depth(name, int(depth), int(count))
        return registry

    @classmethod
    def from_search_stats(cls, stats) -> "MetricsRegistry":
        """Bridge a flat :class:`SearchStats` into registry counters.

        Used by reports that want one uniform view over runs recorded
        before the observability layer existed (e.g. old BENCH files).
        """
        registry = cls()
        for name, value in stats.as_dict().items():
            if name == "max_depth":
                registry.set_gauge("max_depth", value)
            else:
                registry.inc(name, value)
        return registry

    def branching_factors(self) -> Dict[int, Optional[float]]:
        """Mean branching factor per depth: expansions[d] / nodes[d]."""
        nodes = self._depth.get("nodes", {})
        expansions = self._depth.get("expansions", {})
        return {
            depth: (
                expansions.get(depth, 0) / nodes[depth]
                if nodes[depth]
                else None
            )
            for depth in sorted(nodes)
        }
