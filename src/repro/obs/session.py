"""Observation sessions: collect per-run observers, write artifacts.

The enumerators build their own :class:`~repro.obs.observer.Observer`
per run (via :func:`~repro.obs.observer.build_observer`), which is the
right granularity for metrics but the wrong one for artifacts: a
benchmark executes many runs and wants *one* trace file, *one* folded
profile, *one* metrics document.  An :class:`ObsSession` bridges the
two — while a session is active (the :func:`observe` context manager),
every observer built anywhere in the process registers with it, and the
session writes the combined artifacts when the context exits:

>>> with observe(trace_path="run.trace.jsonl") as session:
...     PivotEnumerator(graph, k, eta, config).run()
>>> session.metrics_document()["merged"]["counters"]["outputs"]

Sessions nest (a stack); observers register with the innermost one.
Runs appear in the trace as separate thread lanes (``tid`` 1, 2, ...)
named after their backend.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import DEFAULT_SAMPLE_EVERY, Observer
from repro.obs.tracer import FoldedStacks

#: Schema tag of the session metrics document (see ``repro.obs diff``).
METRICS_SCHEMA = "repro.obs/metrics-v1"

_ACTIVE: List["ObsSession"] = []


def current_session() -> Optional["ObsSession"]:
    """The innermost active session, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


class ObsSession:
    """One observation window over any number of enumeration runs."""

    def __init__(
        self,
        trace_path: Optional[str] = None,
        folded_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
        clock=None,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        progress=None,
        flight=None,
    ) -> None:
        self.trace_path = trace_path
        self.folded_path = folded_path
        self.metrics_path = metrics_path
        self.clock = clock
        self.sample_every = sample_every
        #: Optional :class:`~repro.obs.progress.ProgressTracker` /
        #: :class:`~repro.obs.flight.FlightRecorder` handed to every
        #: observer built inside the session — the seam the ``--progress``
        #: CLI flags and the parallel workers' flight logs ride.
        self.progress = progress
        self.flight = flight
        self.observers: List[Observer] = []

    def register(self, observer: Observer) -> None:
        """Attach one run's observer; assigns its trace lane."""
        self.observers.append(observer)
        observer.progress = self.progress
        observer.flight = self.flight
        if observer.tracer is not None:
            observer.tracer.set_tid(len(self.observers))

    # -- combined artifact views ---------------------------------------
    def trace_jsonl(self) -> str:
        """All runs' trace events as one JSONL stream."""
        return "".join(
            observer.tracer.to_jsonl()
            for observer in self.observers
            if observer.tracer is not None
        )

    def folded_text(self) -> str:
        """All runs' sampled stacks merged into one folded profile."""
        merged = FoldedStacks()
        for observer in self.observers:
            if observer.folded is not None:
                merged.merge(observer.folded)
        return merged.render()

    def metrics_document(self) -> Dict[str, object]:
        """Per-run and merged metrics as a plain JSON-ready document."""
        merged = MetricsRegistry()
        runs = []
        for index, observer in enumerate(self.observers):
            merged.merge(observer.metrics)
            runs.append({
                "index": index,
                "backend": observer.backend,
                "variant": observer.variant,
                "level": observer.level,
                "metrics": observer.metrics.as_dict(),
            })
        # Imported lazily: keeps the session importable on platforms
        # without the resource module until a document is rendered.
        from repro.obs.runtime import runtime_fingerprint

        return {
            "schema": METRICS_SCHEMA,
            "env": runtime_fingerprint(),
            "runs": runs,
            "merged": merged.as_dict(),
        }

    def finish(self) -> None:
        """Write every configured artifact file."""
        if self.trace_path is not None:
            with open(self.trace_path, "w") as handle:
                handle.write(self.trace_jsonl())
        if self.folded_path is not None:
            with open(self.folded_path, "w") as handle:
                handle.write(self.folded_text())
        if self.metrics_path is not None:
            with open(self.metrics_path, "w") as handle:
                json.dump(self.metrics_document(), handle, indent=2)
                handle.write("\n")


@contextmanager
def observe(
    trace_path: Optional[str] = None,
    folded_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    clock=None,
    sample_every: int = DEFAULT_SAMPLE_EVERY,
    progress=None,
    flight=None,
):
    """Activate an :class:`ObsSession` for the duration of the block.

    Artifacts are written on exit even when the block raises, so a
    crashed benchmark still leaves its partial trace behind for
    inspection.  ``progress``/``flight`` are handed to every observer
    the block builds (see :class:`ObsSession`).
    """
    session = ObsSession(
        trace_path=trace_path,
        folded_path=folded_path,
        metrics_path=metrics_path,
        clock=clock,
        sample_every=sample_every,
        progress=progress,
        flight=flight,
    )
    _ACTIVE.append(session)
    try:
        yield session
    finally:
        _ACTIVE.pop()
        session.finish()
