"""Trace-diff regression gating: compare two observation artifacts.

``python -m repro.obs diff BASELINE CURRENT`` aligns the runs of two
metrics/bench documents by key (``workload/backend`` for bench
trajectories and kernel-speedup documents, ``run<i>/<backend>`` for
session documents) and flags:

* a **missing run** — a key present in the baseline but not in the
  current document;
* an **output drift** — ``outputs`` differs at all (clique counts are
  deterministic; any change is a correctness signal, not noise);
* a **counter regression** — any other search counter (``calls``,
  ``expansions``, ...) grew beyond ``--counter-threshold`` (default
  2%; counters are deterministic for a fixed workload, so the slack
  only absorbs intentional small algorithm changes);
* a **time regression** — ``seconds`` grew beyond ``--time-threshold``
  (default 50%; wall-clock comparisons cross machines, so the gate is
  generous by design and the counters carry the precision).

Documents are refused outright (exit 2, like any unusable input) when
the two sides ran on disjoint backends — dict-vs-kernel wall clocks are
not comparable, and the per-key alignment would otherwise report every
run as missing.  The same refusal applies per aligned run when both
sides carry a recursion **variant** stamp (see
:func:`repro.engine.driver.variant_id`) and the stamps disagree: a
hooked variant's wall clock is not comparable to the production
closure's, so e.g. an ``--obs full`` re-run must never be gated against
an obs-off baseline.  Artifacts predating the stamp (``variant``
absent) are always accepted.

A **cross-platform** compare (both documents carry a
python/platform fingerprint — see :mod:`repro.obs.runtime` — and they
disagree) only *warns*: the deterministic counters still gate, but the
wall-clock numbers cross machines, so the warning tells the reader
which side of the threshold to trust.  Artifacts without fingerprints
compare silently, as before.

Exit status: 0 clean, 1 regression found, 2 unusable input.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.report import load_artifact

#: Counters whose growth beyond the threshold is a regression.  The
#: complement (prune/skip counters) shrinking is what a *lost*
#: optimization looks like, which shows up here as ``calls`` /
#: ``expansions`` growth — gating on effort, not on technique.
_EFFORT_COUNTERS = ("calls", "expansions")

#: Absolute slack added on top of the relative counter threshold, so
#: near-zero baselines do not flag one-unit jitter as a regression.
_COUNTER_SLACK = 2

DEFAULT_TIME_THRESHOLD = 1.5
DEFAULT_COUNTER_THRESHOLD = 1.02


class Series:
    """One comparable run: a key, optional seconds, counter dict.

    ``backend`` is the stamped execution backend of the run and
    ``variant`` the stamped recursion variant (either None on
    artifacts predating the stamps); :func:`compare` refuses to gate
    one backend's or variant's numbers against another's.  ``env`` is
    the run's own python/platform fingerprint when the record carries
    one (harness records stamp it per run) — :func:`compare` warns
    **once per distinct drift per invocation** when aligned runs
    crossed machines, never once per compared row.
    """

    def __init__(self, key: str, seconds: Optional[float],
                 counters: Dict[str, int],
                 backend: Optional[str] = None,
                 variant: Optional[str] = None,
                 env: Optional[Dict[str, str]] = None) -> None:
        self.key = key
        self.seconds = seconds
        self.counters = counters
        self.backend = backend
        self.variant = variant
        self.env = env or {}


def _run_env(run: Dict[str, object]) -> Dict[str, str]:
    """Per-run python/platform fingerprint keys, if stamped."""
    source = run.get("env")
    if not isinstance(source, dict):
        source = run
    return {
        key: str(source[key])
        for key in ("platform", "python")
        if isinstance(source.get(key), str)
    }


def extract_series(kind: str, payload) -> List[Series]:
    """Comparable series from a loaded artifact (see ``load_artifact``)."""
    if kind == "bench":
        series = []
        for run in payload.get("runs", []):
            counters = dict(run.get("stats", {}))
            counters.pop("max_depth", None)
            if not counters:
                counters = dict(
                    run.get("metrics", {}).get("counters", {})
                )
            series.append(Series(
                "%s/%s" % (run.get("workload"), run.get("backend")),
                run.get("seconds"),
                counters,
                run.get("backend"),
                run.get("variant"),
                _run_env(run),
            ))
        return series
    if kind == "metrics":
        series = []
        for run in payload.get("runs", []):
            metrics = run.get("metrics", {})
            phases = metrics.get("phases", {})
            seconds = sum(phases.values()) if phases else None
            series.append(Series(
                "run%s/%s" % (run.get("index"), run.get("backend")),
                seconds,
                dict(metrics.get("counters", {})),
                run.get("backend"),
                run.get("variant"),
                _run_env(run),
            ))
        return series
    if kind == "speedup":
        series = []
        for record in payload.get("workloads", []):
            best = record.get("best_s", {}) or {}
            variants = record.get("variants", {}) or {}
            counters = {}
            if record.get("outputs") is not None:
                counters["outputs"] = record.get("outputs")
            for backend in sorted(best):
                series.append(Series(
                    "%s/%s" % (record.get("name"), backend),
                    best.get(backend),
                    dict(counters),
                    backend,
                    variants.get(backend),
                ))
        return series
    raise ValueError(
        "trace JSONL files carry no comparable counters; diff the "
        "metrics document or bench trajectory instead"
    )


def load_series(path: str) -> List[Series]:
    """Load ``path`` and extract its comparable series."""
    kind, payload = load_artifact(path)
    return extract_series(kind, payload)


def document_env(payload) -> Dict[str, str]:
    """The python/platform fingerprint of a loaded document, if any.

    Looks at the top-level ``env`` dict (session metrics documents,
    speedup documents) and falls back to fingerprint keys inside
    ``meta`` (bench trajectories).  Documents predating the stamp
    return an empty dict and never trigger the warning.
    """
    if not isinstance(payload, dict):
        return {}
    env = payload.get("env")
    source = env if isinstance(env, dict) else payload.get("meta", {})
    if not isinstance(source, dict):
        return {}
    return {
        key: str(source[key])
        for key in ("platform", "python")
        if source.get(key) is not None
    }


def platform_warning(
    base_env: Dict[str, str], run_env: Dict[str, str]
) -> Optional[str]:
    """A warning line when both sides say where they ran and disagree."""
    drift = [
        "%s %s -> %s" % (key, base_env[key], run_env[key])
        for key in ("python", "platform")
        if key in base_env and key in run_env
        and base_env[key] != run_env[key]
    ]
    if not drift:
        return None
    return (
        "warning: cross-platform compare (%s); wall-clock numbers "
        "cross machines — trust the deterministic counters, not the "
        "time thresholds" % "; ".join(drift)
    )


def compare(
    baseline: List[Series],
    current: List[Series],
    time_threshold: float = DEFAULT_TIME_THRESHOLD,
    counter_threshold: float = DEFAULT_COUNTER_THRESHOLD,
    only_common: bool = False,
) -> Tuple[List[str], List[str]]:
    """Compare aligned series; return ``(log_lines, regressions)``.

    ``only_common`` downgrades a baseline run missing from the current
    document from a regression to a log line — for gating a *partial*
    re-run (e.g. CI's ``--quick`` slice) against a full committed
    baseline.  Runs present on both sides are still fully compared.
    """
    base_backends = {s.backend for s in baseline if s.backend}
    run_backends = {s.backend for s in current if s.backend}
    if base_backends and run_backends and not (base_backends & run_backends):
        # Dict and kernel runs have identical clique sets and search
        # counters but wildly different wall-clock profiles; a
        # cross-backend "comparison" would gate noise.  Refuse loudly
        # (the CLI maps this to exit 2) instead of reporting every run
        # as missing.
        raise ValueError(
            "cross-backend comparison: baseline ran on %s but current "
            "ran on %s; re-run the benchmark on the same backend "
            "before diffing"
            % (
                "/".join(sorted(base_backends)),
                "/".join(sorted(run_backends)),
            )
        )
    lines: List[str] = []
    regressions: List[str] = []
    # Per-run fingerprint drift collapses to one warning per distinct
    # drift for the whole invocation (ordered-unique), not one per
    # compared row — a 50-row artifact from another machine warns once.
    warnings: List[str] = []
    current_by_key = {series.key: series for series in current}
    compared = 0
    for base in baseline:
        run = current_by_key.get(base.key)
        if run is not None:
            warning = platform_warning(base.env, run.env)
            if warning is not None and warning not in warnings:
                warnings.append(warning)
        if run is None:
            if only_common:
                lines.append("%s: not in current, skipped" % base.key)
            else:
                regressions.append("%s: missing from current" % base.key)
            continue
        if (
            base.variant is not None
            and run.variant is not None
            and base.variant != run.variant
        ):
            # A hooked variant's wall clock is not comparable to the
            # production closure's.  Refuse (exit 2) rather than gate
            # noise; unstamped legacy artifacts never reach here.
            raise ValueError(
                "cross-variant comparison on %s: baseline ran variant "
                "%s but current ran %s; re-run with matching "
                "sanitize/obs settings before diffing"
                % (base.key, base.variant, run.variant)
            )
        compared += 1
        lines.extend(_compare_run(
            base, run, time_threshold, counter_threshold, regressions
        ))
    baseline_keys = {series.key for series in baseline}
    for series in current:
        if series.key not in baseline_keys:
            lines.append("%s: new run (no baseline)" % series.key)
    if only_common and baseline and not compared:
        # An empty intersection must not read as a clean gate.
        regressions.append(
            "no common runs between baseline and current"
        )
    return warnings + lines, regressions


def _compare_run(base, run, time_threshold, counter_threshold,
                 regressions) -> List[str]:
    lines = []
    base_outputs = base.counters.get("outputs")
    run_outputs = run.counters.get("outputs")
    if (
        base_outputs is not None
        and run_outputs is not None
        and base_outputs != run_outputs
    ):
        regressions.append(
            "%s: outputs changed %s -> %s (clique counts are "
            "deterministic; investigate before re-baselining)"
            % (base.key, base_outputs, run_outputs)
        )
    for name in _EFFORT_COUNTERS:
        base_value = base.counters.get(name)
        run_value = run.counters.get(name)
        if base_value is None or run_value is None:
            continue
        allowed = base_value * counter_threshold + _COUNTER_SLACK
        if run_value > allowed:
            regressions.append(
                "%s: %s grew %s -> %s (>%.0f%% threshold)"
                % (base.key, name, base_value, run_value,
                   (counter_threshold - 1.0) * 100.0)
            )
        else:
            lines.append(
                "%s: %s %s -> %s ok"
                % (base.key, name, base_value, run_value)
            )
    if base.seconds is not None and run.seconds is not None:
        if base.seconds > 0 and run.seconds > base.seconds * time_threshold:
            regressions.append(
                "%s: seconds grew %.4f -> %.4f (>%.0f%% threshold)"
                % (base.key, base.seconds, run.seconds,
                   (time_threshold - 1.0) * 100.0)
            )
        else:
            lines.append(
                "%s: seconds %.4f -> %.4f ok"
                % (base.key, base.seconds, run.seconds)
            )
    return lines


def diff_paths(
    baseline_path: str,
    current_path: str,
    time_threshold: float = DEFAULT_TIME_THRESHOLD,
    counter_threshold: float = DEFAULT_COUNTER_THRESHOLD,
    only_common: bool = False,
) -> Tuple[List[str], List[str]]:
    """File-level entry point used by the CLI and CI gate."""
    base_kind, base_payload = load_artifact(baseline_path)
    run_kind, run_payload = load_artifact(current_path)
    lines, regressions = compare(
        extract_series(base_kind, base_payload),
        extract_series(run_kind, run_payload),
        time_threshold=time_threshold,
        counter_threshold=counter_threshold,
        only_common=only_common,
    )
    warning = platform_warning(
        document_env(base_payload), document_env(run_payload)
    )
    if warning is not None and warning not in lines:
        # The document-level stamp usually restates the per-run drift
        # compare() already surfaced; dedupe so one invocation prints
        # each distinct warning exactly once.
        lines.insert(0, warning)
    return lines, regressions
