"""Live progress/ETA estimation for a running enumeration.

Algorithm 3's outer loop visits each surviving root vertex once, and
the recursion under root ``v`` is confined to ``v``'s candidate set —
so ``|C(v)| + 1`` is a cheap, already-computed proxy for the relative
mass of ``v``'s subtree, in the spirit of the root-level subtree
estimates Li et al. (arXiv:2009.10376) use to predict clique-set
sizes.  The tracker accumulates *explored* mass (roots already
finished) against *outstanding* mass (the current root plus the
remaining roots at the observed mean weight) and scales elapsed wall
time into an ETA.

Accuracy caveats (also in ``docs/observability.md``): the weights are
frontier sizes, not subtree sizes — pruning makes dense early roots
cheaper than their weight suggests and deep sparse tails costlier —
and the estimate only updates at root granularity, so a single
monster root (the paper's dense worst case) freezes the fraction
until it completes.  The number is a progress indicator, not a bound.

The tracker is pull-free and in-band: the engine's ``on_root`` hook
(see :meth:`repro.obs.observer.Observer.on_root`) feeds it, and it
throttles its own stream rendering, so attaching it costs one method
call per root — nothing per recursion node.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

#: Minimum seconds between rendered progress lines.
DEFAULT_INTERVAL = 1.0


class ProgressTracker:
    """Explored-vs-outstanding frontier mass, with throttled rendering.

    ``stream`` is any object with ``write``/``flush`` (``sys.stderr``
    for the CLI flags, a list-backed fake in tests, or None to only
    accumulate).  ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        stream=None,
        interval: float = DEFAULT_INTERVAL,
        clock=None,
        label: str = "",
    ) -> None:
        self.stream = stream
        self.interval = interval
        self.label = label
        self._clock = clock if clock is not None else time.monotonic
        self._reset()

    def _reset(self) -> None:
        self._start = self._clock()
        self._last_render: Optional[float] = None
        self.roots_done = 0
        self.roots_total = 0
        self.explored = 0.0
        self.current_weight = 0.0

    # -- the in-band feed ----------------------------------------------
    def on_root(self, index: int, total: int, weight: int) -> None:
        """Root ``index`` of ``total`` is about to start; ``weight``
        is its frontier-mass estimate (``|C| + 1``).

        ``index == 0`` resets the tracker, so one tracker instance can
        ride a session across many runs (each run restarts the
        estimate).
        """
        if index == 0:
            self._reset()
        self.roots_done = index
        self.roots_total = total
        self.explored += self.current_weight
        self.current_weight = float(weight)
        self._maybe_render()

    # -- derived views -------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The current estimate as a plain dict (flight heartbeats)."""
        done = self.roots_done
        total = self.roots_total
        mean = self.explored / done if done else self.current_weight
        remaining_roots = max(0, total - done - 1)
        outstanding = self.current_weight + mean * remaining_roots
        mass = self.explored + outstanding
        fraction = self.explored / mass if mass > 0 else 0.0
        elapsed = self._clock() - self._start
        eta: Optional[float] = None
        if 0.0 < fraction < 1.0:
            eta = elapsed * (1.0 - fraction) / fraction
        elif fraction >= 1.0:
            eta = 0.0
        return {
            "roots_done": done,
            "roots_total": total,
            "fraction": fraction,
            "elapsed_s": elapsed,
            "eta_s": eta,
        }

    def render(self) -> str:
        """One human-readable progress line."""
        snap = self.snapshot()
        eta = snap["eta_s"]
        prefix = f"{self.label}: " if self.label else ""
        return (
            "%sprogress %5.1f%%  root %d/%d  elapsed %.1fs  eta %s"
            % (
                prefix,
                100.0 * snap["fraction"],
                snap["roots_done"],
                snap["roots_total"],
                snap["elapsed_s"],
                "%.1fs" % eta if eta is not None else "-",
            )
        )

    def _maybe_render(self) -> None:
        if self.stream is None:
            return
        now = self._clock()
        if (
            self._last_render is not None
            and now - self._last_render < self.interval
        ):
            return
        self._last_render = now
        self.stream.write(self.render() + "\n")
        flush = getattr(self.stream, "flush", None)
        if flush is not None:
            flush()
