"""The observer: the hook protocol both enumeration backends call.

Mirrors the runtime sanitizer's seam exactly (see
:mod:`repro.sanitize.sanitizer`): each backend binds the observer to a
local named ``obs`` and calls the same hooks from the same control-flow
positions, guarded by ``if obs is not None`` so a disabled observer
costs nothing.  The REP008 lint rule compares the two hook streams
statically, like REP007 does for the sanitizer.

Recursion hooks (hot path — counters only, plus 1-in-N sampling):

=================================  ===================================
hook                               meaning
=================================  ===================================
``on_node(depth, path)``           one recursion node entered; ``path``
                                   is the current ``R`` (labels on the
                                   dict backend, int ids on the kernel
                                   — see :meth:`Observer.set_labels`)
``on_emit(depth, size)``           one maximal clique of ``size``
                                   vertices emitted at ``depth``
``on_expand(depth)``               one candidate branch expanded
``on_prune(kind, depth, count)``   one pruning decision: ``kind`` is
                                   ``"kpivot"``, ``"mpivot"`` (with
                                   ``count`` skipped candidates) or
                                   ``"size"``
=================================  ===================================

Driver hooks (once per run, plus once per outer-loop root):

``on_gauge(name, value)``, ``on_phase(name, seconds)`` for the fixed
phase sequence reduction / ordering / recursion / sanitize,
``on_root(index, total, candidates)`` once per root of the outer seed
loop (feeds the progress estimator and flight heartbeats — see
:mod:`repro.obs.progress` and :mod:`repro.obs.flight`), and
``on_finish(stats)`` which folds the flat
:class:`~repro.core.stats.SearchStats` counters into the registry.
``on_root`` lives in the run lifecycle, not the recursion template,
so REP009's guarantee is untouched: hooks-off compiled variants carry
no progress or flight branches (REP008 covers the lifecycle site).

Levels: ``"light"`` keeps only the flat counters, gauges and phase
timers (the cheapest hooked mode — per-worker telemetry for parallel
runs); ``"metrics"`` adds the per-depth histograms; ``"full"``
additionally records Chrome-trace phase spans, sampled node instants,
and folded stacks for flamegraphs.  Node sampling is counter-based
(every ``sample_every``-th ``on_node``), never random, so traces are
deterministic.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from repro.exceptions import ParameterError
from repro.core.config import OBS_CHOICES
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import FoldedStacks, Tracer

#: Default node-sampling period for ``full`` observation: every N-th
#: ``on_node`` contributes a folded-stack sample and a trace instant.
DEFAULT_SAMPLE_EVERY = 64

#: Root frame of every folded stack.
ROOT_FRAME = "enumerate"

#: Emission-milestone cadence: every N-th emitted clique writes a
#: flight-recorder breadcrumb when a recorder is attached.
MILESTONE_EVERY = 256


def resolve_level(config) -> str:
    """The effective observation level for ``config``.

    The ``REPRO_OBS`` environment variable applies only when the config
    leaves the level at ``"off"`` — an explicit ``PivotConfig(obs=...)``
    always wins, mirroring ``REPRO_SANITIZE``.
    """
    level = getattr(config, "obs", "off")
    if level == "off":
        env = os.environ.get("REPRO_OBS", "").strip()
        if env:
            level = env
            if level not in OBS_CHOICES:
                raise ParameterError(
                    f"REPRO_OBS must be one of {OBS_CHOICES}, "
                    f"got {level!r}"
                )
    return level


def build_observer(config, backend: str = "dict") -> Optional["Observer"]:
    """An :class:`Observer` for this run, or None when disabled.

    When an :func:`~repro.obs.session.observe` session is active, the
    observer inherits the session's clock and sampling period and is
    registered with it, so the session can write the combined trace,
    folded-stack, and metrics artifacts on exit.
    """
    level = resolve_level(config)
    if level == "off":
        return None
    # Imported lazily so a metrics-only consumer never pays for the
    # session module (and to keep the import graph acyclic when the
    # enumerators import this module lazily from run()).
    from repro.obs.session import current_session

    session = current_session()
    observer = Observer(
        level=level,
        backend=backend,
        clock=session.clock if session is not None else None,
        sample_every=(
            session.sample_every
            if session is not None
            else DEFAULT_SAMPLE_EVERY
        ),
    )
    if session is not None:
        session.register(observer)
    return observer


class Observer:
    """Receives enumeration hooks; accumulates metrics and traces."""

    def __init__(
        self,
        level: str = "metrics",
        backend: str = "dict",
        clock=None,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
    ) -> None:
        if level not in OBS_CHOICES or level == "off":
            raise ParameterError(
                "obs level must be 'light', 'metrics' or 'full', "
                f"got {level!r}"
            )
        self.level = level
        self.backend = backend
        #: Optional :class:`~repro.obs.progress.ProgressTracker` and
        #: :class:`~repro.obs.flight.FlightRecorder`; attached by the
        #: session (:meth:`repro.obs.session.ObsSession.register`) so
        #: the engine seam stays a plain hook call.
        self.progress = None
        self.flight = None
        #: :func:`repro.engine.driver.variant_id` of the compiled
        #: recursion variant this run executed; stamped by
        #: ``SearchEngine.run`` before the search starts and copied
        #: into session and bench documents so ``repro.obs diff`` can
        #: refuse cross-variant comparisons.
        self.variant: Optional[str] = None
        self.metrics = MetricsRegistry()
        self._full = level == "full"
        # ``light`` drops the per-depth histograms: the flat counters
        # arrive via ``on_finish`` regardless, so light-mode hooks on
        # the hot path reduce to attribute loads and a no-op branch.
        self._histograms = level != "light"
        self._sample_every = max(1, int(sample_every))
        self._labels: Optional[List] = None
        self._node_seq = 0
        self._emit_seq = 0
        self._phase_cursor_us = 0
        self.tracer: Optional[Tracer] = None
        self.folded: Optional[FoldedStacks] = None
        if self._full:
            self.tracer = Tracer(clock=clock)
            self.folded = FoldedStacks()
            self.tracer.metadata("process_name", {"name": "repro"})
            self.tracer.metadata(
                "thread_name", {"name": f"{backend} backend"}
            )
            # Machine-readable backend stamp: trace consumers (and the
            # diff gate) should not have to parse the display name.
            self.tracer.metadata("backend", {"name": backend})

    def set_labels(self, labels: Sequence) -> None:
        """Install the id -> label table of the kernel backend.

        The kernel recursion passes raw int-id paths to ``on_node``;
        translation happens only for the 1-in-N sampled nodes, so the
        hot path never pays for it.
        """
        self._labels = list(labels)

    def _frames(self, path) -> List[str]:
        labels = self._labels
        if labels is None:
            return [ROOT_FRAME] + [str(v) for v in path]
        return [ROOT_FRAME] + [str(labels[v]) for v in path]

    # -- recursion hooks (hot path) ------------------------------------
    def on_node(self, depth: int, path) -> None:
        if self._histograms:
            self.metrics.observe_depth("nodes", depth)
        if self._full:
            seq = self._node_seq
            self._node_seq = seq + 1
            if not seq % self._sample_every:
                frames = self._frames(path)
                self.folded.add(frames)
                self.tracer.instant(
                    "node",
                    self.tracer.now_us(),
                    {"depth": depth, "stack": ";".join(frames)},
                )

    def on_emit(self, depth: int, size: int) -> None:
        if self._histograms:
            self.metrics.observe_depth("emits", depth)
            self.metrics.observe_depth("clique_size", size)
        seq = self._emit_seq = self._emit_seq + 1
        flight = self.flight
        if flight is not None and not seq % MILESTONE_EVERY:
            flight.milestone(outputs=seq)

    def on_expand(self, depth: int) -> None:
        if self._histograms:
            self.metrics.observe_depth("expansions", depth)

    def on_prune(self, kind: str, depth: int, count: int = 1) -> None:
        # A zero count (an mpivot cover that skipped nothing) records
        # no histogram entry — the backends reach such no-op sites from
        # different control flow, and "nothing pruned" must look
        # identical either way.
        if count and self._histograms:
            self.metrics.observe_depth("prune_" + kind, depth, count)

    # -- driver hooks (once per run) -----------------------------------
    def on_gauge(self, name: str, value) -> None:
        self.metrics.set_gauge(name, value)

    def on_root(self, index: int, total: int, candidates) -> None:
        """One outer-loop root is about to be searched.

        ``candidates`` is the root's candidate frontier in the
        backend's own shape — a dict on the dict backend, a
        ``[bits, members]`` pair (or None when empty) on the kernel —
        used only for its size, the subtree-mass proxy the progress
        estimator consumes.  Throttling lives in the attached tracker
        and recorder, so the per-root cost without them is two
        attribute loads.
        """
        if not index:
            self.metrics.set_gauge("roots_total", total)
        progress = self.progress
        flight = self.flight
        if progress is not None:
            progress.on_root(index, total, _root_weight(candidates))
        if flight is not None:
            gauges = {"roots_done": index, "roots_total": total}
            if progress is not None:
                snap = progress.snapshot()
                gauges["fraction"] = round(
                    float(snap["fraction"]), 4
                )
            flight.heartbeat(**gauges)

    def on_phase(self, name: str, seconds: float) -> None:
        """Record one named phase; ``full`` also emits a trace span.

        Spans are laid out back to back on a synthetic timeline (the
        phases are measured, not traced live), so the trace viewer
        shows their relative widths without wall-clock noise between
        them.
        """
        self.metrics.add_time(name, seconds)
        if self._full:
            dur = int(round(seconds * 1e6))
            self.tracer.complete_span(name, self._phase_cursor_us, dur)
            self._phase_cursor_us += dur

    def on_finish(self, stats=None) -> None:
        """Fold the run's flat ``SearchStats`` into the registry."""
        if stats is not None:
            flat = stats.as_dict()
            for name in sorted(flat):
                if name == "max_depth":
                    self.metrics.set_gauge("max_depth", flat[name])
                else:
                    self.metrics.inc(name, flat[name])
        if self._full:
            self.metrics.set_gauge(
                "sampled_nodes", self.folded.total_weight()
            )


def _root_weight(candidates) -> int:
    """Frontier mass of one root: ``|C| + 1`` across backend shapes."""
    if candidates is None:
        return 1
    if isinstance(candidates, list):
        # Kernel state: ``[bits, members]``; the member list is the
        # iteration view whose length is the frontier size.
        return len(candidates[1]) + 1
    try:
        return len(candidates) + 1
    except TypeError:
        return 1
