"""Deterministic trace emission: Chrome trace events and folded stacks.

Two artifact formats, both plain text and line-oriented so they diff
cleanly and load in stock tooling:

* **Chrome trace event format** (JSONL, one event object per line) —
  drop the file onto ``chrome://tracing`` / Perfetto's legacy loader,
  or post-process it programmatically (``repro.obs report`` does).
  We emit complete spans (``"ph": "X"``), instants (``"ph": "i"``)
  and metadata records (``"ph": "M"``); timestamps and durations are
  integer microseconds relative to the tracer's epoch.
* **Folded stacks** (``frame;frame;frame count`` per line) — the
  input format of ``flamegraph.pl`` and speedscope, aggregated from
  sampled recursion paths.

Determinism: the tracer never reads a wall clock unless asked to — a
clock callable is injected (tests pass a fake), event order is
insertion order, and serialization sorts JSON keys.  Two runs with the
same clock and the same enumeration produce byte-identical output
regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple


def _default_clock() -> float:
    """Monotonic seconds; only used when no clock is injected."""
    return time.perf_counter()


class Tracer:
    """Collects Chrome-trace-event records with a relative time base."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 pid: int = 1, tid: int = 1) -> None:
        self._clock = clock if clock is not None else _default_clock
        self._epoch = self._clock()
        self._pid = pid
        self._tid = tid
        self._events: List[Dict[str, object]] = []

    def set_tid(self, tid: int) -> None:
        """Move this tracer (and its recorded events) to thread ``tid``.

        Used by :class:`~repro.obs.session.ObsSession` to give each
        registered run its own lane in a shared trace file; only the
        metadata records emitted at construction exist at that point,
        so the rewrite is O(1) in practice.
        """
        self._tid = tid
        for event in self._events:
            event["tid"] = tid

    # -- time ----------------------------------------------------------
    def now_us(self) -> int:
        """Microseconds since this tracer's epoch."""
        return int(round((self._clock() - self._epoch) * 1e6))

    # -- event writers -------------------------------------------------
    def metadata(self, name: str, args: Dict[str, object]) -> None:
        """A ``"M"`` metadata record (e.g. process/thread names)."""
        self._events.append({
            "ph": "M",
            "name": name,
            "pid": self._pid,
            "tid": self._tid,
            "args": args,
        })

    def complete_span(self, name: str, start_us: int, dur_us: int,
                      args: Optional[Dict[str, object]] = None,
                      cat: str = "phase") -> None:
        """A ``"X"`` complete span: one phase with start + duration."""
        event: Dict[str, object] = {
            "ph": "X",
            "name": name,
            "cat": cat,
            "ts": int(start_us),
            "dur": int(dur_us),
            "pid": self._pid,
            "tid": self._tid,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def instant(self, name: str, ts_us: int,
                args: Optional[Dict[str, object]] = None,
                cat: str = "sample") -> None:
        """An ``"i"`` instant event (thread-scoped)."""
        event: Dict[str, object] = {
            "ph": "i",
            "name": name,
            "cat": cat,
            "ts": int(ts_us),
            "s": "t",
            "pid": self._pid,
            "tid": self._tid,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    # -- readers / serialization ---------------------------------------
    def events(self) -> List[Dict[str, object]]:
        """The recorded events, in insertion order."""
        return list(self._events)

    def to_jsonl(self) -> str:
        """One sorted-keys JSON object per line (byte-deterministic)."""
        return "".join(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
            for event in self._events
        )


def read_jsonl(text: str) -> List[Dict[str, object]]:
    """Parse a JSONL trace back into event dicts (blank lines skipped)."""
    events = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events


class FoldedStacks:
    """Aggregated sampled stacks in flamegraph.pl's folded format.

    Frames are joined with ``;`` root-first; the weight of a stack is
    the number of (sampled) recursion nodes observed beneath it.
    """

    def __init__(self) -> None:
        self._weights: Dict[Tuple[str, ...], int] = {}

    def add(self, frames: Iterable[str], weight: int = 1) -> None:
        """Record ``weight`` samples for the stack ``frames``."""
        key = tuple(frames)
        self._weights[key] = self._weights.get(key, 0) + weight

    def __len__(self) -> int:
        return len(self._weights)

    def total_weight(self) -> int:
        """Sum of all sample weights."""
        return sum(self._weights.values())

    def items(self) -> List[Tuple[Tuple[str, ...], int]]:
        """(stack, weight) pairs, sorted by stack."""
        return [(key, self._weights[key]) for key in sorted(self._weights)]

    def merge(self, other: "FoldedStacks") -> None:
        """Fold ``other``'s samples into this aggregate."""
        for key, weight in other.items():
            self.add(key, weight)

    def render(self) -> str:
        """Folded output, one ``a;b;c weight`` line, sorted by stack."""
        lines = []
        for key in sorted(self._weights):
            lines.append("%s %d" % (";".join(key), self._weights[key]))
        return "\n".join(lines) + ("\n" if lines else "")
