"""repro-obs: tracing, metrics, and profiling for the enumeration stack.

Activate with ``PivotConfig(obs="metrics"|"full")``, the ``--obs`` flag
of the CLI / benchmarks, or the ``REPRO_OBS`` environment variable
(which applies when the config leaves the level at ``"off"``).  Wrap
any number of runs in :func:`~repro.obs.session.observe` to collect
combined trace / folded-stack / metrics artifacts, then inspect them
with ``python -m repro.obs report`` and gate regressions with
``python -m repro.obs diff``.  See ``docs/observability.md``.
"""

from repro.obs.diff import compare, diff_paths, load_series
from repro.obs.metrics import DEPTH_METRICS, MetricsRegistry
from repro.obs.observer import (
    DEFAULT_SAMPLE_EVERY,
    Observer,
    build_observer,
    resolve_level,
)
from repro.obs.report import load_artifact, render_path
from repro.obs.session import ObsSession, current_session, observe
from repro.obs.tracer import FoldedStacks, Tracer, read_jsonl

__all__ = [
    "DEFAULT_SAMPLE_EVERY",
    "DEPTH_METRICS",
    "FoldedStacks",
    "MetricsRegistry",
    "Observer",
    "ObsSession",
    "Tracer",
    "build_observer",
    "compare",
    "current_session",
    "diff_paths",
    "load_artifact",
    "load_series",
    "observe",
    "read_jsonl",
    "render_path",
    "resolve_level",
]
