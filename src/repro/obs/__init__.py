"""repro-obs: tracing, metrics, and profiling for the enumeration stack.

Activate with ``PivotConfig(obs="metrics"|"full")``, the ``--obs`` flag
of the CLI / benchmarks, or the ``REPRO_OBS`` environment variable
(which applies when the config leaves the level at ``"off"``).  Wrap
any number of runs in :func:`~repro.obs.session.observe` to collect
combined trace / folded-stack / metrics artifacts, then inspect them
with ``python -m repro.obs report`` and gate regressions with
``python -m repro.obs diff``.  See ``docs/observability.md``.
"""

from repro.obs.diff import compare, diff_paths, load_series
from repro.obs.fleet import (
    fleet_summary,
    load_flights,
    render_fleet,
    render_tail,
    render_timeline,
    render_trajectory,
)
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    FlightLog,
    FlightRecorder,
    merge_flight_registries,
    replay_flight,
)
from repro.obs.metrics import DEPTH_METRICS, MetricsRegistry
from repro.obs.observer import (
    DEFAULT_SAMPLE_EVERY,
    Observer,
    build_observer,
    resolve_level,
)
from repro.obs.progress import ProgressTracker
from repro.obs.report import load_artifact, render_path
from repro.obs.runtime import peak_rss_bytes, run_env, runtime_fingerprint
from repro.obs.session import ObsSession, current_session, observe
from repro.obs.tracer import FoldedStacks, Tracer, read_jsonl

__all__ = [
    "DEFAULT_SAMPLE_EVERY",
    "DEPTH_METRICS",
    "FLIGHT_SCHEMA",
    "FlightLog",
    "FlightRecorder",
    "FoldedStacks",
    "MetricsRegistry",
    "Observer",
    "ObsSession",
    "ProgressTracker",
    "Tracer",
    "build_observer",
    "compare",
    "current_session",
    "diff_paths",
    "fleet_summary",
    "load_artifact",
    "load_flights",
    "load_series",
    "merge_flight_registries",
    "observe",
    "peak_rss_bytes",
    "read_jsonl",
    "render_fleet",
    "render_path",
    "render_tail",
    "render_timeline",
    "render_trajectory",
    "replay_flight",
    "resolve_level",
    "run_env",
    "runtime_fingerprint",
]
