"""Fleet views: aggregate per-worker flight logs and bench history.

The flight recorder (:mod:`repro.obs.flight`) leaves one JSONL stream
per process; this module turns a set of them into the operator-facing
views:

* :func:`fleet_summary` — the imbalance/utilization summary the
  parallel driver stamps into ``EnumerationResult.fleet``;
* :func:`render_fleet` — a per-worker utilization table
  (``python -m repro.obs fleet flight-*.jsonl``);
* :func:`render_timeline` — a per-worker Chrome-trace Gantt
  (``python -m repro.obs timeline flight-*.jsonl``; open in
  ``chrome://tracing`` / Perfetto);
* :func:`render_tail` — a human-readable event listing of one stream
  (``python -m repro.obs tail flight.jsonl``);
* :func:`render_trajectory` — a one-line-per-artifact history over
  committed ``BENCH_*.json`` documents.

Timestamps inside one stream are relative to that process's start;
streams of different processes are not clock-synchronized (the
parent's ``dispatch`` records anchor the fan-out), so the timeline
shows per-worker durations faithfully but aligns lane starts at zero.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.obs.flight import FlightLog, replay_flight
from repro.obs.metrics import MetricsRegistry

#: Synthetic Chrome-trace pid shared by every lane of one timeline.
_TRACE_PID = 1


def fleet_summary(shards: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Imbalance/utilization summary over per-shard breakdown dicts.

    ``shards`` are the records the partition drivers collect from each
    worker (see :func:`repro.core.partition.enumerate_parallel`).  The
    result is deterministic: shards are ordered by index and the
    merged registry uses max-mode gauges, so worker completion order
    cannot change a byte.
    """
    if not shards:
        return {}
    ordered = sorted(shards, key=lambda s: int(s.get("shard", 0) or 0))
    walls = [float(s.get("wall_s") or 0.0) for s in ordered]
    wall_max = max(walls)
    wall_mean = sum(walls) / len(walls)
    summary: Dict[str, object] = {
        "workers": len(ordered),
        "seeds": sum(int(s.get("seeds") or 0) for s in ordered),
        "outputs": sum(int(s.get("outputs") or 0) for s in ordered),
        "wall_s": [round(w, 6) for w in walls],
        "wall_max_s": round(wall_max, 6),
        "wall_mean_s": round(wall_mean, 6),
        # max/mean: 1.0 is a perfectly balanced fan-out; the critical
        # path is the slowest shard, so (imbalance - 1) is the wasted
        # fraction a better split could reclaim.
        "imbalance": (
            round(wall_max / wall_mean, 4) if wall_mean > 0 else None
        ),
        "utilization": (
            round(wall_mean / wall_max, 4) if wall_max > 0 else None
        ),
    }
    metric_docs = [s.get("metrics") for s in ordered]
    if metric_docs and all(metric_docs):
        merged = MetricsRegistry()
        for doc in metric_docs:
            merged.merge(MetricsRegistry.from_dict(doc), gauges="max")
        summary["metrics"] = merged.as_dict()
    return summary


def load_flights(paths: Sequence[str]) -> List[FlightLog]:
    """Replay every path, ordered parent-first then by worker index."""
    logs = [replay_flight(path) for path in paths]
    return sorted(
        logs,
        key=lambda log: (log.role != "parent", log.worker, log.path),
    )


def _lane(log: FlightLog, index: int) -> int:
    if log.role == "parent":
        return 0
    return log.worker + 1 if log.worker is not None else index + 1


# -- timeline (Chrome trace) -----------------------------------------
def timeline_events(logs: Sequence[FlightLog]) -> List[Dict[str, object]]:
    """Chrome trace events: one lane per flight log.

    Each log's ``run_start``→``finish`` window becomes a ``run`` span;
    the measured ``phase`` durations are laid back to back inside it
    (they are post-hoc measurements, like the observer's phase spans);
    milestones, heartbeats, dispatches and violations become instants.
    """
    events: List[Dict[str, object]] = []
    for index, log in enumerate(logs):
        tid = _lane(log, index)
        events.append({
            "ph": "M",
            "pid": _TRACE_PID,
            "tid": tid,
            "name": "thread_name",
            "args": {
                "name": "%s %d (pid %s)"
                % (log.role, log.worker, log.pid)
            },
        })
        start = log.first("run_start")
        finish = log.finish()
        if start is not None and finish is not None:
            start_us = int(float(start.get("t_s", 0.0)) * 1e6)
            end_us = int(float(finish.get("t_s", 0.0)) * 1e6)
            events.append({
                "ph": "X",
                "pid": _TRACE_PID,
                "tid": tid,
                "name": "run",
                "ts": start_us,
                "dur": max(0, end_us - start_us),
                "args": {"outputs": finish.get("outputs")},
            })
            cursor = start_us
            for entry in log.events:
                if entry.get("event") != "phase":
                    continue
                dur = int(float(entry.get("seconds", 0.0)) * 1e6)
                events.append({
                    "ph": "X",
                    "pid": _TRACE_PID,
                    "tid": tid,
                    "name": str(entry.get("name")),
                    "ts": cursor,
                    "dur": dur,
                    "args": {},
                })
                cursor += dur
        for entry in log.events:
            kind = entry.get("event")
            if kind not in ("milestone", "heartbeat", "violation",
                            "dispatch"):
                continue
            args = {
                key: entry[key]
                for key in sorted(entry)
                if key not in ("event", "seq", "t_s")
            }
            events.append({
                "ph": "i",
                "pid": _TRACE_PID,
                "tid": tid,
                "name": str(kind),
                "ts": int(float(entry.get("t_s", 0.0)) * 1e6),
                "s": "t",
                "args": args,
            })
    return events


def render_timeline(logs: Sequence[FlightLog]) -> str:
    """The timeline as Chrome-trace JSONL (one event per line)."""
    return "".join(
        json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        for event in timeline_events(logs)
    )


# -- fleet utilization table -----------------------------------------
def _fmt_rss(value) -> str:
    if value is None:
        return "-"
    return "%.1f" % (float(value) / (1024.0 * 1024.0))


def fleet_rows(logs: Sequence[FlightLog]) -> List[List[str]]:
    rows = []
    for log in logs:
        start = log.first("run_start") or {}
        finish = log.finish()
        stats = (finish or {}).get("stats") or {}
        status = "ok" if finish is not None else "crashed"
        if log.truncated:
            status += "+truncated"
        rows.append([
            "%s %d" % (log.role, log.worker),
            str(log.pid),
            str(start.get("seeds", "-")),
            str((finish or {}).get("outputs", stats.get("outputs", "-"))),
            str(stats.get("calls", "-")),
            "%.4f" % log.wall_s() if log.wall_s() is not None else "-",
            _fmt_rss((finish or {}).get("peak_rss_bytes")),
            status,
        ])
    return rows


def render_fleet(logs: Sequence[FlightLog]) -> str:
    """Utilization table plus the imbalance summary over worker logs."""
    # Imported here: report renders flight logs through this module,
    # so a module-level import either way would be a cycle.
    from repro.obs.report import _table

    lines = _table(
        ["lane", "pid", "seeds", "outputs", "calls", "wall_s",
         "rss_mib", "status"],
        fleet_rows(logs),
    )
    walls = [
        log.wall_s()
        for log in logs
        if log.role != "parent" and log.wall_s() is not None
    ]
    if walls:
        wall_max = max(walls)
        wall_mean = sum(walls) / len(walls)
        lines.append("")
        lines.append(
            "workers: %d  wall max %.4fs  mean %.4fs  imbalance %s  "
            "utilization %s"
            % (
                len(walls),
                wall_max,
                wall_mean,
                "%.3f" % (wall_max / wall_mean) if wall_mean else "-",
                "%.3f" % (wall_mean / wall_max) if wall_max else "-",
            )
        )
    return "\n".join(lines) + "\n"


# -- tail (human-readable event listing) -----------------------------
def render_tail(log: FlightLog, last: Optional[int] = None) -> str:
    """One line per event of a single flight stream."""
    lines = [
        "%s [%s %s, pid %s, schema %s]%s"
        % (
            log.path,
            log.role,
            log.worker,
            log.pid,
            log.schema,
            " TRUNCATED TAIL" if log.truncated else "",
        )
    ]
    events = log.events
    if last is not None and last >= 0:
        events = events[-last:] if last else []
    for entry in events:
        fields = " ".join(
            "%s=%s" % (key, _fmt_field(entry[key]))
            for key in sorted(entry)
            if key not in ("event", "seq", "t_s")
        )
        lines.append(
            "[%10.4fs] #%-4s %-10s %s"
            % (
                float(entry.get("t_s", 0.0)),
                entry.get("seq", "?"),
                str(entry.get("event")),
                fields,
            )
        )
    return "\n".join(line.rstrip() for line in lines) + "\n"


def _fmt_field(value) -> str:
    if isinstance(value, dict):
        return json.dumps(value, sort_keys=True, separators=(",", ":"))
    return str(value)


# -- trajectory (bench-artifact history) -----------------------------
def trajectory_rows(paths: Sequence[str]) -> List[List[str]]:
    """One summary row per bench artifact, ordered by PR number."""
    from repro.obs.report import load_artifact

    rows = []
    for path in paths:
        kind, payload = load_artifact(path)
        if kind == "speedup":
            summary = payload.get("summary", {})
            workloads = payload.get("workloads", [])
            rows.append([
                path,
                str(payload.get("pr", "-")),
                str(payload.get("bench", kind)),
                str(len(workloads)),
                str(sum(int(w.get("outputs", 0)) for w in workloads)),
                "%sx best" % summary.get("best_speedup", "-"),
            ])
        elif kind in ("bench", "metrics"):
            runs = payload.get("runs", [])
            outputs = 0
            for run in runs:
                stats = run.get("stats") or {}
                metrics = run.get("metrics") or {}
                counters = metrics.get("counters") or {}
                outputs += int(
                    stats.get("outputs", counters.get("outputs", 0)) or 0
                )
            rows.append([
                path,
                str(payload.get("pr", "-")),
                str(payload.get("bench", kind)),
                str(len(runs)),
                str(outputs),
                "-",
            ])
        else:
            rows.append([path, "-", kind, "-", "-", "-"])

    def sort_key(row):
        try:
            return (0, int(row[1]), row[0])
        except ValueError:
            return (1, 0, row[0])

    return sorted(rows, key=sort_key)


def render_trajectory(paths: Sequence[str]) -> str:
    """The bench-history table over one or more artifact files."""
    from repro.obs.report import _table

    return "\n".join(_table(
        ["artifact", "pr", "bench", "runs", "outputs", "headline"],
        trajectory_rows(paths),
    )) + "\n"
