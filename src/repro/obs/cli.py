"""``python -m repro.obs`` — report, diff, and fleet-view artifacts."""

from __future__ import annotations

import argparse
import sys

from repro.obs.diff import (
    DEFAULT_COUNTER_THRESHOLD,
    DEFAULT_TIME_THRESHOLD,
    diff_paths,
)
from repro.obs.report import render_path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=__doc__,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report",
        help="summarize a trace (JSONL), metrics document, bench "
        "trajectory, speedup document, or flight log",
    )
    report.add_argument("path", help="artifact file to summarize")
    report.add_argument(
        "--verbose",
        action="store_true",
        help="include per-run metric breakdowns for bench trajectories",
    )

    diff = sub.add_parser(
        "diff",
        help="compare two runs; exit 1 on regression beyond threshold",
    )
    diff.add_argument("baseline", help="baseline metrics/bench document")
    diff.add_argument("current", help="current metrics/bench document")
    diff.add_argument(
        "--time-threshold",
        type=float,
        default=DEFAULT_TIME_THRESHOLD,
        help="allowed seconds growth ratio (default: %(default)s — "
        "generous, wall clock crosses machines)",
    )
    diff.add_argument(
        "--counter-threshold",
        type=float,
        default=DEFAULT_COUNTER_THRESHOLD,
        help="allowed search-counter growth ratio (default: %(default)s "
        "— tight, counters are deterministic)",
    )
    diff.add_argument(
        "--only-common",
        action="store_true",
        help="compare only runs present in both documents (gate a "
        "partial --quick re-run against a full baseline); an empty "
        "intersection still fails",
    )

    tail = sub.add_parser(
        "tail",
        help="render one flight log (repro.obs/flight-v1 JSONL) as a "
        "human-readable event listing",
    )
    tail.add_argument("path", help="flight log to render")
    tail.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="show only the last N events",
    )

    timeline = sub.add_parser(
        "timeline",
        help="turn flight logs into a per-worker Chrome-trace Gantt "
        "(open in chrome://tracing or Perfetto)",
    )
    timeline.add_argument(
        "paths", nargs="+", help="flight logs (parent and/or workers)"
    )
    timeline.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the trace JSONL to PATH (default: stdout)",
    )

    fleet = sub.add_parser(
        "fleet",
        help="per-worker utilization table plus imbalance summary "
        "over flight logs",
    )
    fleet.add_argument(
        "paths", nargs="+", help="flight logs (parent and/or workers)"
    )

    trajectory = sub.add_parser(
        "trajectory",
        help="one-line-per-artifact history over committed "
        "BENCH_*.json documents",
    )
    trajectory.add_argument(
        "paths", nargs="+", help="bench artifact files"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "report":
        try:
            sys.stdout.write(render_path(args.path, verbose=args.verbose))
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0
    if args.command == "tail":
        from repro.obs.fleet import render_tail
        from repro.obs.flight import replay_flight

        try:
            log = replay_flight(args.path)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        sys.stdout.write(render_tail(log, last=args.last))
        return 0
    if args.command == "timeline":
        from repro.obs.fleet import load_flights, render_timeline

        try:
            text = render_timeline(load_flights(args.paths))
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {args.out}")
        else:
            sys.stdout.write(text)
        return 0
    if args.command == "fleet":
        from repro.obs.fleet import load_flights, render_fleet

        try:
            sys.stdout.write(render_fleet(load_flights(args.paths)))
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0
    if args.command == "trajectory":
        from repro.obs.fleet import render_trajectory

        try:
            sys.stdout.write(render_trajectory(args.paths))
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0
    # diff
    try:
        lines, regressions = diff_paths(
            args.baseline,
            args.current,
            time_threshold=args.time_threshold,
            counter_threshold=args.counter_threshold,
            only_common=args.only_common,
        )
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for line in lines:
        print(line)
    for regression in regressions:
        print(f"REGRESSION {regression}")
    if regressions:
        print(f"{len(regressions)} regression(s) beyond threshold")
        return 1
    print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
